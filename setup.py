"""Setuptools shim.

The environment ships an older setuptools without wheel support, so the
PEP 660 editable-install path is unavailable; this ``setup.py`` enables the
legacy ``pip install -e . --no-use-pep517 --no-build-isolation`` route.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
