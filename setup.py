"""Setuptools packaging for the repro package.

The environment ships an older setuptools without wheel support, so the
PEP 660 editable-install path is unavailable; this ``setup.py`` enables the
legacy ``pip install -e . --no-use-pep517 --no-build-isolation`` route.

The version is read from ``src/repro/__init__.py`` (the single source of
truth, also reported by ``repro --version``) and the long description from
``README.md``, so neither can drift from the package itself.
"""

import pathlib
import re

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).resolve().parent


def read_version() -> str:
    """Extract ``__version__`` from the package without importing it."""
    source = (HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', source, re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


def read_long_description() -> str:
    readme = HERE / "README.md"
    return readme.read_text(encoding="utf-8") if readme.exists() else ""


setup(
    name="repro-kitdpe",
    version=read_version(),
    description=(
        "Reproduction of 'Distance-Based Data Mining over Encrypted Data' "
        "(Tex, Schäler, Böhm; ICDE 2018): distance-preserving encryption, "
        "KIT-DPE, and encrypted query-log mining"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security :: Cryptography",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
