"""Benchmark P5: concurrent multi-tenant serving throughput.

Gates the point of the serving layer (``repro.server``): four tenants —
each with its own passphrase-derived keychain, Paillier noise pool and
encrypted database — are served through one :class:`~repro.api.MiningServer`
twice, through the *same* admission queue and worker pool both times:

* **sequential reference** — workloads submitted one at a time, each
  awaited before the next is admitted (the pool never overlaps tenants);
* **concurrent** — all four workloads admitted up front, the four workers
  drain them in parallel.

Correctness is asserted on every run: each tenant's
:class:`~repro.cryptdb.proxy.EncryptedResult` rows (plain query, encrypted
query, result set) and the DBSCAN labels mined from its encrypted log must
be bit-for-bit equal across the two passes — concurrency must not change a
single ciphertext.  An untimed warm-up pass per tenant runs first so onion
adjustments have already settled when the timed passes start (adjustments
are a one-time schema transition, not a steady-state serving cost).

The wall-clock gate — concurrent throughput ≥ 2× sequential with 4 workers
— runs only where 4 hardware cores exist; oversubscribed or single-core
machines cannot demonstrate thread-level overlap.  CI sets a lower gate via
the environment because shared runners are noisy.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.api import (
    BackendConfig,
    CryptoConfig,
    MiningServer,
    ServerConfig,
    ServiceConfig,
    WorkloadConfig,
    WorkloadResult,
)
from repro.sql import render_query

#: Required concurrent-over-sequential throughput ratio with 4 workers.  CI
#: sets a lower gate via the environment because shared runners are noisy.
MIN_SPEEDUP = float(os.environ.get("P5_MIN_SPEEDUP", "2.0"))
#: Worker threads used by the gated run (and the core count it requires).
GATE_WORKERS = 4
#: Concurrent tenants served by the gated run.
N_TENANTS = 4
#: Queries per tenant workload.
WORKLOAD_SIZE = 24


@pytest.fixture(scope="module")
def p5_server():
    """A warmed 4-tenant server plus each tenant's generated workload.

    Warm-up matters for the equality assertion: the first serve of a
    workload triggers the onion adjustments that strip DET/OPE layers, and
    the sequential and concurrent passes must both see the settled schema
    state (and the same key material — tenants are built exactly once).
    """
    with MiningServer(ServerConfig(workers=GATE_WORKERS)) as server:
        workloads = {}
        for index in range(N_TENANTS):
            name = f"p5-tenant-{index + 1}"
            handle = server.add_tenant(
                name,
                ServiceConfig(
                    crypto=CryptoConfig(passphrase=name, paillier_bits=256),
                    backend=BackendConfig(name="sqlite"),
                    workload=WorkloadConfig(size=WORKLOAD_SIZE, seed=index + 1),
                ),
            )
            workloads[name] = handle.service.generate_workload()
        for name, workload in workloads.items():
            server.tenant(name).run_workload(workload)  # untimed warm-up
        yield server, workloads


def _run_sequential(server: MiningServer, workloads) -> tuple[dict, float]:
    """Serve every workload one at a time through the worker pool."""
    results = {}
    start = time.perf_counter()
    for name, workload in workloads.items():
        results[name] = server.run_workload(name, workload)
    return results, time.perf_counter() - start


def _run_concurrent(server: MiningServer, workloads) -> tuple[dict, float]:
    """Admit every workload up front and let the workers overlap them."""
    start = time.perf_counter()
    futures = {name: server.submit(name, workload) for name, workload in workloads.items()}
    results = {name: future.result() for name, future in futures.items()}
    return results, time.perf_counter() - start


def _assert_bit_for_bit(sequential: WorkloadResult, concurrent: WorkloadResult, tenant: str):
    """Every served row and skip of the two passes must be identical."""
    assert len(sequential.results) == len(concurrent.results), tenant
    for seq_row, conc_row in zip(sequential.results, concurrent.results):
        assert render_query(seq_row.plain_query) == render_query(conc_row.plain_query), tenant
        assert render_query(seq_row.encrypted_query) == render_query(
            conc_row.encrypted_query
        ), tenant
        assert seq_row.result == conc_row.result, tenant
    assert [
        (render_query(query), reason) for query, reason in sequential.skipped
    ] == [(render_query(query), reason) for query, reason in concurrent.skipped], tenant


class TestConcurrentServing:
    """Concurrent == sequential bit-for-bit, and ≥ 2× faster on 4 cores."""

    def test_concurrent_equals_sequential_and_speedup(self, p5_server):
        server, workloads = p5_server
        sequential, sequential_seconds = _run_sequential(server, workloads)
        concurrent, concurrent_seconds = _run_concurrent(server, workloads)

        total_queries = 0
        for name in workloads:
            _assert_bit_for_bit(sequential[name], concurrent[name], name)
            seq_mined = server.tenant(name).service.mine(sequential[name].encrypted_log())
            conc_mined = server.tenant(name).service.mine(concurrent[name].encrypted_log())
            assert seq_mined.labels == conc_mined.labels, name
            total_queries += concurrent[name].queries_served

        sequential_qps = total_queries / sequential_seconds
        concurrent_qps = total_queries / concurrent_seconds
        speedup = sequential_seconds / concurrent_seconds
        rows = [
            (
                name,
                concurrent[name].queries_served,
                f"{sequential[name].elapsed_seconds * 1000:.1f} ms",
                f"{concurrent[name].elapsed_seconds * 1000:.1f} ms",
            )
            for name in workloads
        ]
        rows.append(
            (
                "TOTAL (wall)",
                total_queries,
                f"{sequential_seconds * 1000:.1f} ms",
                f"{concurrent_seconds * 1000:.1f} ms",
            )
        )
        print_report(
            f"P5 — {N_TENANTS} tenants × {WORKLOAD_SIZE} queries: "
            f"sequential vs concurrent ({GATE_WORKERS} workers)",
            format_table(["tenant", "served", "sequential", "concurrent"], rows)
            + f"\n\nthroughput: {sequential_qps:.1f} q/s sequential, "
            f"{concurrent_qps:.1f} q/s concurrent ({speedup:.2f}x)",
        )
        cores = os.cpu_count() or 1
        if cores < GATE_WORKERS:
            pytest.skip(
                f"throughput gate needs {GATE_WORKERS} hardware cores, found {cores} "
                f"(bit-for-bit equality asserted above; speedup was {speedup:.2f}x)"
            )
        assert speedup >= MIN_SPEEDUP, (
            f"concurrent serving only {speedup:.2f}x over sequential with "
            f"{GATE_WORKERS} workers (required: {MIN_SPEEDUP}x)"
        )

    def test_single_tenant_workload_timing(self, p5_server, benchmark):
        """The timed pytest-benchmark row: one tenant workload through the pool."""
        server, workloads = p5_server
        name = next(iter(workloads))
        result = benchmark(lambda: server.run_workload(name, workloads[name]))
        assert result.queries_served > 0
