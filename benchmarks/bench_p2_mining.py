"""Benchmark P2: distance-matrix and mining cost, plaintext vs encrypted.

Reproduces the cost side of the outsourcing story: how much more expensive is
it for the service provider to compute distance matrices and run the mining
algorithms over ciphertexts than over plaintext?  For the token and structure
measures the overhead comes only from longer token strings (hex ciphertexts);
for the result measure it includes encrypted query execution.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.core.dpe import LogContext
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.mining import complete_link, cut_dendrogram, dbscan, k_medoids


class TestDistanceMatrixCost:
    def test_plaintext_token_matrix(self, benchmark, bench_mixed_log):
        context = LogContext(log=bench_mixed_log)
        benchmark(TokenDistance().distance_matrix, context)

    def test_encrypted_token_matrix(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        encrypted = scheme.encrypt_context(LogContext(log=bench_mixed_log))
        benchmark(TokenDistance().distance_matrix, encrypted)

    def test_plaintext_structure_matrix(self, benchmark, bench_analytical_log):
        context = LogContext(log=bench_analytical_log)
        benchmark(StructureDistance().distance_matrix, context)

    def test_scaling_with_log_size(self, benchmark, bench_keychain, bench_webshop):
        """Record the plaintext-vs-encrypted overhead across log sizes."""
        import time

        from repro.workloads.generator import QueryLogGenerator, WorkloadMix

        measure = TokenDistance()
        scheme = TokenDpeScheme(bench_keychain)
        rows = []
        for size in (10, 20, 40):
            log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=size).generate(size)
            plain = LogContext(log=log)
            encrypted = scheme.encrypt_context(plain)
            start = time.perf_counter()
            measure.distance_matrix(plain)
            plain_seconds = time.perf_counter() - start
            start = time.perf_counter()
            measure.distance_matrix(encrypted)
            encrypted_seconds = time.perf_counter() - start
            rows.append(
                (
                    size,
                    f"{plain_seconds * 1000:.1f} ms",
                    f"{encrypted_seconds * 1000:.1f} ms",
                    f"{encrypted_seconds / plain_seconds:.2f}x" if plain_seconds else "n/a",
                )
            )
        print_report(
            "P2 — distance-matrix cost: plaintext vs encrypted (token measure)",
            format_table(["log size", "plaintext", "encrypted", "overhead"], rows),
        )

        # The timed portion for pytest-benchmark: the largest encrypted matrix.
        log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=40).generate(40)
        encrypted = scheme.encrypt_context(LogContext(log=log))
        benchmark(measure.distance_matrix, encrypted)


class TestMiningCost:
    def _matrix(self, bench_keychain, log) -> np.ndarray:
        scheme = TokenDpeScheme(bench_keychain)
        encrypted = scheme.encrypt_context(LogContext(log=log))
        return TokenDistance().distance_matrix(encrypted)

    def test_dbscan_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        eps = float(np.median(matrix[matrix > 0]))
        result = benchmark(lambda: dbscan(matrix, eps=eps, min_points=3))
        assert len(result.labels) == len(bench_mixed_log)

    def test_kmedoids_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        result = benchmark(lambda: k_medoids(matrix, k=4))
        assert len(set(result.labels)) == 4

    def test_complete_link_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        labels = benchmark(lambda: cut_dendrogram(complete_link(matrix), n_clusters=4))
        assert len(labels) == len(bench_mixed_log)
