"""Benchmark P2: distance-matrix and mining cost, plaintext vs encrypted.

Reproduces the cost side of the outsourcing story: how much more expensive is
it for the service provider to compute distance matrices and run the mining
algorithms over ciphertexts than over plaintext?  For the token and structure
measures the overhead comes only from longer token strings (hex ciphertexts);
for the result measure it includes encrypted query execution.

Since the distance pipeline became batched/cached/vectorized, this module
also records the *before/after* numbers: ``distance_matrix_reference`` is the
seed's naive O(n²) loop (kept as an equality oracle) and ``distance_matrix``
is the pipeline.  ``test_pipeline_speedup_500`` asserts the acceptance
criterion — ≥ 5× on a 500-query log for the token and result measures, with
exact agreement against the oracle.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.core.dpe import LogContext
from repro.core.measures.result import ResultDistance
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.mining import complete_link, cut_dendrogram, dbscan, k_medoids
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database

#: Required pipeline-over-reference speedup at 500 queries.  5× holds with
#: ample margin on a quiet machine (token ~6.5×, result ~12.8×); CI sets a
#: lower gate via the environment because shared runners have noisy clocks.
MIN_SPEEDUP = float(os.environ.get("P2_MIN_SPEEDUP", "5.0"))


def _speedup_row(measure, context, size):
    """Time the reference loop vs the pipeline on a fresh measure instance."""
    start = time.perf_counter()
    reference = measure.distance_matrix_reference(context)
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pipeline = measure.distance_matrix(context)
    pipeline_seconds = time.perf_counter() - start
    assert np.array_equal(reference, pipeline), "pipeline deviates from the reference oracle"
    speedup = reference_seconds / pipeline_seconds if pipeline_seconds > 0 else float("inf")
    row = (
        size,
        f"{reference_seconds * 1000:.1f} ms",
        f"{pipeline_seconds * 1000:.1f} ms",
        f"{speedup:.1f}x",
    )
    return row, speedup


class TestDistanceMatrixCost:
    # A fresh measure instance is constructed inside every benchmarked
    # callable: the pipeline memoizes per (measure, context), so reusing one
    # instance across rounds would time cache hits instead of the pipeline.

    def test_plaintext_token_matrix(self, benchmark, bench_mixed_log):
        context = LogContext(log=bench_mixed_log)
        benchmark(lambda: TokenDistance().distance_matrix_reference(context))

    def test_plaintext_token_matrix_pipeline(self, benchmark, bench_mixed_log):
        context = LogContext(log=bench_mixed_log)
        benchmark(lambda: TokenDistance().distance_matrix(context))

    def test_warm_cache_token_matrix(self, benchmark, bench_mixed_log):
        """The memoized path (same measure, same context) for comparison."""
        context = LogContext(log=bench_mixed_log)
        measure = TokenDistance()
        measure.distance_matrix(context)
        benchmark(measure.distance_matrix, context)

    def test_encrypted_token_matrix(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        encrypted = scheme.encrypt_context(LogContext(log=bench_mixed_log))
        benchmark(lambda: TokenDistance().distance_matrix(encrypted))

    def test_plaintext_structure_matrix(self, benchmark, bench_analytical_log):
        context = LogContext(log=bench_analytical_log)
        benchmark(lambda: StructureDistance().distance_matrix(context))

    def test_scaling_with_log_size(self, benchmark, bench_keychain, bench_webshop):
        """Record the plaintext-vs-encrypted overhead across log sizes."""
        measure = TokenDistance()
        scheme = TokenDpeScheme(bench_keychain)
        rows = []
        for size in (10, 20, 40):
            log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=size).generate(size)
            plain = LogContext(log=log)
            encrypted = scheme.encrypt_context(plain)
            start = time.perf_counter()
            measure.distance_matrix(plain)
            plain_seconds = time.perf_counter() - start
            start = time.perf_counter()
            measure.distance_matrix(encrypted)
            encrypted_seconds = time.perf_counter() - start
            rows.append(
                (
                    size,
                    f"{plain_seconds * 1000:.1f} ms",
                    f"{encrypted_seconds * 1000:.1f} ms",
                    f"{encrypted_seconds / plain_seconds:.2f}x" if plain_seconds else "n/a",
                )
            )
        print_report(
            "P2 — distance-matrix cost: plaintext vs encrypted (token measure)",
            format_table(["log size", "plaintext", "encrypted", "overhead"], rows),
        )

        # The timed portion for pytest-benchmark: the largest encrypted matrix.
        log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=40).generate(40)
        encrypted = scheme.encrypt_context(LogContext(log=log))
        benchmark(lambda: TokenDistance().distance_matrix(encrypted))


class TestPipelineSpeedup:
    """Before/after numbers: naive reference loop vs the vectorized pipeline."""

    def test_token_speedup_across_sizes(self, benchmark, bench_webshop):
        rows = []
        for size in (100, 250, 500):
            log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=size).generate(size)
            row, _ = _speedup_row(TokenDistance(), LogContext(log=log), size)
            rows.append(row)
        print_report(
            "P2 — token distance_matrix: reference loop vs pipeline",
            format_table(["log size", "reference", "pipeline", "speedup"], rows),
        )
        log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=500).generate(500)
        context = LogContext(log=log)
        benchmark(lambda: TokenDistance().distance_matrix(context))

    def test_pipeline_speedup_500(self, bench_webshop):
        """Acceptance: ≥ 5× on a 500-query log for token and result measures."""
        rows = []
        log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=9).generate(500)
        token_row, token_speedup = _speedup_row(TokenDistance(), LogContext(log=log), 500)
        rows.append(("token",) + token_row)

        database = populate_database(bench_webshop, seed=9)
        spj_log = QueryLogGenerator(bench_webshop, WorkloadMix.spj_only(), seed=9).generate(500)
        result_row, result_speedup = _speedup_row(
            ResultDistance(), LogContext(log=spj_log, database=database), 500
        )
        rows.append(("result",) + result_row)
        print_report(
            "P2 — 500-query distance_matrix: seed reference vs pipeline",
            format_table(["measure", "log size", "reference", "pipeline", "speedup"], rows),
        )
        assert token_speedup >= MIN_SPEEDUP, (
            f"token pipeline only {token_speedup:.1f}x over the reference "
            f"(required: {MIN_SPEEDUP}x)"
        )
        assert result_speedup >= MIN_SPEEDUP, (
            f"result pipeline only {result_speedup:.1f}x over the reference "
            f"(required: {MIN_SPEEDUP}x)"
        )


class TestMiningCost:
    def _matrix(self, bench_keychain, log):
        """The encrypted condensed distance matrix for ``log``."""
        scheme = TokenDpeScheme(bench_keychain)
        encrypted = scheme.encrypt_context(LogContext(log=log))
        return TokenDistance().condensed_distance_matrix(encrypted)

    def test_dbscan_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        values = matrix.condensed()
        eps = float(np.median(np.repeat(values[values > 0], 2)))
        result = benchmark(lambda: dbscan(matrix, eps=eps, min_points=3))
        assert len(result.labels) == len(bench_mixed_log)

    def test_kmedoids_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        result = benchmark(lambda: k_medoids(matrix, k=4))
        assert len(set(result.labels)) == 4

    def test_complete_link_on_encrypted_distances(self, benchmark, bench_keychain, bench_mixed_log):
        matrix = self._matrix(bench_keychain, bench_mixed_log)
        labels = benchmark(lambda: cut_dendrogram(complete_link(matrix), n_clusters=4))
        assert len(labels) == len(bench_mixed_log)
