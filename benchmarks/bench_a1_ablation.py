"""Benchmark / reproduction of experiment A1: the Definition 6 ablation.

Reproduces the two failure modes of choosing a *non*-appropriate class:

* condition (1) violated — PROB constants under the token measure break
  distance preservation (and with it mining equality);
* condition (2) violated — DET constants under the structure measure keep
  preservation but leak the constant frequency histogram for no benefit.

The per-attribute-keys variant of the token scheme (the paper's literal
high-level scheme) is included: it satisfies per-query c-equivalence but can
change cross-query distances, the refinement documented in
``repro.core.schemes.token_scheme``.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.analysis.ablation import run_ablation


def test_a1_ablation_cases(benchmark):
    """Time the full ablation run and reproduce its table."""
    result = benchmark.pedantic(
        lambda: run_ablation(log_size=60, seed=11), rounds=1, iterations=1
    )

    baseline = result.case("token/DET (appropriate)")
    broken = result.case("token/PROB (not appropriate)")
    weak = result.case("structure/DET (needlessly weak)")
    appropriate = result.case("structure/PROB (appropriate)")

    assert baseline.preserved
    assert not broken.preserved
    assert weak.preserved and appropriate.preserved
    assert weak.distinct_ciphertext_ratio < appropriate.distinct_ciphertext_ratio

    rows = [
        (
            case.name,
            case.measure,
            f"{case.preservation_max_deviation:.3g}",
            "yes" if case.preserved else "NO",
            f"{case.attack_recovery_rate:.2%}",
            f"{case.distinct_ciphertext_ratio:.2f}",
        )
        for case in result.cases
    ]
    print_report(
        "A1 — ablation: violating either condition of Definition 6",
        format_table(
            ["configuration", "measure", "max deviation", "preserved", "attack recovery", "distinct ratio"],
            rows,
        ),
    )
