"""Benchmark P1: encryption throughput per class and per DPE scheme.

The paper does not report absolute performance numbers (it is a concept
paper); this benchmark records the practicality side of the reproduction:
how expensive each property-preserving encryption class is, and what
encrypting a whole query log costs under each scheme.  The expected *shape*
is HOM ≫ OPE > PROB ≈ DET per value, and the access-area scheme between the
token scheme and the CryptDB-backed result scheme per query.
"""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme

VALUES = list(range(1, 201))


@pytest.fixture(scope="module")
def paillier_scheme():
    return PaillierScheme(PaillierKeyPair.generate(512))


class TestPerClassThroughput:
    def test_prob_encryption(self, benchmark, bench_keychain):
        scheme = ProbabilisticScheme(bench_keychain.key_for("p1-prob"))
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_det_encryption(self, benchmark, bench_keychain):
        scheme = DeterministicScheme(bench_keychain.key_for("p1-det"))
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_ope_encryption(self, benchmark, bench_keychain):
        scheme = OrderPreservingScheme(
            bench_keychain.key_for("p1-ope"), domain_min=0, domain_max=2**20
        )
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_hom_encryption(self, benchmark, paillier_scheme):
        benchmark(lambda: [paillier_scheme.encrypt(v) for v in VALUES[:50]])

    def test_det_decryption(self, benchmark, bench_keychain):
        scheme = DeterministicScheme(bench_keychain.key_for("p1-det"))
        ciphertexts = [scheme.encrypt(v) for v in VALUES]
        benchmark(lambda: [scheme.decrypt(c) for c in ciphertexts])

    def test_hom_homomorphic_sum(self, benchmark, paillier_scheme):
        ciphertexts = [paillier_scheme.encrypt(v) for v in VALUES[:100]]
        total = benchmark(lambda: paillier_scheme.add(*ciphertexts))
        assert paillier_scheme.decode_sum(total) == sum(VALUES[:100])


class TestPerSchemeThroughput:
    def test_token_scheme_log_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_structure_scheme_log_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = StructureDpeScheme(bench_keychain)
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_access_area_scheme_log_encryption(
        self, benchmark, bench_keychain, bench_webshop, bench_mixed_log
    ):
        scheme = AccessAreaDpeScheme(bench_keychain)
        scheme.fit(bench_mixed_log, bench_webshop.domain_catalog())
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_token_scheme_context_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        context = LogContext(log=bench_mixed_log)
        encrypted = benchmark(scheme.encrypt_context, context)
        assert len(encrypted.log) == len(bench_mixed_log)
