"""Benchmark P1: encryption and encrypted-execution throughput.

The paper does not report absolute performance numbers (it is a concept
paper); this benchmark records the practicality side of the reproduction:
how expensive each property-preserving encryption class is, what encrypting
a whole query log costs under each scheme, and what *serving* an encrypted
workload costs per execution backend.  The expected *shape* is
HOM ≫ OPE > PROB ≈ DET per value, the access-area scheme between the token
scheme and the CryptDB-backed result scheme per query, and the SQLite
backend at least ``P1_MIN_SPEEDUP`` (default 3x, lowered on noisy CI
runners) over the interpreter on 1k-row tables.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_report
from repro.core.dpe import LogContext
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.cryptdb.proxy import CryptDBProxy
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile

VALUES = list(range(1, 201))


@pytest.fixture(scope="module")
def paillier_scheme():
    return PaillierScheme(PaillierKeyPair.generate(512))


@pytest.fixture(scope="module")
def encrypted_workload():
    """1k-row webshop tables encrypted via the proxy, plus an SPJ workload."""
    profile = webshop_profile(customer_rows=1000, order_rows=1000, product_rows=250)
    database = populate_database(profile, seed=42)
    log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=42).generate(20)
    proxy = CryptDBProxy(
        KeyChain(MasterKey.from_passphrase("p1-workload")),
        join_groups=profile.join_groups(),
        paillier_bits=256,
        shared_det_key=True,
    )
    proxy.encrypt_database(database)
    return proxy, log


class TestPerClassThroughput:
    def test_prob_encryption(self, benchmark, bench_keychain):
        scheme = ProbabilisticScheme(bench_keychain.key_for("p1-prob"))
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_det_encryption(self, benchmark, bench_keychain):
        scheme = DeterministicScheme(bench_keychain.key_for("p1-det"))
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_ope_encryption(self, benchmark, bench_keychain):
        scheme = OrderPreservingScheme(
            bench_keychain.key_for("p1-ope"), domain_min=0, domain_max=2**20
        )
        benchmark(lambda: [scheme.encrypt(v) for v in VALUES])

    def test_hom_encryption(self, benchmark, paillier_scheme):
        benchmark(lambda: [paillier_scheme.encrypt(v) for v in VALUES[:50]])

    def test_det_decryption(self, benchmark, bench_keychain):
        scheme = DeterministicScheme(bench_keychain.key_for("p1-det"))
        ciphertexts = [scheme.encrypt(v) for v in VALUES]
        benchmark(lambda: [scheme.decrypt(c) for c in ciphertexts])

    def test_hom_homomorphic_sum(self, benchmark, paillier_scheme):
        ciphertexts = [paillier_scheme.encrypt(v) for v in VALUES[:100]]
        total = benchmark(lambda: paillier_scheme.add(*ciphertexts))
        assert paillier_scheme.decode_sum(total) == sum(VALUES[:100])


class TestPerSchemeThroughput:
    def test_token_scheme_log_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_structure_scheme_log_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = StructureDpeScheme(bench_keychain)
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_access_area_scheme_log_encryption(
        self, benchmark, bench_keychain, bench_webshop, bench_mixed_log
    ):
        scheme = AccessAreaDpeScheme(bench_keychain)
        scheme.fit(bench_mixed_log, bench_webshop.domain_catalog())
        benchmark(scheme.encrypt_log, bench_mixed_log)

    def test_token_scheme_context_encryption(self, benchmark, bench_keychain, bench_mixed_log):
        scheme = TokenDpeScheme(bench_keychain)
        context = LogContext(log=bench_mixed_log)
        encrypted = benchmark(scheme.encrypt_context, context)
        assert len(encrypted.log) == len(bench_mixed_log)


class TestEncryptedWorkloadThroughput:
    """Serve a whole encrypted SPJ workload through one batched proxy session.

    This is the ``--backend`` axis of experiment P1: the same workload, the
    same encrypted 1k-row store, executed once on the interpreter oracle and
    once on the SQLite backend.
    """

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_session_workload(self, benchmark, encrypted_workload, backend):
        proxy, log = encrypted_workload

        def serve() -> int:
            with proxy.session(backend=backend) as session:
                return len(session.run(log.queries))

        # One round per backend: the interpreter side takes seconds per pass,
        # and the speedup assertion below does the statistics that matter.
        served = benchmark.pedantic(serve, rounds=1, iterations=1)
        assert served == len(log.queries)

    def test_sqlite_speedup_at_1k_rows(self, encrypted_workload):
        """Acceptance gate: >= P1_MIN_SPEEDUP on 1k-row tables (default 3x)."""
        proxy, log = encrypted_workload

        def timed(backend: str) -> float:
            with proxy.session(backend=backend) as session:
                start = time.perf_counter()
                results = session.run(log.queries)
                elapsed = time.perf_counter() - start
            assert len(results) == len(log.queries)
            return elapsed

        sqlite_elapsed = timed("sqlite")
        memory_elapsed = timed("memory")
        speedup = memory_elapsed / sqlite_elapsed if sqlite_elapsed > 0 else float("inf")
        minimum = float(os.environ.get("P1_MIN_SPEEDUP", "3"))
        print_report(
            "P1: encrypted-workload throughput (1k-row tables)",
            f"memory backend : {len(log.queries) / memory_elapsed:,.1f} queries/s\n"
            f"sqlite backend : {len(log.queries) / sqlite_elapsed:,.1f} queries/s\n"
            f"speedup        : {speedup:.1f}x (gate: >= {minimum:.1f}x)",
        )
        assert speedup >= minimum
