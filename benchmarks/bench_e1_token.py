"""Benchmark / reproduction of experiment E1: token-based query-string distance.

Claim reproduced (Definition 1 + Section I): encrypting the log with the
DET/DET/DET scheme leaves all pairwise token distances unchanged, so
distance-based mining on the encrypted log returns the same clusters,
outliers and neighbours as on the plaintext log.

The timed parts are (a) encrypting the whole log and (b) computing the
distance matrix over the encrypted log.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.analysis.preservation import run_preservation_experiment
from repro.core.dpe import LogContext
from repro.core.measures.token import TokenDistance
from repro.core.schemes.token_scheme import TokenDpeScheme


def test_e1_log_encryption_throughput(benchmark, bench_keychain, bench_mixed_log):
    """Time: encrypting a 40-query log under the token scheme."""
    scheme = TokenDpeScheme(bench_keychain)

    encrypted_log = benchmark(scheme.encrypt_log, bench_mixed_log)

    assert len(encrypted_log) == len(bench_mixed_log)


def test_e1_distance_matrix_over_ciphertexts(benchmark, bench_keychain, bench_mixed_log):
    """Time: the pairwise distance matrix over the encrypted log."""
    scheme = TokenDpeScheme(bench_keychain)
    encrypted_context = scheme.encrypt_context(LogContext(log=bench_mixed_log))

    # Fresh measure per round: the pipeline memoizes per (measure, context).
    matrix = benchmark(lambda: TokenDistance().distance_matrix(encrypted_context))

    assert matrix.shape == (len(bench_mixed_log), len(bench_mixed_log))


def test_e1_preservation_and_mining_equality(benchmark, bench_keychain, bench_mixed_log):
    """Time the full E1 experiment and reproduce its table."""
    scheme = TokenDpeScheme(bench_keychain)
    measure = TokenDistance()
    context = LogContext(log=bench_mixed_log)

    experiment = benchmark.pedantic(
        lambda: run_preservation_experiment(scheme, measure, context), rounds=3, iterations=1
    )

    assert experiment.reproduces_paper
    assert experiment.preservation.max_absolute_deviation == 0.0
    print_report(
        "E1 — token distance: preservation and mining equality",
        format_table(["quantity", "value"], experiment.summary_rows()),
    )
