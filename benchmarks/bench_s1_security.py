"""Benchmark / reproduction of experiment S1: security comparison vs CryptDB.

Claim reproduced (Sections IV-C / IV-D): the KIT-DPE schemes never expose a
column at a weaker class than CryptDB-as-is would, and for attributes used
only inside aggregate arguments the access-area scheme is strictly more
secure ("via CryptDB, except HOM").  Attack simulations quantify the gap:
frequency analysis recovers DET-encrypted constants but not PROB-encrypted
ones; the sorting attack recovers OPE-encrypted values approximately.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.security import run_security_comparison


def test_s1_exposure_comparison(benchmark):
    """Time the full exposure comparison and reproduce its tables."""
    comparison = benchmark.pedantic(
        lambda: run_security_comparison(log_size=120, seed=7), rounds=1, iterations=1
    )

    assert comparison.attributes_worse == 0
    assert comparison.attributes_strictly_better >= 1

    rates = {a.scheme: a.constant_recovery_rate for a in comparison.attacks}
    assert (
        rates["token scheme (DET constants)"]
        > rates["structure scheme (PROB constants)"]
    )

    body = (
        comparison.exposure_table()
        + "\n\n"
        + comparison.attack_table()
        + "\n\n"
        + f"sorting attack on OPE values: {comparison.ope_sorting_recovery:.2%} exact recovery\n"
        + f"attributes strictly better under KIT-DPE: "
        + f"{comparison.attributes_strictly_better} / {len(comparison.exposures)}"
    )
    print_report("S1 — security comparison: KIT-DPE schemes vs CryptDB-as-is", body)
