"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one artefact of the paper (a table, a
figure, or a claim from the text) and prints the reproduced rows/series, so
that ``pytest benchmarks/ --benchmark-only -s`` produces a report that can be
read next to the paper.  The timing part uses pytest-benchmark; correctness
assertions mirror the ones in the test suite so a regression cannot hide in
the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyChain, MasterKey
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, skyserver_profile, webshop_profile


def print_report(title: str, body: str) -> None:
    """Print a framed experiment report (visible with ``pytest -s``)."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")


@pytest.fixture(scope="session")
def bench_keychain() -> KeyChain:
    """Deterministic keychain shared by all benchmarks."""
    return KeyChain(MasterKey.from_passphrase("benchmarks"))


@pytest.fixture(scope="session")
def bench_webshop():
    """Webshop profile sized for benchmarking."""
    return webshop_profile(customer_rows=60, order_rows=150, product_rows=30)


@pytest.fixture(scope="session")
def bench_webshop_db(bench_webshop):
    """Populated webshop database (session-scoped: population is not timed)."""
    return populate_database(bench_webshop, seed=42)


@pytest.fixture(scope="session")
def bench_skyserver():
    """SkyServer-like profile sized for benchmarking."""
    return skyserver_profile(photo_rows=150, spec_rows=60)


@pytest.fixture(scope="session")
def bench_mixed_log(bench_webshop):
    """A mixed workload over the webshop profile."""
    return QueryLogGenerator(bench_webshop, WorkloadMix(), seed=42).generate(40)


@pytest.fixture(scope="session")
def bench_spj_log(bench_webshop):
    """A select-project-join workload (for the result-distance benchmarks)."""
    return QueryLogGenerator(bench_webshop, WorkloadMix.spj_only(), seed=42).generate(20)


@pytest.fixture(scope="session")
def bench_analytical_log(bench_skyserver):
    """An aggregate-heavy workload over the SkyServer profile."""
    return QueryLogGenerator(bench_skyserver, WorkloadMix.analytical(), seed=42).generate(40)
