"""Benchmark / reproduction of Table I (experiment T1).

Regenerates the paper's Table I by running the KIT-DPE engine (Definition 6)
over the four distance measures and checks every derived row against the
published table.  The timed part is the full derivation, i.e. the cost of
"designing" all four DPE schemes mechanically.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.table1 import derive_table1, format_table1, table1_matches_paper
from repro.core.kitdpe import KitDpeEngine
from repro.core.measures import standard_measures


def test_table1_derivation_matches_paper(benchmark):
    """Time the Table I derivation and assert it equals the published table."""
    engine = KitDpeEngine()
    measures = standard_measures()

    derivations = benchmark(lambda: engine.derive_table(measures))

    assert len(derivations) == 4
    rows = table1_matches_paper(engine)
    assert all(row.matches for row in rows)
    print_report("Table I — derived DPE schemes per distance measure", format_table1(derivations))


def test_table1_security_assessment(benchmark):
    """Time KIT-DPE step 4 (security assessment) for all four schemes."""
    engine = KitDpeEngine()
    derivations = derive_table1(engine)

    assessments = benchmark(lambda: [engine.assess(d) for d in derivations])

    # Every scheme uses only classes with known security; the weakest class in
    # use is DET (level 2) for the log-only measures and OPE (level 1) for the
    # execution-backed ones.
    by_measure = {a.measure: a for a in assessments}
    assert by_measure["token"].minimum_security_level == 2
    assert by_measure["structure"].minimum_security_level == 2
    assert by_measure["result"].minimum_security_level == 1
    assert by_measure["access_area"].minimum_security_level == 1
    assert all(a.known_from_literature for a in assessments)
