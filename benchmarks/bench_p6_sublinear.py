"""Benchmark P6: sublinear mining vs the exact O(n²) pipeline.

Gates the point of ``repro.mining.approx``: on a duplicate-heavy query log
(real logs repeat templates — here ``P6_N`` entries cycled from a small
pool of distinct webshop queries) the pivot-indexed miner must deliver the
*same* DBSCAN labels, DB(p, D)-outliers and kNN lists as the exact
condensed-matrix pipeline while doing asymptotically less work: duplicate
characteristics collapse into groups, and the LAESA triangle-inequality
bounds prune or certify most group pairs without an exact evaluation.

Three layers of checks:

* **Certified exactness (always runs)** — at a small log size the approx
  artefacts are asserted bit-for-bit equal to the exact pipeline's, with
  kNN recall and DBSCAN adjusted Rand index computed and asserted to be
  exactly 1.0 whenever the completeness certificate holds.  This is the
  safety net that runs on every machine regardless of the speedup gate.
* **Wall-clock gate** — approx mining at ``P6_N`` (default 50 000) must be
  ≥ ``P6_MIN_SPEEDUP``× (default 10×) faster than the exact pipeline at
  the same size, with recall ≥ ``P6_MIN_RECALL`` and ARI ≥ ``P6_MIN_ARI``
  (both 0.95 by default, and asserted exactly 1.0 because the uncapped
  run is certified).  The exact side is quadratic, so the gate first
  calibrates it at 1 000 entries and skips itself — like the core-count
  skips in P3/P5 — when the extrapolated exact cost exceeds
  ``P6_MAX_EXACT_SECONDS`` (default 60 s) on the current machine; CI runs
  the gate at a smaller ``P6_N`` where the exact side fits.
* **Timing row** — one pytest-benchmark measurement of the approx miner
  at a fixed moderate size, recorded into the ``BENCH_P6.json`` artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.core.dpe import LogContext
from repro.core.measures import TokenDistance
from repro.mining import (
    ApproxStreamMiner,
    CandidateStats,
    adjusted_rand_index,
    dbscan,
    distance_based_outliers,
    k_nearest_neighbors,
)
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import webshop_profile

#: Log size of the gated run.  CI sets a smaller size via the environment so
#: the quadratic exact side fits a shared runner.
N_ITEMS = int(os.environ.get("P6_N", "50000"))
#: Required approx-over-exact wall-clock ratio at ``P6_N``.  Locally the
#: duplicate-heavy workload gives far more (the exact side is quadratic in
#: the log size, the approx side near-linear); CI gates lower for noise.
MIN_SPEEDUP = float(os.environ.get("P6_MIN_SPEEDUP", "10.0"))
#: Required mean kNN recall and DBSCAN adjusted Rand index vs exact.  The
#: uncapped run is certified complete, so both are asserted exactly 1.0 on
#: top of these floors.
MIN_RECALL = float(os.environ.get("P6_MIN_RECALL", "0.95"))
MIN_ARI = float(os.environ.get("P6_MIN_ARI", "0.95"))
#: Skip the speedup gate (never the exactness checks) when the exact side,
#: extrapolated quadratically from a 1 000-entry calibration run, would
#: exceed this budget on the current machine.
MAX_EXACT_SECONDS = float(os.environ.get("P6_MAX_EXACT_SECONDS", "60.0"))
#: Distinct queries in the pool the log cycles through.
DISTINCT_QUERIES = 64
#: Calibration size for the exact-cost extrapolation.
CALIBRATE_N = 1000
#: Mining parameters shared by both sides.
PARAMS = dict(knn_k=5, outlier_p=0.9, outlier_d=0.6, dbscan_eps=0.5, dbscan_min_points=3)


@pytest.fixture(scope="module")
def query_pool():
    """The pool of distinct webshop queries the benchmark logs cycle."""
    profile = webshop_profile(customer_rows=40, order_rows=80, product_rows=20)
    return list(QueryLogGenerator(profile, WorkloadMix(), seed=21).generate(DISTINCT_QUERIES))


def _entries(query_pool, n):
    return [query_pool[i % len(query_pool)] for i in range(n)]


def _mine_exact(entries):
    """The exact pipeline's artefacts over ``entries`` plus wall-clock."""
    start = time.perf_counter()
    matrix = TokenDistance().condensed_distance_matrix(LogContext(log=QueryLog(entries)))
    clusters = dbscan(matrix, eps=PARAMS["dbscan_eps"], min_points=PARAMS["dbscan_min_points"])
    outliers = distance_based_outliers(matrix, p=PARAMS["outlier_p"], d=PARAMS["outlier_d"])
    knn = [k_nearest_neighbors(matrix, i, k=PARAMS["knn_k"]) for i in range(matrix.n)]
    return clusters, outliers, knn, time.perf_counter() - start


def _mine_approx(entries):
    """The pivot-indexed miner's artefacts over ``entries`` plus wall-clock."""
    start = time.perf_counter()
    miner = ApproxStreamMiner(
        TokenDistance(), window=len(entries), n_pivots=8, seed=0, **PARAMS
    )
    miner.append(entries)
    clusters, s1 = miner.dbscan()
    outliers, s2 = miner.outliers()
    knn, s3 = miner.knn_all()
    elapsed = time.perf_counter() - start
    return clusters, outliers, knn, CandidateStats.merge(s1, s2, s3), elapsed


def _knn_recall(approx_knn, exact_knn):
    """Mean per-item recall of the approx kNN lists against the exact ones.

    With no eviction, window ids equal positions, so the dict keys line up
    with the exact pipeline's row indices directly.
    """
    total = 0.0
    for item_id, expected in enumerate(exact_knn):
        got = set(approx_knn[item_id])
        total += len(got & set(expected)) / len(expected) if expected else 1.0
    return total / len(exact_knn)


def _quality(approx, exact):
    """(recall, ari, bit_for_bit) of an approx run against the exact one."""
    approx_clusters, approx_outliers, approx_knn, stats, _ = approx
    clusters, outliers, knn, _ = exact
    recall = _knn_recall(approx_knn, knn)
    ari = adjusted_rand_index(approx_clusters.labels, clusters.labels)
    bit_for_bit = (
        approx_clusters == clusters
        and approx_outliers == outliers
        and all(approx_knn[i] == expected for i, expected in enumerate(knn))
    )
    return recall, ari, bit_for_bit, stats


class TestCertifiedExactness:
    """Always-on bit-for-bit safety net at a small log size."""

    def test_small_log_bit_for_bit(self, query_pool):
        entries = _entries(query_pool, 400)
        exact = _mine_exact(entries)
        approx = _mine_approx(entries)
        recall, ari, bit_for_bit, stats = _quality(approx, exact)
        assert stats.certified_complete
        assert bit_for_bit
        assert recall == 1.0
        assert ari == 1.0
        # The sublinear story: the duplicate-heavy log collapses to the
        # distinct pool, and the pivot table resolves most group pairs.
        assert stats.n_groups <= DISTINCT_QUERIES
        assert stats.exact_distances < len(entries) * (len(entries) - 1) // 2


class TestSublinearGate:
    def test_speedup_recall_and_ari_at_scale(self, query_pool):
        # Approx side first: near-linear, feasible on every machine.
        entries = _entries(query_pool, N_ITEMS)
        approx = _mine_approx(entries)
        stats = approx[3]
        assert stats.certified_complete

        # Calibrate the quadratic exact side and skip the gate — not the
        # exactness checks above — where it cannot finish in the budget.
        _, _, _, calibrate_seconds = _mine_exact(_entries(query_pool, CALIBRATE_N))
        estimate = calibrate_seconds * (N_ITEMS / CALIBRATE_N) ** 2
        if estimate > MAX_EXACT_SECONDS:
            pytest.skip(
                f"exact pipeline at n={N_ITEMS} estimated at {estimate:.0f}s "
                f"(> {MAX_EXACT_SECONDS:.0f}s budget); set P6_N/P6_MAX_EXACT_SECONDS "
                f"to run the gate on this machine"
            )

        exact = _mine_exact(entries)
        recall, ari, bit_for_bit, stats = _quality(approx, exact)
        exact_seconds, approx_seconds = exact[3], approx[4]
        speedup = exact_seconds / approx_seconds if approx_seconds > 0 else float("inf")

        all_pairs = N_ITEMS * (N_ITEMS - 1) // 2
        print_report(
            "Benchmark P6: sublinear mining vs the exact pipeline",
            format_table(
                ["quantity", "value"],
                [
                    ("log size", f"{N_ITEMS:,}"),
                    ("distinct groups", f"{stats.n_groups:,}"),
                    ("exact pipeline", f"{exact_seconds:.2f} s ({all_pairs:,} pairs)"),
                    ("pivot-indexed miner", f"{approx_seconds:.2f} s"),
                    ("speedup", f"{speedup:.1f}x"),
                    ("kNN recall", f"{recall:.4f}"),
                    ("DBSCAN ARI", f"{ari:.4f}"),
                    ("pruned group pairs", f"{stats.pruned_pairs:,}"),
                    ("certified group pairs", f"{stats.certified_pairs:,}"),
                    ("exact distance evaluations", f"{stats.exact_distances:,}"),
                    ("certified complete", "yes" if stats.certified_complete else "NO"),
                ],
            ),
        )

        # Quality gates first: certified => exactly 1.0 and bit-for-bit.
        assert recall >= MIN_RECALL and ari >= MIN_ARI
        assert stats.certified_complete
        assert recall == 1.0 and ari == 1.0
        assert bit_for_bit
        assert speedup >= MIN_SPEEDUP


class TestApproxMiningTiming:
    def test_approx_mining_timing(self, query_pool, benchmark):
        """One recorded timing row: the approx miner at a fixed 5 000 entries."""
        entries = _entries(query_pool, 5000)
        result = benchmark(lambda: _mine_approx(entries))
        assert result[3].certified_complete
