"""Benchmark / reproduction of experiment R1: resilience at bounded cost.

Two sides of the fault-tolerance layer are recorded here:

* *Completeness* — the full R1 experiment (a multi-tenant server routed
  through a seeded chaos backend at ~5% transient faults, plus one forced
  mid-stream worker crash) must complete 100% of the admitted work with
  decrypted results and recovered mining artefacts bit-for-bit equal to a
  fault-free reference run.
* *Overhead* — the same encrypted SPJ workload is served twice through
  identically keyed services, once without any reliability machinery and
  once with retries + a deadline enabled but **no faults firing**.  The
  gate: the fault-free reliability run costs at most ``R1_MAX_OVERHEAD``
  (default 1.1x) of the bare run, wall-clock — the policy layer must be
  nearly free when nothing fails.

Both reports print under ``pytest -s`` so CI can archive them next to the
fault-model discussion in the README.

The CHAOS_SEED environment variable rotates the injector seed (default 13),
which is how the CI chaos job replays the suite under different fault
schedules without code changes.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_report
from repro.analysis.experiments import run_r1
from repro.api import (
    CryptoConfig,
    EncryptedMiningService,
    ReliabilityConfig,
    ServiceConfig,
)
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "13"))


@pytest.fixture(scope="module")
def resilience_workload():
    """One encrypted webshop store behind a bare and a reliability-enabled service."""
    profile = webshop_profile(customer_rows=200, order_rows=300, product_rows=60)
    log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=42).generate(20)

    def build(reliability: ReliabilityConfig) -> EncryptedMiningService:
        service = EncryptedMiningService(
            ServiceConfig(
                crypto=CryptoConfig(
                    passphrase="r1-workload", paillier_bits=256, shared_det_key=True
                ),
                reliability=reliability,
            ),
            join_groups=profile.join_groups(),
        )
        service.encrypt(populate_database(profile, seed=42))
        return service

    bare = build(ReliabilityConfig())
    guarded = build(ReliabilityConfig(max_retries=3, deadline_ms=600_000))
    return bare, guarded, log


def _timed_serve(service: EncryptedMiningService, session, log) -> float:
    """Serve and decrypt the whole workload once; return the elapsed seconds."""
    start = time.perf_counter()
    result = session.run(log.queries)
    decrypted = [service.decrypt(encrypted) for encrypted in result.results]
    elapsed = time.perf_counter() - start
    assert len(decrypted) == len(log.queries)
    return elapsed


class TestFaultFreeOverhead:
    def test_guarded_session_workload(self, benchmark, resilience_workload):
        _, guarded, log = resilience_workload
        with guarded.open_session() as session:
            served = benchmark.pedantic(
                lambda: _timed_serve(guarded, session, log), rounds=1, iterations=1
            )
        assert served > 0

    def test_overhead_within_gate(self, resilience_workload):
        """Acceptance gate: fault-free guarded serving <= R1_MAX_OVERHEAD x bare.

        Steady-state serving is what the gate bounds: both sessions stay
        open across the timed runs, so what is measured is the per-call
        cost of the retry wrapper and the deadline checks — with zero
        faults firing, that machinery must be nearly free.
        """
        bare, guarded, log = resilience_workload

        with bare.open_session() as bare_session:
            with guarded.open_session() as guarded_session:
                _timed_serve(bare, bare_session, log)  # warm-up
                _timed_serve(guarded, guarded_session, log)

                bare_elapsed = min(
                    _timed_serve(bare, bare_session, log) for _ in range(3)
                )
                guarded_elapsed = min(
                    _timed_serve(guarded, guarded_session, log) for _ in range(3)
                )

        overhead = guarded_elapsed / bare_elapsed if bare_elapsed > 0 else float("inf")
        maximum = float(os.environ.get("R1_MAX_OVERHEAD", "1.1"))
        print_report(
            "R1: fault-free reliability overhead (SPJ workload)",
            f"bare      : {len(log.queries) / bare_elapsed:,.1f} queries/s\n"
            f"guarded   : {len(log.queries) / guarded_elapsed:,.1f} queries/s\n"
            f"overhead  : {overhead:.2f}x (gate: <= {maximum:.1f}x)",
        )
        assert overhead <= maximum


def test_r1_completeness(benchmark):
    """Time the full R1 experiment and gate on 100% bit-for-bit completion."""
    outcome = benchmark.pedantic(
        lambda: run_r1(seed=CHAOS_SEED), rounds=1, iterations=1
    )

    assert outcome.success, outcome.report
    assert outcome.data["completed"] == outcome.data["admitted"]
    assert outcome.data["workloads_equal"] is True
    assert outcome.data["streams_equal"] is True
    assert outcome.data["crashes"] == 1
    assert outcome.data["injected"] >= 2  # >= 1 transient on top of the crash
    assert outcome.data["recovery"] is not None

    body = (
        f"seed             : {CHAOS_SEED}\n"
        f"admitted         : {outcome.data['admitted']} workloads\n"
        f"completed        : {outcome.data['completed']} (100% required)\n"
        f"injected faults  : {outcome.data['injected']} "
        f"(incl. {outcome.data['crashes']} forced crash)\n"
        f"workloads equal  : {outcome.data['workloads_equal']}\n"
        f"streams equal    : {outcome.data['streams_equal']}\n"
        f"recovery         : {outcome.data['recovery']}"
    )
    print_report("R1 — completeness under seeded faults (live server)", body)
