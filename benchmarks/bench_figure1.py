"""Benchmark / reproduction of Figure 1 (experiment F1).

Rebuilds the taxonomy of property-preserving encryption classes and checks
its structural claims (levels, subclass edges, incomparability within a
level).  The timed part is taxonomy construction plus the appropriate-class
queries Definition 6 issues against it.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro.analysis.experiments import run_f1
from repro.core.kitdpe import ComponentRequirement, KitDpeEngine
from repro.crypto.base import EncryptionClass
from repro.crypto.taxonomy import EncryptionTaxonomy


def test_figure1_taxonomy_structure(benchmark):
    """Time taxonomy construction + structural queries; assert Figure 1 holds."""

    def build_and_query():
        taxonomy = EncryptionTaxonomy()
        checks = [
            taxonomy.is_subclass(EncryptionClass.HOM, EncryptionClass.PROB),
            taxonomy.is_subclass(EncryptionClass.OPE, EncryptionClass.DET),
            taxonomy.is_subclass(EncryptionClass.JOIN_OPE, EncryptionClass.JOIN),
            taxonomy.more_secure(EncryptionClass.PROB, EncryptionClass.DET),
            taxonomy.more_secure(EncryptionClass.DET, EncryptionClass.OPE),
            not taxonomy.more_secure(EncryptionClass.PROB, EncryptionClass.HOM),
        ]
        return taxonomy, checks

    taxonomy, checks = benchmark(build_and_query)
    assert all(checks)

    outcome = run_f1()
    assert outcome.success
    print_report("Figure 1 — taxonomy of property-preserving encryption classes", outcome.report)


def test_figure1_appropriate_class_queries(benchmark):
    """Time Definition 6 class selection for the requirement lattice."""
    engine = KitDpeEngine()
    requirements = [
        ComponentRequirement(),
        ComponentRequirement(needs_equality=True),
        ComponentRequirement(needs_equality=True, needs_order=True),
        ComponentRequirement(needs_addition=True),
    ]

    choices = benchmark(lambda: [engine.appropriate_class(r) for r in requirements])

    assert [choice.chosen for choice in choices] == [
        EncryptionClass.PROB,
        EncryptionClass.DET,
        EncryptionClass.OPE,
        EncryptionClass.HOM,
    ]
