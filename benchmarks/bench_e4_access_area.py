"""Benchmark / reproduction of experiment E4: query-access-area distance.

Claim reproduced (Definition 5 + Section IV-C): with per-attribute OPE/DET
constant encryption and OPE-encrypted domain bounds, access-area distances
over the encrypted log equal the plaintext ones, while attributes appearing
only inside aggregate arguments stay probabilistically encrypted.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.analysis.preservation import run_preservation_experiment
from repro.core.dpe import LogContext
from repro.core.measures.access_area import AccessAreaDistance
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme, AttributeUsage


def test_e4_workload_fit_and_log_encryption(benchmark, bench_keychain, bench_skyserver, bench_analytical_log):
    """Time: workload analysis (fit) plus encrypting the log."""
    domains = bench_skyserver.domain_catalog()

    def fit_and_encrypt():
        scheme = AccessAreaDpeScheme(bench_keychain)
        scheme.fit(bench_analytical_log, domains)
        return scheme.encrypt_log(bench_analytical_log)

    encrypted_log = benchmark.pedantic(fit_and_encrypt, rounds=3, iterations=1)

    assert len(encrypted_log) == len(bench_analytical_log)


def test_e4_distance_matrix_over_ciphertexts(
    benchmark, bench_keychain, bench_skyserver, bench_analytical_log
):
    """Time: the access-area distance matrix over the encrypted context."""
    scheme = AccessAreaDpeScheme(bench_keychain)
    context = LogContext(log=bench_analytical_log, domains=bench_skyserver.domain_catalog())
    encrypted_context = scheme.encrypt_context(context)

    # Fresh measure per round: the pipeline memoizes per (measure, context).
    matrix = benchmark(lambda: AccessAreaDistance().distance_matrix(encrypted_context))

    assert matrix.shape == (len(bench_analytical_log), len(bench_analytical_log))


def test_e4_preservation_and_mining_equality(
    benchmark, bench_keychain, bench_skyserver, bench_analytical_log
):
    """Time the full E4 experiment and reproduce its table."""
    scheme = AccessAreaDpeScheme(bench_keychain)
    measure = AccessAreaDistance()
    context = LogContext(log=bench_analytical_log, domains=bench_skyserver.domain_catalog())

    experiment = benchmark.pedantic(
        lambda: run_preservation_experiment(scheme, measure, context), rounds=2, iterations=1
    )

    assert experiment.reproduces_paper
    usage = {
        attribute: scheme.usage_of(attribute)
        for attribute in bench_skyserver.domain_catalog().attributes
    }
    aggregate_only = [a for a, u in usage.items() if u is AttributeUsage.AGGREGATE_ONLY]
    report = format_table(["quantity", "value"], experiment.summary_rows())
    report += "\n\naggregate-only attributes kept at PROB: " + (
        ", ".join(sorted(aggregate_only)) if aggregate_only else "(none in this workload)"
    )
    print_report("E4 — access-area distance: preservation and mining equality", report)
