"""Benchmark / reproduction of experiment E2: query-structure distance.

Claim reproduced: the DET/DET/PROB scheme preserves all pairwise structure
distances even though every constant is re-randomised on each encryption —
the feature sets never contain constants.
"""

from __future__ import annotations

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.analysis.preservation import run_preservation_experiment
from repro.core.dpe import LogContext
from repro.core.measures.structure import StructureDistance
from repro.core.schemes.structure_scheme import StructureDpeScheme


def test_e2_log_encryption_throughput(benchmark, bench_keychain, bench_analytical_log):
    """Time: encrypting an aggregate-heavy 40-query log under the structure scheme."""
    scheme = StructureDpeScheme(bench_keychain)

    encrypted_log = benchmark(scheme.encrypt_log, bench_analytical_log)

    assert len(encrypted_log) == len(bench_analytical_log)


def test_e2_feature_extraction_over_ciphertexts(benchmark, bench_keychain, bench_analytical_log):
    """Time: feature-set extraction + distance matrix over the encrypted log."""
    scheme = StructureDpeScheme(bench_keychain)
    encrypted_context = scheme.encrypt_context(LogContext(log=bench_analytical_log))

    # Fresh measure per round: the pipeline memoizes per (measure, context).
    matrix = benchmark(lambda: StructureDistance().distance_matrix(encrypted_context))

    assert matrix.shape == (len(bench_analytical_log), len(bench_analytical_log))


def test_e2_preservation_and_mining_equality(benchmark, bench_keychain, bench_analytical_log):
    """Time the full E2 experiment and reproduce its table."""
    scheme = StructureDpeScheme(bench_keychain)
    measure = StructureDistance()
    context = LogContext(log=bench_analytical_log)

    experiment = benchmark.pedantic(
        lambda: run_preservation_experiment(scheme, measure, context), rounds=3, iterations=1
    )

    assert experiment.reproduces_paper
    print_report(
        "E2 — structure distance: preservation and mining equality",
        format_table(["quantity", "value"], experiment.summary_rows()),
    )
