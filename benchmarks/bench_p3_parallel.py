"""Benchmark P3: sharded parallel distance-matrix computation.

Reproduces the scaling side of the outsourcing story: the service provider
can shard the O(n²) condensed-matrix computation over worker processes
without changing a single bit of any mining input.  Correctness (parallel ==
serial == reference oracle) is asserted on every run for all four measures;
the wall-clock gate — ≥ 2× with 4 workers on a 500-query log for the
Python-loop-bound access-area measure — runs only where 4 hardware cores
exist, because oversubscribed or single-core machines cannot demonstrate a
process-level speedup.

The vectorized Jaccard measures (token/structure/result) delegate their
inner loop to BLAS and are usually *faster serial* than any pool at these
sizes; their row is reported for context and deliberately not gated — the
parallel path exists for measures (and future workloads) whose pair loop is
Python-bound.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.core.dpe import LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.mining.parallel import compute_distance_matrix, plan_row_blocks
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, skyserver_profile

#: Required parallel-over-serial speedup with 4 workers at 500 queries.  CI
#: sets a lower gate via the environment because shared runners are noisy.
MIN_SPEEDUP = float(os.environ.get("P3_MIN_SPEEDUP", "2.0"))
#: Workers used by the gated run (and the core count it requires).
GATE_WORKERS = 4


def _timed_matrix(measure, context, *, workers=1, chunk_size=None):
    """Compute the condensed matrix on a fresh measure, returning (matrix, s)."""
    start = time.perf_counter()
    matrix = compute_distance_matrix(measure, context, workers=workers, chunk_size=chunk_size)
    return matrix, time.perf_counter() - start


class TestParallelEquality:
    """Parallel == serial == reference oracle, for every measure, always."""

    def test_all_measures_equal(self, bench_webshop, bench_webshop_db, bench_skyserver):
        mixed = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=21).generate(60)
        spj = QueryLogGenerator(bench_webshop, WorkloadMix.spj_only(), seed=21).generate(40)
        analytical = QueryLogGenerator(
            bench_skyserver, WorkloadMix.analytical(), seed=21
        ).generate(60)
        cases = (
            (TokenDistance, lambda: LogContext(log=mixed)),
            (StructureDistance, lambda: LogContext(log=mixed)),
            (ResultDistance, lambda: LogContext(log=spj, database=bench_webshop_db)),
            (
                AccessAreaDistance,
                lambda: LogContext(log=analytical, domains=bench_skyserver.domain_catalog()),
            ),
        )
        for measure_factory, make_context in cases:
            context = make_context()
            serial, _ = _timed_matrix(measure_factory(), context)
            parallel, _ = _timed_matrix(
                measure_factory(), context, workers=GATE_WORKERS, chunk_size=200
            )
            reference = measure_factory().distance_matrix_reference(context)
            name = measure_factory().name
            assert np.array_equal(serial.values, parallel.values), name
            assert np.array_equal(parallel.to_square(), reference), name

    def test_chunk_sizes_cover_triangle(self):
        for n in (2, 17, 100, 501):
            for chunk_size in (1, 64, 10_000):
                blocks = plan_row_blocks(n, workers=GATE_WORKERS, chunk_size=chunk_size)
                covered = [row for start, stop in blocks for row in range(start, stop)]
                assert covered == list(range(n - 1))


class TestParallelSpeedup:
    """The ≥ 2×-with-4-workers acceptance gate (needs 4 hardware cores)."""

    def test_parallel_speedup_500(self, bench_skyserver):
        log = QueryLogGenerator(bench_skyserver, WorkloadMix.analytical(), seed=9).generate(500)
        context = LogContext(log=log, domains=bench_skyserver.domain_catalog())

        serial, serial_seconds = _timed_matrix(AccessAreaDistance(), context)
        parallel, parallel_seconds = _timed_matrix(
            AccessAreaDistance(), context, workers=GATE_WORKERS
        )
        assert np.array_equal(serial.values, parallel.values), (
            "parallel access-area matrix deviates from the serial pipeline"
        )
        speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
        print_report(
            "P3 — 500-query access-area distance_matrix: serial vs 4 workers",
            format_table(
                ["measure", "serial", f"{GATE_WORKERS} workers", "speedup"],
                [
                    (
                        "access_area",
                        f"{serial_seconds * 1000:.1f} ms",
                        f"{parallel_seconds * 1000:.1f} ms",
                        f"{speedup:.2f}x",
                    )
                ],
            ),
        )
        cores = os.cpu_count() or 1
        if cores < GATE_WORKERS:
            pytest.skip(
                f"speedup gate needs {GATE_WORKERS} hardware cores, found {cores} "
                f"(equality asserted above; speedup was {speedup:.2f}x)"
            )
        assert speedup >= MIN_SPEEDUP, (
            f"parallel pipeline only {speedup:.2f}x over serial with "
            f"{GATE_WORKERS} workers (required: {MIN_SPEEDUP}x)"
        )

    def test_token_500_report_only(self, bench_webshop, benchmark):
        """Context row: the BLAS-backed token measure at 500 queries (no gate)."""
        log = QueryLogGenerator(bench_webshop, WorkloadMix(), seed=9).generate(500)
        context = LogContext(log=log)
        serial, serial_seconds = _timed_matrix(TokenDistance(), context)
        parallel, parallel_seconds = _timed_matrix(
            TokenDistance(), context, workers=GATE_WORKERS
        )
        assert np.array_equal(serial.values, parallel.values)
        print_report(
            "P3 — 500-query token distance_matrix (vectorized; context only)",
            format_table(
                ["path", "seconds"],
                [
                    ("serial (BLAS)", f"{serial_seconds:.3f}"),
                    (f"{GATE_WORKERS} workers", f"{parallel_seconds:.3f}"),
                ],
            ),
        )
        # The timed portion for pytest-benchmark: the serial vectorized path.
        benchmark(lambda: TokenDistance().condensed_distance_matrix(LogContext(log=log)))
