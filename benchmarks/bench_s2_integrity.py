"""Benchmark / reproduction of experiment S2: integrity at bounded cost.

Two sides of the integrity layer are recorded here:

* *Overhead* — the same P1-style encrypted SPJ workload is served twice
  through identically keyed proxies, once plain and once authenticated
  (lazy full-storage audit + per-cell tag checks on decrypt).  The gate:
  the authenticated run costs at most ``S2_MAX_OVERHEAD`` (default 1.5x)
  of the plain run, wall-clock, including decryption.
* *Detection* — the full S2 experiment (flip, row swap, snapshot replay,
  log rollback against live services) must detect every probe with zero
  false positives on the honest run.

Both reports print under ``pytest -s`` so CI can archive them next to the
paper's security discussion.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_report
from repro.analysis.experiments import run_s2
from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import CryptDBProxy
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile


@pytest.fixture(scope="module")
def integrity_workload():
    """P1-style encrypted webshop store behind plain and authenticated proxies."""
    profile = webshop_profile(customer_rows=200, order_rows=300, product_rows=60)
    log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=42).generate(20)

    def build(authenticate: bool) -> CryptDBProxy:
        proxy = CryptDBProxy(
            KeyChain(MasterKey.from_passphrase("s2-workload")),
            join_groups=profile.join_groups(),
            paillier_bits=256,
            shared_det_key=True,
            authenticate=authenticate,
        )
        proxy.encrypt_database(populate_database(profile, seed=42))
        return proxy

    return build(False), build(True), log


def _timed_serve(proxy: CryptDBProxy, log, backend: str) -> float:
    """Serve and decrypt the whole workload once; return the elapsed seconds."""
    start = time.perf_counter()
    with proxy.session(backend=backend) as session:
        results = session.run(log.queries)
    decrypted = [proxy.decrypt_result(result) for result in results]
    elapsed = time.perf_counter() - start
    assert len(decrypted) == len(log.queries)
    return elapsed


class TestAuthenticatedOverhead:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_authenticated_session_workload(self, benchmark, integrity_workload, backend):
        _, authenticated, log = integrity_workload

        # One round per backend, like P1: the overhead gate below does the
        # statistics that matter.
        served = benchmark.pedantic(
            lambda: _timed_serve(authenticated, log, backend), rounds=1, iterations=1
        )
        assert served > 0

    def test_overhead_within_gate(self, integrity_workload):
        """Acceptance gate: authenticated serving <= S2_MAX_OVERHEAD x plain.

        Steady-state serving is what the gate bounds: both sessions stay
        open across the timed runs, so the authenticated session's one-off
        storage audit lands in the warm-up pass and the measured overhead
        is the per-cell tag checking on the decrypt path.
        """
        plain, authenticated, log = integrity_workload

        def timed(proxy, session) -> float:
            start = time.perf_counter()
            results = session.run(log.queries)
            decrypted = [proxy.decrypt_result(result) for result in results]
            elapsed = time.perf_counter() - start
            assert len(decrypted) == len(log.queries)
            return elapsed

        with plain.session(backend="sqlite") as plain_session:
            with authenticated.session(backend="sqlite") as auth_session:
                # Warm-up: the authenticated session audits its whole
                # store before the first execute; time that separately.
                timed(plain, plain_session)
                audit_start = time.perf_counter()
                timed(authenticated, auth_session)
                audit_elapsed = time.perf_counter() - audit_start

                plain_elapsed = min(timed(plain, plain_session) for _ in range(3))
                auth_elapsed = min(
                    timed(authenticated, auth_session) for _ in range(3)
                )

        overhead = auth_elapsed / plain_elapsed if plain_elapsed > 0 else float("inf")
        maximum = float(os.environ.get("S2_MAX_OVERHEAD", "1.5"))
        print_report(
            "S2: authenticated serving overhead (P1-style SPJ workload)",
            f"plain          : {len(log.queries) / plain_elapsed:,.1f} queries/s\n"
            f"authenticated  : {len(log.queries) / auth_elapsed:,.1f} queries/s\n"
            f"overhead       : {overhead:.2f}x (gate: <= {maximum:.1f}x)\n"
            f"one-off audit  : {audit_elapsed:.3f}s (first run of the session)",
        )
        assert overhead <= maximum


def test_s2_detection_rate(benchmark):
    """Time the full S2 experiment and reproduce its detection summary."""
    outcome = benchmark.pedantic(
        lambda: run_s2(log_size=10, seed=12, backend="sqlite"), rounds=1, iterations=1
    )

    assert outcome.success
    detection = outcome.data["detection"]
    assert outcome.data["detection_rate"] == 1.0, detection
    assert outcome.data["clean_equal"] is True
    assert outcome.data["false_positives"] == 0

    body = "\n".join(
        f"{probe:<10}: {'detected' if caught else 'MISSED'}"
        for probe, caught in sorted(detection.items())
    )
    body += (
        f"\ndetection rate : {outcome.data['detection_rate']:.0%}"
        f"\nfalse positives: {outcome.data['false_positives']}"
        f"\ncells verified : {outcome.data['cells_verified']}"
    )
    print_report("S2 — tamper & rollback detection (live services)", body)
