"""Benchmark / reproduction of experiment E3: query-result distance.

Claim reproduced (Definition 4): with the database content encrypted through
the CryptDB-style layer and constants encrypted "via CryptDB", the service
provider can execute every query over ciphertexts and the Jaccard distances
between the *encrypted* result-tuple sets equal the plaintext ones.

Timed parts: encrypting the database, rewriting+executing the workload over
ciphertexts, and the full experiment.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.analysis.preservation import run_preservation_experiment
from repro.core.dpe import LogContext
from repro.core.measures.result import ResultDistance
from repro.core.schemes.result_scheme import ResultDpeScheme
from repro.crypto.keys import KeyChain, MasterKey


def fresh_scheme(profile) -> ResultDpeScheme:
    return ResultDpeScheme(
        KeyChain(MasterKey.from_passphrase("bench-e3")),
        join_groups=profile.join_groups(),
        paillier_bits=256,
    )


def test_e3_database_encryption_throughput(benchmark, bench_webshop, bench_webshop_db):
    """Time: encrypting the full webshop database (one onion set per column)."""
    scheme = fresh_scheme(bench_webshop)

    encrypted = benchmark.pedantic(
        scheme.proxy.encrypt_database, args=(bench_webshop_db,), rounds=3, iterations=1
    )

    assert encrypted.total_rows() == bench_webshop_db.total_rows()


def test_e3_encrypted_execution_throughput(
    benchmark, bench_webshop, bench_webshop_db, bench_spj_log
):
    """Time: executing the SPJ workload over the encrypted database."""
    scheme = fresh_scheme(bench_webshop)
    scheme.proxy.encrypt_database(bench_webshop_db)

    def run_workload():
        with scheme.proxy.session() as session:
            return session.run(bench_spj_log.queries)

    results = benchmark.pedantic(run_workload, rounds=3, iterations=1)

    assert len(results) == len(bench_spj_log)


def test_e3_preservation_and_mining_equality(
    benchmark, bench_webshop, bench_webshop_db, bench_spj_log
):
    """Time the full E3 experiment and reproduce its table."""
    scheme = fresh_scheme(bench_webshop)
    measure = ResultDistance()
    context = LogContext(log=bench_spj_log, database=bench_webshop_db)

    experiment = benchmark.pedantic(
        lambda: run_preservation_experiment(scheme, measure, context), rounds=1, iterations=1
    )

    assert experiment.reproduces_paper
    assert experiment.preservation.max_absolute_deviation == pytest.approx(0.0)
    print_report(
        "E3 — result distance: preservation and mining equality (encrypted execution)",
        format_table(["quantity", "value"], experiment.summary_rows()),
    )
