"""Benchmark P4: crypto-layer fast paths vs the scalar reference oracles.

The crypto hot paths carry every encrypted workload — ``encrypt_database``
pays Paillier + OPE per cell, sessions pay them per constant — so the three
classic optimizations are gated here against the seed's scalar
implementations (kept as ``*_reference`` equality oracles):

* **batched Paillier encryption** (binomial shortcut + precomputed noise
  pool) must be ≥ 5× over ``encrypt_raw_reference`` at 1024-bit keys;
* **CRT decryption** must be ≥ 2× over the ``L``-function reference at
  1024-bit keys;
* **OPE sorted-batch encryption** (memoized descent nodes + dedup) must be
  ≥ 3× over the per-value uncached descent on a 10k-value column.

Correctness is asserted on every run before any gate: round-trips hold, and
fast-path ciphertexts decrypt identically to reference-path ciphertexts —
through *both* decryption paths — on every tested value.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import print_report
from repro._utils import format_table
from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.ope import OrderPreservingScheme

#: Required fast-path speedups (CI lowers them via the environment because
#: shared runners are noisy; locally they hold with an order of magnitude
#: of slack).
MIN_ENC_SPEEDUP = float(os.environ.get("P4_MIN_ENC_SPEEDUP", "5.0"))
MIN_DEC_SPEEDUP = float(os.environ.get("P4_MIN_DEC_SPEEDUP", "2.0"))
MIN_OPE_SPEEDUP = float(os.environ.get("P4_MIN_OPE_SPEEDUP", "3.0"))

#: The acceptance gates run at production-shaped key sizes.
KEY_BITS = 1024
#: Paillier values per timed batch.
PAILLIER_VALUES = 200
#: OPE column size (values cluster as real columns do: ids, prices).
OPE_COLUMN = 10_000


@pytest.fixture(scope="module")
def keypair() -> PaillierKeyPair:
    return PaillierKeyPair.generate(KEY_BITS)


@pytest.fixture(scope="module")
def plaintexts() -> list[int]:
    rng = random.Random(41)
    return [rng.randrange(-(10**9), 10**9) for _ in range(PAILLIER_VALUES)]


@pytest.fixture(scope="module")
def ope_column() -> list[int]:
    rng = random.Random(43)
    return [rng.randrange(0, 5_000) for _ in range(OPE_COLUMN)]


def _fresh_scheme(keypair: PaillierKeyPair) -> PaillierScheme:
    return PaillierScheme(keypair, pool_size=0, eager_pool=False)


class TestFastPathEquality:
    """Fast paths and reference oracles are interchangeable, always."""

    def test_paillier_cross_path_equality(self, keypair, plaintexts):
        scheme = _fresh_scheme(keypair)
        sample = plaintexts[:25]
        fast = scheme.encrypt_many(sample)
        reference = [scheme.encrypt_raw_reference(scheme._encode(v)) for v in sample]
        for value, fast_ct, reference_ct in zip(sample, fast, reference):
            encoded = scheme._encode(value)
            for ciphertext in (fast_ct, reference_ct):
                assert scheme.decrypt_raw(ciphertext) == encoded
                assert scheme.decrypt_raw_reference(ciphertext) == encoded
                assert scheme.decrypt(ciphertext) == value

    def test_ope_cached_equals_uncached(self, keypair, ope_column):
        ope = OrderPreservingScheme(b"p4-benchmark-ope-key-32-bytes!!!")
        sample = ope_column[:500]
        assert ope.encrypt_many(sample) == [ope.encrypt_reference(v) for v in sample]
        for value in sample[:50]:
            assert ope.decrypt(ope.encrypt(value)) == value


class TestCryptoSpeedup:
    """The ≥5x / ≥2x / ≥3x acceptance gates at production key sizes."""

    def test_batched_paillier_encryption_speedup(self, keypair, plaintexts):
        scheme = _fresh_scheme(keypair)
        start = time.perf_counter()
        reference_cts = [scheme.encrypt_raw_reference(scheme._encode(v)) for v in plaintexts]
        reference_seconds = time.perf_counter() - start

        scheme.precompute(len(plaintexts))  # the point of the pool: pay ahead of time
        start = time.perf_counter()
        fast_cts = scheme.encrypt_many(plaintexts)
        fast_seconds = time.perf_counter() - start

        assert scheme.decrypt_many(fast_cts) == plaintexts
        assert scheme.decrypt_many(reference_cts) == plaintexts
        speedup = reference_seconds / fast_seconds if fast_seconds > 0 else float("inf")
        print_report(
            f"P4 — Paillier encryption, {PAILLIER_VALUES} values at {KEY_BITS}-bit",
            format_table(
                ["path", "seconds", "speedup"],
                [
                    ("reference (2 pows/value)", f"{reference_seconds:.3f}", "1.0x"),
                    ("binomial + noise pool", f"{fast_seconds:.3f}", f"{speedup:.1f}x"),
                ],
            ),
        )
        assert speedup >= MIN_ENC_SPEEDUP, (
            f"batched Paillier encryption only {speedup:.2f}x over the reference "
            f"scalar path (required: {MIN_ENC_SPEEDUP}x)"
        )

    def test_crt_decryption_speedup(self, keypair, plaintexts):
        scheme = _fresh_scheme(keypair)
        ciphertexts = scheme.encrypt_many(plaintexts)

        start = time.perf_counter()
        reference = [scheme.decrypt_raw_reference(ct) for ct in ciphertexts]
        reference_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = [scheme.decrypt_raw(ct) for ct in ciphertexts]
        fast_seconds = time.perf_counter() - start

        assert fast == reference
        assert [scheme._decode(residue) for residue in fast] == plaintexts
        speedup = reference_seconds / fast_seconds if fast_seconds > 0 else float("inf")
        print_report(
            f"P4 — Paillier decryption, {PAILLIER_VALUES} values at {KEY_BITS}-bit",
            format_table(
                ["path", "seconds", "speedup"],
                [
                    ("reference (L function)", f"{reference_seconds:.3f}", "1.0x"),
                    ("CRT (mod p², q²)", f"{fast_seconds:.3f}", f"{speedup:.1f}x"),
                ],
            ),
        )
        assert speedup >= MIN_DEC_SPEEDUP, (
            f"CRT decryption only {speedup:.2f}x over the reference L-function "
            f"path (required: {MIN_DEC_SPEEDUP}x)"
        )

    def test_ope_sorted_batch_speedup(self, ope_column):
        ope = OrderPreservingScheme(b"p4-benchmark-ope-key-32-bytes!!!")
        start = time.perf_counter()
        reference = [ope.encrypt_reference(v) for v in ope_column]
        reference_seconds = time.perf_counter() - start

        ope.clear_cache()
        start = time.perf_counter()
        fast = ope.encrypt_many(ope_column)
        fast_seconds = time.perf_counter() - start

        assert fast == reference
        speedup = reference_seconds / fast_seconds if fast_seconds > 0 else float("inf")
        cache = ope.cache_stats()
        print_report(
            f"P4 — OPE sorted-batch encryption, {OPE_COLUMN}-value column",
            format_table(
                ["path", "seconds", "speedup"],
                [
                    ("reference (uncached descent)", f"{reference_seconds:.3f}", "1.0x"),
                    ("node cache + sorted dedup", f"{fast_seconds:.3f}", f"{speedup:.1f}x"),
                ],
            )
            + f"\nnode cache: {cache['nodes']} nodes, {cache['hit_rate']:.0%} hit rate",
        )
        assert speedup >= MIN_OPE_SPEEDUP, (
            f"OPE sorted-batch encryption only {speedup:.2f}x over the reference "
            f"scalar descent (required: {MIN_OPE_SPEEDUP}x)"
        )

    def test_warm_fast_paths_timing(self, keypair, plaintexts, benchmark):
        """pytest-benchmark row for the baseline artifact: warm batch decrypt."""
        scheme = _fresh_scheme(keypair)
        ciphertexts = scheme.encrypt_many(plaintexts[:20])
        result = benchmark(lambda: scheme.decrypt_many(ciphertexts))
        assert result == plaintexts[:20]
