"""Outsourced query-log mining on a realistic synthetic workload.

The full outsourcing pipeline of the paper, on a generated web-shop workload:

1. the owner generates a 60-query log (point/range/join/aggregate queries),
2. encrypts it with two different DPE schemes — the token scheme (row 1 of
   Table I) and the structure scheme (row 2) — and ships the encrypted logs,
3. the provider computes distance matrices and runs three mining algorithms
   (DBSCAN, k-medoids, complete-link) plus outlier detection on ciphertexts,
4. the owner checks that every result equals the plaintext result.

Run with::

    python examples/outsourced_log_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    KeyChain,
    LogContext,
    MasterKey,
    StructureDistance,
    StructureDpeScheme,
    TokenDistance,
    TokenDpeScheme,
    verify_distance_preservation,
)
from repro.api import (
    adjusted_rand_index,
    complete_link,
    cut_dendrogram,
    dbscan,
    distance_based_outliers,
    format_table,
    k_medoids,
)
from repro.workloads import QueryLogGenerator, WorkloadMix, webshop_profile

# --------------------------------------------------------------------------- #
# 1. Owner side: generate the workload.

profile = webshop_profile(customer_rows=80, order_rows=200, product_rows=40)
log = QueryLogGenerator(profile, WorkloadMix(), seed=2024).generate(60)
plain_context = LogContext(log=log)
print(f"generated {len(log)} queries over tables {', '.join(t.name for t in profile.tables)}")
print("example query:", log.statements[0])
print()

# --------------------------------------------------------------------------- #
# 2. Encrypt under both log-only schemes.

keychain = KeyChain(MasterKey.generate())
schemes = {
    "token distance (DET/DET/DET)": (TokenDpeScheme(keychain), TokenDistance()),
    "structure distance (DET/DET/PROB)": (StructureDpeScheme(keychain), StructureDistance()),
}

rows = []
for name, (scheme, measure) in schemes.items():
    encrypted_context = scheme.encrypt_context(plain_context)

    # 3. Provider side: everything below uses only the encrypted context.
    plain_matrix = measure.distance_matrix(plain_context)
    encrypted_matrix = measure.distance_matrix(encrypted_context)

    preservation = verify_distance_preservation(measure, plain_context, encrypted_context)

    eps = float(np.median(plain_matrix[plain_matrix > 0]))
    plain_dbscan = dbscan(plain_matrix, eps=eps, min_points=3)
    encrypted_dbscan = dbscan(encrypted_matrix, eps=eps, min_points=3)

    plain_kmedoids = k_medoids(plain_matrix, k=4)
    encrypted_kmedoids = k_medoids(encrypted_matrix, k=4)

    plain_cut = cut_dendrogram(complete_link(plain_matrix), n_clusters=4)
    encrypted_cut = cut_dendrogram(complete_link(encrypted_matrix), n_clusters=4)

    outlier_threshold = float(np.quantile(plain_matrix, 0.9))
    plain_outliers = distance_based_outliers(plain_matrix, p=0.85, d=outlier_threshold)
    encrypted_outliers = distance_based_outliers(encrypted_matrix, p=0.85, d=outlier_threshold)

    rows.append(
        (
            name,
            f"{preservation.max_absolute_deviation:.0e}",
            f"{adjusted_rand_index(plain_dbscan.labels, encrypted_dbscan.labels):.2f}",
            f"{adjusted_rand_index(plain_kmedoids.labels, encrypted_kmedoids.labels):.2f}",
            f"{adjusted_rand_index(plain_cut, encrypted_cut):.2f}",
            "yes" if plain_outliers.outliers == encrypted_outliers.outliers else "NO",
        )
    )

# --------------------------------------------------------------------------- #
# 4. Owner side: compare.

print(
    format_table(
        [
            "scheme",
            "max |d_plain - d_enc|",
            "DBSCAN ARI",
            "k-medoids ARI",
            "complete-link ARI",
            "outliers identical",
        ],
        rows,
    )
)
print()
print("All ARIs are 1.00 and the outlier sets coincide: mining the encrypted log")
print("gives exactly the results of mining the plaintext log.")
