"""Quickstart: distance-preserving encryption of an SQL query log in ~40 lines.

The scenario from the paper's introduction: a data owner wants a service
provider to cluster its SQL query log, but will only hand over an encrypted
log.  With a distance-preserving encryption scheme the provider's clustering
of the ciphertext log is exactly the clustering of the plaintext log.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    KeyChain,
    LogContext,
    MasterKey,
    QueryLog,
    TokenDistance,
    TokenDpeScheme,
    verify_distance_preservation,
)
from repro.api import dbscan

# --------------------------------------------------------------------------- #
# 1. The data owner's plaintext query log.

log = QueryLog.from_sql(
    [
        "SELECT name FROM customers WHERE city = 'Berlin'",
        "SELECT name FROM customers WHERE city = 'Paris'",
        "SELECT name, city FROM customers WHERE city = 'Berlin' AND age > 30",
        "SELECT order_id FROM orders WHERE amount > 100",
        "SELECT order_id FROM orders WHERE amount > 250",
        "SELECT order_id, status FROM orders WHERE amount BETWEEN 50 AND 150",
    ]
)
plain_context = LogContext(log=log)

# --------------------------------------------------------------------------- #
# 2. Encrypt the log with the token-distance DPE scheme (Table I, row 1:
#    EncRel = EncAttr = EncConst = DET).  The owner keeps the master key.

keychain = KeyChain(MasterKey.generate())
scheme = TokenDpeScheme(keychain)
encrypted_context = scheme.encrypt_context(plain_context)

print("An encrypted query as the service provider sees it:")
print(" ", encrypted_context.log[0].sql[:100], "...")
print()

# --------------------------------------------------------------------------- #
# 3. Verify Definition 1: pairwise distances are identical on both sides.

measure = TokenDistance()
report = verify_distance_preservation(measure, plain_context, encrypted_context)
print(report.summary())

# --------------------------------------------------------------------------- #
# 4. The provider clusters the *encrypted* log; the owner clusters the
#    plaintext log.  The partitions are identical.

plain_labels = dbscan(measure.distance_matrix(plain_context), eps=0.6, min_points=2).labels
encrypted_labels = dbscan(
    measure.distance_matrix(encrypted_context), eps=0.6, min_points=2
).labels

print("plaintext clustering :", plain_labels)
print("ciphertext clustering:", encrypted_labels)
assert plain_labels == encrypted_labels
print("-> identical clusters: the customer queries and the order queries each form a group.")
