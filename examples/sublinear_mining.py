"""Sublinear mining over an encrypted log: pivot pruning, windows, certificates.

At tens of thousands of logged queries the exact pipeline's O(n²) distance
matrix dominates everything else the provider does.  This example shows the
sublinear path through the public API — and the property that makes it
safe to use: when the completeness *certificate* holds, the approximate
miner's artefacts are bit-for-bit the exact pipeline's.

1. the owner serves a workload through an
   :class:`~repro.api.EncryptedMiningService` whose
   :class:`~repro.api.MiningConfig` opts into the approx path
   (``approx=True`` plus the pivot/seed knobs),
2. the provider mines the encrypted log twice — exact and pivot-indexed —
   and compares: same clusters, same outliers, same kNN, while the
   :class:`~repro.api.CandidateStats` show how many pairs the LAESA
   triangle-inequality bounds pruned or certified without evaluation,
3. the same service hands out a windowed streaming miner
   (:meth:`~repro.api.EncryptedMiningService.approx_miner`): a decayed
   sliding window that evicts old queries as batches stream in, mining the
   live set only.

Run with::

    python examples/sublinear_mining.py
"""

from __future__ import annotations

from repro.api import (
    BackendConfig,
    CryptoConfig,
    EncryptedMiningService,
    MiningConfig,
    ServiceConfig,
    WorkloadConfig,
    format_table,
)

MINING = dict(
    measure="token", knn_k=3, outlier_p=0.9, outlier_d=0.6,
    dbscan_eps=0.5, dbscan_min_points=3,
)


def make_service(**mining_overrides) -> EncryptedMiningService:
    return EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(passphrase="sublinear-example", paillier_bits=256),
            backend=BackendConfig(name="memory", on_unsupported="skip"),
            workload=WorkloadConfig(size=48, seed=7),
            mining=MiningConfig(**{**MINING, **mining_overrides}),
        )
    )


# --------------------------------------------------------------------------- #
# 1. Owner side: serve a workload, keep the encrypted log.

owner = make_service(approx=True, pivots=6, seed=11)
owner.encrypt(owner.build_database())
encrypted_log = owner.run_workload(owner.generate_workload()).encrypted_log()
print(f"owner: served {len(encrypted_log)} encrypted queries")
print()

# --------------------------------------------------------------------------- #
# 2. Provider side: exact vs pivot-indexed mining of the same encrypted log.

exact = make_service().mine(encrypted_log)
approx = owner.mine(encrypted_log)

stats = approx.candidate_stats
assert stats is not None and stats.certified_complete
assert approx.clusters == exact.clusters
assert approx.outliers == exact.outliers
assert approx.knn == exact.knn

all_pairs = exact.n_items * (exact.n_items - 1) // 2
print(
    format_table(
        ["quantity", "value"],
        [
            ("items / characteristic groups", f"{stats.n_items} / {stats.n_groups}"),
            ("pivots (maxmin landmarks)", stats.n_pivots),
            ("pairs the exact pipeline evaluates", all_pairs),
            ("exact distance evaluations", stats.exact_distances),
            ("pruned group pairs (LB > threshold)", stats.pruned_pairs),
            ("certified group pairs (UB <= threshold)", stats.certified_pairs),
            ("certified complete", "yes" if stats.certified_complete else "no"),
        ],
    )
)
print()
print(
    f"certified => bit-for-bit: {approx.clusters.n_clusters} clusters, "
    f"{len(approx.outliers.outliers)} outliers, identical to the exact run."
)
print()

# --------------------------------------------------------------------------- #
# 3. Streaming: a decayed sliding window mines only the live set.

streamer = make_service(
    approx=True, pivots=4, window=16, window_decay=0.3, seed=11
)
streamer.encrypt(streamer.build_database())
miner = streamer.approx_miner()

queries = streamer.generate_workload().queries
rows = []
for number, start in enumerate(range(0, len(queries), 12), start=1):
    streamer.stream([queries[start : start + 12]], into=miner)
    clusters, window_stats = miner.dbscan()
    rows.append(
        (
            number,
            miner.window_log.total_appended,
            miner.n_items,
            miner.window_log.evictions,
            clusters.n_clusters,
            "yes" if window_stats.certified_complete else "no",
        )
    )

print(
    format_table(
        ["batch", "streamed", "live (window=16)", "evicted", "clusters", "certified"],
        rows,
    )
)
print()
print("The window miner kept the live set bounded while every mining call")
print("stayed certified — exact answers over the surviving queries.")
