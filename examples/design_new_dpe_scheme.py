"""Using KIT-DPE as a library: design a DPE scheme for a *new* distance measure.

The paper's procedure is general — it is not limited to the four measures of
the case study.  This example walks through the four KIT-DPE steps for a new
measure ("table-footprint distance": Jaccard over the set of referenced
relations), implements the characteristic, lets the engine derive the
appropriate encryption classes, builds the scheme from the derived classes
and verifies Definition 1 end to end.

Run with::

    python examples/design_new_dpe_scheme.py
"""

from __future__ import annotations

from repro import KeyChain, LogContext, MasterKey, QueryLog, verify_distance_preservation
from repro._utils import format_table, jaccard_distance
from repro.core.dpe import DistanceMeasure, SharedInformation
from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    EquivalenceRequirements,
    KitDpeEngine,
)
from repro.core.schemes.base import HighLevelSchemeTransformer, QueryLogDpeScheme
from repro.core.security_model import SecurityModel
from repro.crypto.prob import ProbabilisticScheme
from repro.sql.ast import Literal, Query

# --------------------------------------------------------------------------- #
# Step 1 — security model: the paper's default for SQL logs.

security_model = SecurityModel.sql_log_default()
security_model.validate()
print("Step 1 — security model")
print(security_model.describe())
print()


# --------------------------------------------------------------------------- #
# Step 2 — the new measure and its equivalence notion.


class TableFootprintDistance(DistanceMeasure):
    """Jaccard distance over the set of relations a query touches."""

    name = "footprint"
    display_name = "Table-Footprint Distance"
    equivalence_notion = "Footprint Equivalence"
    shared_information = SharedInformation(log=True)

    def characteristic(self, query: Query, context: LogContext) -> frozenset[str]:
        return frozenset(query.table_names())

    def distance_between(self, a: frozenset[str], b: frozenset[str]) -> float:
        return jaccard_distance(a, b)

    def component_requirements(self) -> EquivalenceRequirements:
        # Relation names must stay equality-comparable; attribute names and
        # constants never appear in the characteristic.
        return EquivalenceRequirements(
            notion=self.equivalence_notion,
            characteristic="referenced relations",
            relation_names=ComponentRequirement(needs_equality=True),
            attribute_names=ComponentRequirement(),
            constants=ConstantRequirement(uniform=ComponentRequirement()),
        )


measure = TableFootprintDistance()
print("Step 2 — equivalence notion:", measure.equivalence_notion)
print()

# --------------------------------------------------------------------------- #
# Step 3 — let Definition 6 pick the appropriate classes.

engine = KitDpeEngine(security_model=security_model)
derivation = engine.derive(measure)
print("Step 3 — appropriate encryption classes")
print(
    format_table(
        ["component", "class", "security level"],
        [
            ("EncRel", derivation.enc_rel.chosen.value, derivation.enc_rel.security_level),
            ("EncAttr", derivation.enc_attr.chosen.value, derivation.enc_attr.security_level),
            ("EncA.Const", derivation.enc_const.summary,
             derivation.enc_const.uniform.security_level),
        ],
    )
)
print()

# --------------------------------------------------------------------------- #
# Step 4 — security assessment (all classes are from the literature).

assessment = engine.assess(derivation)
print("Step 4 — security assessment")
print("  classes in use:", ", ".join(c.value for c in assessment.classes_in_use))
print("  weakest level :", assessment.minimum_security_level)
print()


# --------------------------------------------------------------------------- #
# Implement the scheme the derivation prescribes: DET relation names (from the
# base class), PROB attribute names and PROB constants.


class FootprintDpeScheme(QueryLogDpeScheme):
    """DET relation names; PROB for everything else (per the derivation)."""

    def __init__(self, keychain: KeyChain) -> None:
        super().__init__(keychain)
        self.measure = TableFootprintDistance()
        self._prob = ProbabilisticScheme(keychain.key_for("footprint", "prob"))

    def _encrypt_literal(self, literal: Literal, context) -> Literal:
        return Literal(self._prob.encrypt(literal.value))

    def encrypt_query(self, query: Query) -> Query:
        transformer = HighLevelSchemeTransformer(
            query, self.relation_scheme, self.attribute_scheme, self._encrypt_literal
        )
        return transformer.transform_query(query)

    def encrypt_characteristic(self, query, characteristic, context):
        return frozenset(
            self.relation_scheme.encrypt_identifier(name) for name in characteristic
        )


log = QueryLog.from_sql(
    [
        "SELECT a FROM orders WHERE amount > 10",
        "SELECT b FROM orders JOIN customers ON a = b",
        "SELECT c FROM customers WHERE city = 'Berlin'",
        "SELECT d FROM products WHERE price < 5",
        "SELECT e FROM products JOIN orders ON x = y WHERE price > 1",
    ]
)
context = LogContext(log=log)
scheme = FootprintDpeScheme(KeyChain(MasterKey.generate()))
encrypted_context = scheme.encrypt_context(context)

report = verify_distance_preservation(measure, context, encrypted_context)
print("end-to-end check on a small log:", report.summary())
assert report.preserved
