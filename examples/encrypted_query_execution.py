"""Query-result distance over an encrypted database (the CryptDB-backed scheme).

Row 3 of Table I: the query-result distance needs the database content to be
shared, so both the log *and* the database are encrypted through the
CryptDB-style layer.  The service provider executes the encrypted queries
over the encrypted database, computes Jaccard distances between the
ciphertext result-tuple sets, and mines on those distances — it never sees a
single plaintext value, table name or constant.

Run with::

    python examples/encrypted_query_execution.py
"""

from __future__ import annotations

from repro import KeyChain, LogContext, MasterKey, ResultDistance, verify_distance_preservation
from repro.api import format_table, k_medoids, parse_query, top_n_outliers
from repro.core.schemes import ResultDpeScheme
from repro.workloads import QueryLogGenerator, WorkloadMix, populate_database, webshop_profile

# --------------------------------------------------------------------------- #
# 1. Owner side: database + select-project-join workload.

profile = webshop_profile(customer_rows=50, order_rows=120, product_rows=25)
database = populate_database(profile, seed=7)
log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=7).generate(18)
plain_context = LogContext(log=log, database=database)
print(f"database: {database.total_rows()} rows in {len(database.table_names)} tables")
print(f"workload: {len(log)} select-project-join queries")
print()

# --------------------------------------------------------------------------- #
# 2. Encrypt database and log ("via CryptDB"): DET names, onion-encrypted
#    columns, constants encrypted per predicate type.

keychain = KeyChain(MasterKey.generate())
scheme = ResultDpeScheme(keychain, join_groups=profile.join_groups(), paillier_bits=512)
encrypted_context = scheme.encrypt_context(plain_context)

print("what the provider stores (encrypted schema):")
for table_name in encrypted_context.database.table_names[:2]:
    columns = encrypted_context.database.table(table_name).schema.column_names
    print(f"  {table_name[:40]}...  ({len(columns)} physical columns)")
print()
print("an encrypted query:", encrypted_context.log[0].sql[:110], "...")
print()

# --------------------------------------------------------------------------- #
# 3. Provider side: result distances over ciphertext tuples, then mining.

measure = ResultDistance()
report = verify_distance_preservation(measure, plain_context, encrypted_context)
print(report.summary())

plain_matrix = measure.distance_matrix(plain_context)
encrypted_matrix = measure.distance_matrix(encrypted_context)

clusters_plain = k_medoids(plain_matrix, k=3)
clusters_encrypted = k_medoids(encrypted_matrix, k=3)
outliers_plain = top_n_outliers(plain_matrix, n_outliers=3)
outliers_encrypted = top_n_outliers(encrypted_matrix, n_outliers=3)

rows = [
    ("k-medoids labels identical", str(clusters_plain.labels == clusters_encrypted.labels)),
    ("medoid queries identical", str(clusters_plain.medoids == clusters_encrypted.medoids)),
    ("top-3 outlier queries identical", str(outliers_plain == outliers_encrypted)),
]
print(format_table(["check", "value"], rows))
print()

# --------------------------------------------------------------------------- #
# 4. Bonus: the owner can still run ad-hoc queries through the proxy and
#    decrypt the answers — the layer is a working (small) CryptDB.

question = parse_query(
    "SELECT customer_city, COUNT(*), SUM(order_amount) FROM customers "
    "JOIN orders ON customer_id = order_customer "
    "WHERE order_amount > 100 GROUP BY customer_city"
)
with scheme.proxy.session() as session:
    encrypted_answer = session.execute(question)
decrypted = scheme.proxy.decrypt_result(encrypted_answer)
print("owner-side decrypted answer to an ad-hoc aggregate query:")
print(format_table(decrypted.columns, [tuple(map(str, row)) for row in decrypted.rows]))
