"""Streaming encrypted queries into an incrementally maintained clustering.

The production shape of the paper's outsourcing story: the query log is not
a file that exists up front but a *stream* that grows while the provider
mines it.  This example runs the full loop through the public API:

1. the owner configures an :class:`~repro.api.EncryptedMiningService` and
   encrypts the database behind its CryptDB-style proxy,
2. batches of plaintext queries arrive at a service session, which rewrites
   them and streams the *encrypted* queries directly into an incremental
   mining matrix (the matrix satisfies the
   :class:`~repro.api.StreamSink` protocol — no separate log object needed),
3. the :class:`~repro.api.IncrementalDistanceMatrix` extends the
   token-distance matrix by the new pairs only and keeps DBSCAN labels,
   kNN lists and outlier scores current after every batch,
4. after each batch, the provider-side artefacts are compared against a full
   batch recompute over the grown log — they are identical, while the
   incremental path computed a fraction of the pairs.

Run with::

    python examples/streaming_mining.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    CryptoConfig,
    EncryptedMiningService,
    LogContext,
    MiningConfig,
    QueryLog,
    QueryLogGenerator,
    ServiceConfig,
    TokenDistance,
    WorkloadMix,
    condensed_length,
    dbscan,
    format_table,
    populate_database,
    webshop_profile,
)

# --------------------------------------------------------------------------- #
# 1. Owner side: workload, service configuration, encrypted database.

profile = webshop_profile(customer_rows=60, order_rows=150, product_rows=30)
workload = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=2026).generate(120)
batches = [workload.queries[start : start + 30] for start in range(0, 120, 30)]

service = EncryptedMiningService(
    ServiceConfig(
        crypto=CryptoConfig(paillier_bits=256, shared_det_key=True),
        mining=MiningConfig(
            measure="token",
            knn_k=3,
            outlier_p=0.9,
            outlier_d=0.9,
            dbscan_eps=0.55,
            dbscan_min_points=3,
        ),
    ),
    join_groups=profile.join_groups(),
)
service.encrypt(populate_database(profile, seed=2026))
print(f"owner: {len(workload)} queries will arrive in {len(batches)} batches of 30")
print()

# --------------------------------------------------------------------------- #
# 2./3. Provider side: an incremental mining matrix fed straight from the
# session.  The matrix owns its stream and satisfies StreamSink, so it *is*
# the `into` target — encrypted queries land in the mining artefacts the
# moment the session rewrites them.

mining = service.incremental_miner()

rows = []
with service.open_session(on_unsupported="skip") as session:
    for number, batch in enumerate(batches, start=1):
        session.stream(batch, into=mining)

        # 4. Oracle: a full batch recompute over everything seen so far.
        recomputed = TokenDistance().condensed_distance_matrix(
            LogContext(log=QueryLog(list(mining.stream)))
        )
        labels = mining.dbscan()
        reference = dbscan(recomputed, eps=0.55, min_points=3)
        assert np.array_equal(mining.condensed().values, recomputed.values)
        assert labels.labels == reference.labels

        n = mining.n_items
        rows.append(
            (
                number,
                n,
                mining.pairs_computed,
                condensed_length(n),
                labels.n_clusters,
                len(mining.outliers().outliers),
            )
        )

print(
    format_table(
        [
            "batch",
            "queries seen",
            "pairs computed (cumulative)",
            "pairs of one full recompute",
            "clusters",
            "outliers",
        ],
        rows,
    )
)
print()
recompute_total = sum(condensed_length(row[1]) for row in rows)
print(
    f"incremental maintenance computed {rows[-1][2]} pair distances in total; "
    f"recomputing from scratch after every batch would have cost {recompute_total}."
)
print("Every artefact matched the full recompute after every batch — the")
print("paper's equality carries over to streams, pair for pair and label for label.")
