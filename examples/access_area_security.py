"""Access-area distance on a SkyServer-like workload + the security pay-off.

Row 4 of Table I: the query-access-area distance needs the attribute domains
to be shared.  Constants are encrypted per attribute usage (OPE for range
attributes, DET for equality-only attributes), and attributes that occur only
inside aggregate arguments stay probabilistically encrypted — the
"via CryptDB, except HOM" cell, where the KIT-DPE scheme is strictly more
secure than running CryptDB as-is.

The example also runs the query-only attack of Sanamrad & Kossmann against
the encrypted logs of different schemes to make the security ordering of
Figure 1 tangible.

Run with::

    python examples/access_area_security.py
"""

from __future__ import annotations

from repro import (
    AccessAreaDistance,
    AccessAreaDpeScheme,
    KeyChain,
    LogContext,
    MasterKey,
    StructureDpeScheme,
    TokenDpeScheme,
    verify_distance_preservation,
)
from repro.api import complete_link, cut_dendrogram, format_table
from repro.attacks import query_only_attack
from repro.attacks.query_only import extract_constants
from repro.core.schemes.access_area_scheme import AttributeUsage
from repro.workloads import QueryLogGenerator, WorkloadMix, skyserver_profile

# --------------------------------------------------------------------------- #
# 1. An aggregate-heavy astronomy workload (the measure's original habitat).

profile = skyserver_profile(photo_rows=200, spec_rows=80)
log = QueryLogGenerator(profile, WorkloadMix.analytical(), seed=99).generate(50)
domains = profile.domain_catalog()
plain_context = LogContext(log=log, domains=domains)
print(f"workload: {len(log)} queries over photoobj/specobj")
print()

# --------------------------------------------------------------------------- #
# 2. Fit + encrypt with the access-area scheme; inspect the per-attribute
#    decision the scheme made.

keychain = KeyChain(MasterKey.generate())
scheme = AccessAreaDpeScheme(keychain)
usage = scheme.fit(log, domains)
encrypted_context = scheme.encrypt_context(plain_context)

usage_rows = [
    (attribute, used.value, {
        AttributeUsage.RANGE: "OPE",
        AttributeUsage.EQUALITY: "DET",
        AttributeUsage.AGGREGATE_ONLY: "PROB",
        AttributeUsage.OTHER: "PROB (nothing shared)",
    }[used])
    for attribute, used in sorted(usage.items())
]
print(format_table(["attribute", "usage in the log", "constant/domain encryption"], usage_rows))
print()

# --------------------------------------------------------------------------- #
# 3. Preservation + mining equality on the encrypted side.

measure = AccessAreaDistance()
report = verify_distance_preservation(measure, plain_context, encrypted_context)
print(report.summary())

plain_cut = cut_dendrogram(complete_link(measure.distance_matrix(plain_context)), n_clusters=4)
encrypted_cut = cut_dendrogram(
    complete_link(measure.distance_matrix(encrypted_context)), n_clusters=4
)
print("complete-link clusterings identical:", plain_cut == encrypted_cut)
print()

# --------------------------------------------------------------------------- #
# 4. The security pay-off: a query-only attacker with perfect knowledge of
#    the constant distribution against three schemes' encrypted logs.

auxiliary = extract_constants(log)
attack_rows = []
for name, attack_scheme in (
    ("token scheme (all constants DET)", TokenDpeScheme(keychain)),
    ("structure scheme (all constants PROB)", StructureDpeScheme(keychain)),
    ("access-area scheme (per-usage)", scheme),
):
    encrypted_log = attack_scheme.encrypt_log(log)
    outcome = query_only_attack(encrypted_log, auxiliary, plaintext_log=log)
    attack_rows.append(
        (name, f"{outcome.recovery_rate:.1%}",
         f"{outcome.distinct_ciphertexts}/{outcome.constants_seen}")
    )
print(format_table(["scheme", "constants recovered", "distinct ciphertexts"], attack_rows))
print()
print("DET constants fall to frequency analysis; PROB constants do not.  The")
print("access-area scheme only pays the DET/OPE price where the measure needs it.")
