"""Association-rule mining over an encrypted query log (the conclusion's outlook).

The paper's conclusion notes that the equivalence notions are useful beyond
distance-based mining — e.g. for association-rule mining over encrypted SQL
logs (Aligon et al.).  Because the structure scheme maps feature sets
bijectively, Apriori over the encrypted log finds exactly the images of the
plaintext itemsets and rules: same supports, same confidences, and the owner
can decrypt the rule items back to readable features.

Run with::

    python examples/association_rules_encrypted.py
"""

from __future__ import annotations

from repro import KeyChain, MasterKey
from repro.api import format_table, mine_query_log
from repro.core.schemes import StructureDpeScheme
from repro.workloads import QueryLogGenerator, WorkloadMix, webshop_profile

# --------------------------------------------------------------------------- #
# 1. Owner side: a workload with recurring query patterns.

profile = webshop_profile(customer_rows=60, order_rows=150, product_rows=30)
log = QueryLogGenerator(profile, WorkloadMix.analytical(), seed=5).generate(80)
print(f"workload: {len(log)} queries")

# --------------------------------------------------------------------------- #
# 2. Encrypt with the structure scheme and mine BOTH sides.

scheme = StructureDpeScheme(KeyChain(MasterKey.generate()))
encrypted_log = scheme.encrypt_log(log)

plain_itemsets, plain_rules = mine_query_log(log, min_support=0.15, min_confidence=0.8)
encrypted_itemsets, encrypted_rules = mine_query_log(
    encrypted_log, min_support=0.15, min_confidence=0.8
)

# --------------------------------------------------------------------------- #
# 3. The statistics coincide exactly.

rows = [
    ("frequent itemsets", len(plain_itemsets), len(encrypted_itemsets)),
    ("association rules", len(plain_rules), len(encrypted_rules)),
    (
        "support histogram identical",
        "-",
        str(
            sorted((len(i.items), i.support_count) for i in plain_itemsets)
            == sorted((len(i.items), i.support_count) for i in encrypted_itemsets)
        ),
    ),
    (
        "rule (support, confidence) pairs identical",
        "-",
        str(
            sorted((r.support, round(r.confidence, 6)) for r in plain_rules)
            == sorted((r.support, round(r.confidence, 6)) for r in encrypted_rules)
        ),
    ),
]
print(format_table(["quantity", "plaintext", "encrypted"], rows))
print()

# --------------------------------------------------------------------------- #
# 4. A provider-side rule, and what the owner reads after decryption.

if encrypted_rules:
    provider_rule = encrypted_rules[0]
    print("a rule as the provider sees it:")
    print("  ", str(provider_rule)[:120], "...")
    print("the corresponding plaintext rule (owner side):")
    print("  ", str(plain_rules[0]))
