"""The sublinear mining path through the public facade and the server.

The approx layer must be reachable end to end *through* ``repro.api``: the
``MiningConfig`` knobs select it, ``mine(approx=True)`` returns the same
typed :class:`MiningResult` (matrix-less, stats-carrying) bit-for-bit equal
to the exact path, the ``approx_miner()`` / ``sharded_miner()`` builders
are real :class:`StreamSink` targets for ``service.stream``, and
``MiningServer.mine`` serves it per tenant with its own counter.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ApiError,
    BackendConfig,
    CandidateStats,
    ConfigError,
    CryptoConfig,
    EncryptedMiningService,
    MiningConfig,
    MiningServer,
    ServerConfig,
    ServiceConfig,
    WorkloadConfig,
)

APPROX_MINING = dict(
    measure="token", knn_k=3, outlier_p=0.9, outlier_d=0.6, dbscan_eps=0.5,
    dbscan_min_points=3,
)


def _config(**mining_overrides) -> ServiceConfig:
    return ServiceConfig(
        crypto=CryptoConfig(passphrase="approx-api-tests", paillier_bits=256),
        backend=BackendConfig(name="memory", on_unsupported="skip"),
        workload=WorkloadConfig(size=24, seed=5),
        mining=MiningConfig(**{**APPROX_MINING, **mining_overrides}),
    )


@pytest.fixture(scope="module")
def encrypted_log():
    """One served workload's encrypted log, shared by the module."""
    service = EncryptedMiningService(_config())
    service.encrypt(service.build_database())
    result = service.run_workload(service.generate_workload())
    return result.encrypted_log()


class TestMiningConfigKnobs:
    def test_defaults_keep_the_exact_path(self):
        mining = MiningConfig()
        assert mining.approx is False
        assert mining.pivots == 8
        assert mining.window is None
        assert mining.window_decay == 0.0
        assert mining.shards == 4
        assert mining.max_candidates is None
        assert mining.seed == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(approx="yes"),
            dict(pivots=0),
            dict(window=0),
            dict(window_decay=1.0),
            dict(window_decay=-0.2),
            dict(shards=0),
            dict(max_candidates=0),
            dict(seed="zero"),
            dict(seed=True),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MiningConfig(**kwargs)


class TestApproxMine:
    def test_approx_equals_exact_bit_for_bit(self, encrypted_log):
        exact = EncryptedMiningService(_config()).mine(encrypted_log)
        approx = EncryptedMiningService(
            _config(approx=True, pivots=5, seed=3)
        ).mine(encrypted_log)
        assert approx.matrix is None
        assert exact.matrix is not None
        stats = approx.candidate_stats
        assert isinstance(stats, CandidateStats) and stats.certified_complete
        assert approx.clusters == exact.clusters
        assert approx.outliers == exact.outliers
        assert approx.knn == exact.knn
        assert approx.n_items == exact.n_items
        assert approx.labels == exact.labels
        assert exact.candidate_stats is None

    def test_capped_mine_loses_the_certificate(self, encrypted_log):
        capped = EncryptedMiningService(
            _config(approx=True, pivots=1, max_candidates=1)
        ).mine(encrypted_log)
        assert capped.candidate_stats is not None
        assert not capped.candidate_stats.certified_complete

    def test_mining_failures_stay_api_errors(self):
        service = EncryptedMiningService(_config(approx=True))
        with pytest.raises(ApiError):
            service.mine([])


class TestStreamingMiners:
    def test_approx_miner_is_a_stream_sink(self, encrypted_log):
        service = EncryptedMiningService(
            _config(approx=True, window=16, pivots=4, seed=2)
        )
        service.encrypt(service.build_database())
        miner = service.approx_miner()
        assert miner.window_log.window == 16
        service.stream([service.generate_workload()], into=miner)
        assert 0 < miner.n_items <= 16
        clusters, stats = miner.dbscan()
        assert stats.certified_complete
        assert len(clusters.labels) == miner.n_items

    def test_sharded_miner_defers_distance_work_until_mining(self, encrypted_log):
        service = EncryptedMiningService(_config(approx=True, shards=3, pivots=4))
        service.encrypt(service.build_database())
        sharded = service.sharded_miner()
        assert sharded.n_shards == 3
        service.stream([service.generate_workload()], into=sharded)
        assert sharded.pending > 0
        assert sharded.n_items == 0
        outliers, stats = sharded.outliers()
        assert sharded.pending == 0
        assert stats.certified_complete
        assert len(outliers.fraction_far) == sharded.n_items


class TestServerMine:
    def test_server_mines_per_tenant_and_counts_runs(self, encrypted_log):
        with MiningServer(ServerConfig(workers=2)) as server:
            server.add_tenant("alpha", _config(approx=True, pivots=5, seed=3))
            server.add_tenant("beta", _config())
            approx = server.mine("alpha", encrypted_log).result()
            exact = server.mine("beta", encrypted_log).result()
            assert approx.candidate_stats is not None
            assert exact.candidate_stats is None
            assert approx.clusters == exact.clusters
            assert approx.knn == exact.knn
            stats = server.stats()
            assert stats.for_tenant("alpha").mining_runs == 1
            assert stats.for_tenant("beta").mining_runs == 1
            assert server.metrics()["tenants"]["alpha"]["mining_runs"] == 1

    def test_failed_mine_counts_as_failure(self, encrypted_log):
        with MiningServer(ServerConfig(workers=1)) as server:
            server.add_tenant("alpha", _config(approx=True))
            with pytest.raises(ApiError):
                server.mine("alpha", []).result()
            tenant = server.stats().for_tenant("alpha")
            assert tenant.failures == 1
            assert tenant.mining_runs == 0
