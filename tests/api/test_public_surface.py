"""The public surface of ``repro.api`` is a deliberate, snapshot-tested set.

Two contracts:

* the exact exported symbol set of ``repro.api`` matches the frozen
  snapshot below, so any addition or removal is an explicit decision made
  in this file — never an accident of an import shuffle;
* the CLI, the experiment drivers under ``repro.analysis`` and every script
  in ``examples/`` import none of the internal layers the façade wraps
  (``repro.cryptdb``, ``repro.db``, ``repro.mining``) — they run through
  ``repro.api`` exclusively.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro.api

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The frozen public surface (PR 6 added the serving layer, PR 7 the
#: sublinear mining layer, PR 8 the integrity layer, PR 9 the reliability
#: layer).  Changing this set is an API decision: update the snapshot *and*
#: the README "Public API" section together.
EXPECTED_SURFACE = frozenset(
    {
        "API_VERSION",
        "AccessAreaDistance",
        "AccessAreaDpeScheme",
        "ApiError",
        "ApproxStreamMiner",
        "BackendConfig",
        "CandidateStats",
        "ChainCheckpoint",
        "CircuitBreaker",
        "CircuitOpen",
        "ColumnExposure",
        "CondensedDistanceMatrix",
        "ConfigError",
        "CryptoConfig",
        "DEFAULT_BACKEND",
        "DbscanResult",
        "Deadline",
        "DeadlineExceeded",
        "Dendrogram",
        "EncryptedMiningService",
        "FaultInjector",
        "EncryptedResult",
        "ExposureReport",
        "IncrementalDistanceMatrix",
        "JoinGroupSpec",
        "KMedoidsResult",
        "KeyChain",
        "LogContext",
        "MasterKey",
        "MiningConfig",
        "MiningResult",
        "MiningServer",
        "OutlierResult",
        "PivotIndex",
        "QueryLog",
        "QueryLogGenerator",
        "QueryRejected",
        "QueueStats",
        "RecoveryReport",
        "ReliabilityConfig",
        "ReliabilityStats",
        "ResultDistance",
        "ResultDpeScheme",
        "RetryPolicy",
        "ServerConfig",
        "ServerError",
        "ServerOverloaded",
        "ServerStats",
        "ServiceConfig",
        "ServiceError",
        "ServiceSession",
        "SessionError",
        "ShardedIncrementalMatrix",
        "SlidingWindowQueryLog",
        "StreamJournal",
        "StreamSink",
        "StreamingQueryLog",
        "StructureDistance",
        "StructureDpeScheme",
        "TamperDetected",
        "TenantHandle",
        "TenantStats",
        "TokenDistance",
        "TokenDpeScheme",
        "WorkloadConfig",
        "WorkloadMix",
        "WorkloadProfile",
        "WorkloadResult",
        "adjusted_rand_index",
        "available_backends",
        "classify_transient",
        "clusterings_equivalent",
        "complete_link",
        "condensed_length",
        "cut_dendrogram",
        "dbscan",
        "distance_based_outliers",
        "format_table",
        "k_medoids",
        "k_nearest_neighbors",
        "mine_query_log",
        "pairwise_view",
        "parse_query",
        "populate_database",
        "recover_matrix",
        "render_query",
        "skyserver_profile",
        "top_n_outliers",
        "verify_distance_preservation",
        "webshop_profile",
    }
)


class TestSurfaceSnapshot:
    def test_exact_symbol_set(self) -> None:
        """Additions/removals to repro.api.__all__ must be made here, deliberately."""
        exported = set(repro.api.__all__)
        unexpected = sorted(exported - EXPECTED_SURFACE)
        missing = sorted(EXPECTED_SURFACE - exported)
        assert not unexpected, f"new public symbols need a snapshot decision: {unexpected}"
        assert not missing, f"symbols removed from the public surface: {missing}"

    def test_all_is_sorted_without_duplicates(self) -> None:
        assert repro.api.__all__ == sorted(set(repro.api.__all__))

    def test_every_exported_symbol_resolves(self) -> None:
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), f"repro.api.{name} does not resolve"

    def test_api_version_is_a_string(self) -> None:
        assert isinstance(repro.api.API_VERSION, str) and repro.api.API_VERSION


# --------------------------------------------------------------------------- #
# façade-only imports in the migrated entry points

#: Internal layers the migrated entry points must not import directly.
BANNED_PREFIXES = ("repro.cryptdb", "repro.db", "repro.mining", "repro.server")


def _imported_modules(path: Path) -> set[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            modules.add(node.module)
    return modules


def _banned_imports(path: Path) -> list[str]:
    return sorted(
        module
        for module in _imported_modules(path)
        if module in BANNED_PREFIXES
        or any(module.startswith(prefix + ".") for prefix in BANNED_PREFIXES)
    )


def _facade_only_files() -> list[Path]:
    files = sorted((REPO_ROOT / "examples").glob("*.py"))
    files.append(REPO_ROOT / "src" / "repro" / "cli.py")
    files.extend(sorted((REPO_ROOT / "src" / "repro" / "analysis").glob("*.py")))
    return files


@pytest.mark.parametrize("path", _facade_only_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_entry_points_import_only_the_facade(path: Path) -> None:
    """cli.py, repro.analysis and examples/ never import the wrapped layers."""
    banned = _banned_imports(path)
    assert not banned, (
        f"{path.relative_to(REPO_ROOT)} imports internal layers {banned}; "
        "route through repro.api instead"
    )


def test_scan_actually_sees_the_entry_points() -> None:
    """Guard the guard: the scan covers the CLI, analysis and all examples."""
    files = _facade_only_files()
    names = {path.name for path in files}
    assert "cli.py" in names and "experiments.py" in names and "quickstart.py" in names
    assert sum(1 for path in files if path.parent.name == "examples") >= 7
