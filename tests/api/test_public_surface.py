"""The public surface of ``repro.api`` is a deliberate, snapshot-tested set.

Two contracts:

* the exact exported symbol set of ``repro.api`` matches the frozen
  snapshot below, so any addition or removal is an explicit decision made
  in this file — never an accident of an import shuffle;
* the CLI, the experiment drivers under ``repro.analysis`` and every script
  in ``examples/`` import none of the internal layers the façade wraps
  (``repro.cryptdb``, ``repro.db``, ``repro.mining``) — they run through
  ``repro.api`` exclusively.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro.api

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The frozen public surface (PR 6 added the serving layer, PR 7 the
#: sublinear mining layer, PR 8 the integrity layer, PR 9 the reliability
#: layer).  Changing this set is an API decision: update the snapshot *and*
#: the README "Public API" section together.
EXPECTED_SURFACE = frozenset(
    {
        "API_VERSION",
        "AccessAreaDistance",
        "AccessAreaDpeScheme",
        "ApiError",
        "ApproxStreamMiner",
        "BackendConfig",
        "CandidateStats",
        "ChainCheckpoint",
        "CircuitBreaker",
        "CircuitOpen",
        "ColumnExposure",
        "CondensedDistanceMatrix",
        "ConfigError",
        "CryptoConfig",
        "DEFAULT_BACKEND",
        "DbscanResult",
        "Deadline",
        "DeadlineExceeded",
        "Dendrogram",
        "EncryptedMiningService",
        "FaultInjector",
        "EncryptedResult",
        "ExposureReport",
        "IncrementalDistanceMatrix",
        "JoinGroupSpec",
        "KMedoidsResult",
        "KeyChain",
        "LogContext",
        "MasterKey",
        "MiningConfig",
        "MiningResult",
        "MiningServer",
        "OutlierResult",
        "PivotIndex",
        "QueryLog",
        "QueryLogGenerator",
        "QueryRejected",
        "QueueStats",
        "RecoveryReport",
        "ReliabilityConfig",
        "ReliabilityStats",
        "ResultDistance",
        "ResultDpeScheme",
        "RetryPolicy",
        "ServerConfig",
        "ServerError",
        "ServerOverloaded",
        "ServerStats",
        "ServiceConfig",
        "ServiceError",
        "ServiceSession",
        "SessionError",
        "ShardedIncrementalMatrix",
        "SlidingWindowQueryLog",
        "StreamJournal",
        "StreamSink",
        "StreamingQueryLog",
        "StructureDistance",
        "StructureDpeScheme",
        "TamperDetected",
        "TenantHandle",
        "TenantStats",
        "TokenDistance",
        "TokenDpeScheme",
        "WorkloadConfig",
        "WorkloadMix",
        "WorkloadProfile",
        "WorkloadResult",
        "adjusted_rand_index",
        "available_backends",
        "classify_transient",
        "clusterings_equivalent",
        "complete_link",
        "condensed_length",
        "cut_dendrogram",
        "dbscan",
        "distance_based_outliers",
        "format_table",
        "k_medoids",
        "k_nearest_neighbors",
        "mine_query_log",
        "pairwise_view",
        "parse_query",
        "populate_database",
        "recover_matrix",
        "render_query",
        "skyserver_profile",
        "top_n_outliers",
        "verify_distance_preservation",
        "webshop_profile",
    }
)


class TestSurfaceSnapshot:
    def test_exact_symbol_set(self) -> None:
        """Additions/removals to repro.api.__all__ must be made here, deliberately."""
        exported = set(repro.api.__all__)
        unexpected = sorted(exported - EXPECTED_SURFACE)
        missing = sorted(EXPECTED_SURFACE - exported)
        assert not unexpected, f"new public symbols need a snapshot decision: {unexpected}"
        assert not missing, f"symbols removed from the public surface: {missing}"

    def test_all_is_sorted_without_duplicates(self) -> None:
        assert repro.api.__all__ == sorted(set(repro.api.__all__))

    def test_every_exported_symbol_resolves(self) -> None:
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), f"repro.api.{name} does not resolve"

    def test_api_version_is_a_string(self) -> None:
        assert isinstance(repro.api.API_VERSION, str) and repro.api.API_VERSION


# --------------------------------------------------------------------------- #
# façade-only imports in the migrated entry points
#
# The hand-rolled AST scan that used to live here became the `layering` rule
# of `repro lint` (repro.analysis.staticcheck.rules.layering).  These tests
# keep the contract pinned from the API side: the rule is registered, the
# entry-points layer is configured with the historical bans, and the rule
# actually holds over the real tree.

#: Internal layers the migrated entry points must not import directly
#: (the PR 5 contract, now enforced by the `layering` lint rule).
BANNED_PREFIXES = ("repro.cryptdb", "repro.db", "repro.mining", "repro.server")


def test_layering_rule_is_registered() -> None:
    """`repro lint` ships the layering rule that replaced the scan here."""
    from repro.analysis.staticcheck import available_checkers, create_checker

    assert "layering" in available_checkers()
    assert create_checker("layering").name == "layering"


def test_entry_point_layer_keeps_the_historical_bans() -> None:
    """The configured entry-points layer bans exactly the PR 5 prefixes."""
    from repro.analysis.staticcheck.config import default_config

    layers = {spec.name: spec for spec in default_config().layers}
    entry = layers["entry-points"]
    assert set(BANNED_PREFIXES) <= set(entry.banned)
    # The migrated surface: the CLI, the experiment drivers, every example.
    for member in ("repro.cli", "repro.analysis", "examples"):
        assert entry.applies_to(member), member
        assert entry.applies_to(member + ".anything"), member


def test_entry_points_import_only_the_facade() -> None:
    """cli.py, repro.analysis and examples/ never import the wrapped layers."""
    from repro.analysis.staticcheck import format_report, run_lint

    report = run_lint(
        [
            REPO_ROOT / "examples",
            REPO_ROOT / "src" / "repro" / "cli.py",
            REPO_ROOT / "src" / "repro" / "analysis",
        ],
        rules=["layering"],
    )
    assert report.findings == (), format_report(report)
    assert report.files_checked >= 9  # guard the guard: examples + cli + drivers


def test_layering_rule_still_detects_violations() -> None:
    """Guard the guard: the rule flags a banned import when one exists."""
    from repro.analysis.staticcheck.config import default_config
    from repro.analysis.staticcheck.parsing import SourceFile, module_identity
    from repro.analysis.staticcheck.rules.layering import LayeringRule

    synthetic = "from repro.db.executor import QueryExecutor\n"
    source = SourceFile(
        path=Path("src/repro/cli.py"),
        text=synthetic,
        tree=ast.parse(synthetic),
        comments={},
        module="repro.cli",
    )
    findings = LayeringRule().check(source, default_config())
    assert len(findings) == 1 and findings[0].rule == "layering"
    assert module_identity(REPO_ROOT / "src" / "repro" / "cli.py") == "repro.cli"
