"""Config dataclasses: property-based round-trips and loud rejection.

The contract of :mod:`repro.api.config`: ``from_dict(to_dict(cfg)) == cfg``
for every config (including through a JSON serialisation), and every
invalid value — negative pool sizes, unknown backend names, zero workers,
unknown keys — raises :class:`~repro.api.errors.ConfigError` naming the
problem instead of travelling into the pipeline.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import (
    ApiError,
    BackendConfig,
    ConfigError,
    CryptoConfig,
    MiningConfig,
    ReliabilityConfig,
    ServerConfig,
    ServiceConfig,
    WorkloadConfig,
    available_backends,
)
from repro.api.config import MEASURE_NAMES, MIX_NAMES, PROFILE_NAMES

crypto_configs = st.builds(
    CryptoConfig,
    passphrase=st.one_of(st.none(), st.text(max_size=20)),
    paillier_bits=st.integers(min_value=64, max_value=4096),
    paillier_pool_size=st.integers(min_value=0, max_value=1000),
    shared_det_key=st.booleans(),
)

backend_configs = st.builds(
    BackendConfig,
    name=st.sampled_from(sorted(available_backends())),
    on_unsupported=st.sampled_from(["raise", "skip"]),
)

mining_configs = st.builds(
    MiningConfig,
    measure=st.sampled_from(MEASURE_NAMES),
    workers=st.integers(min_value=1, max_value=16),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=100_000)),
    knn_k=st.integers(min_value=1, max_value=50),
    outlier_p=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    outlier_d=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    dbscan_eps=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    dbscan_min_points=st.integers(min_value=1, max_value=50),
)

workload_configs = st.builds(
    WorkloadConfig,
    profile=st.sampled_from(PROFILE_NAMES),
    mix=st.sampled_from(MIX_NAMES),
    size=st.integers(min_value=1, max_value=100_000),
    seed=st.integers(min_value=-(2**31), max_value=2**31),
)

@st.composite
def reliability_configs(draw) -> ReliabilityConfig:
    """Valid reliability configs; the coupled fields honour their ordering.

    ``backoff_max`` is drawn as ``backoff_base`` times a factor >= 1 and
    ``breaker_window`` as ``breaker_min_calls`` plus a slack >= 0, so the
    strategy never trips the cross-field validation it is meant to exercise
    only in :class:`TestRejection`.
    """
    backoff_base = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    min_calls = draw(st.integers(min_value=1, max_value=16))
    return ReliabilityConfig(
        max_retries=draw(st.integers(min_value=0, max_value=10)),
        backoff_base=backoff_base,
        backoff_max=backoff_base
        * draw(st.floats(min_value=1.0, max_value=50.0, allow_nan=False)),
        deadline_ms=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=86_400_000))
        ),
        breaker_enabled=draw(st.booleans()),
        breaker_failure_rate=draw(
            st.floats(
                min_value=0.0, max_value=1.0, allow_nan=False, exclude_min=True
            )
        ),
        breaker_min_calls=min_calls,
        breaker_window=min_calls + draw(st.integers(min_value=0, max_value=16)),
        breaker_cooldown_seconds=draw(
            st.floats(min_value=0.0, max_value=3600.0, allow_nan=False)
        ),
        journal_path=draw(st.one_of(st.none(), st.text(max_size=30))),
        snapshot_every=draw(st.integers(min_value=0, max_value=100)),
    )


service_configs = st.builds(
    ServiceConfig,
    crypto=crypto_configs,
    backend=backend_configs,
    mining=mining_configs,
    workload=workload_configs,
    reliability=reliability_configs(),
)

server_configs = st.builds(
    ServerConfig,
    workers=st.integers(min_value=1, max_value=64),
    max_pending=st.integers(min_value=1, max_value=10_000),
    submit_timeout=st.one_of(
        st.none(),
        st.floats(min_value=0.001, max_value=3600.0, allow_nan=False),
    ),
    reliability=reliability_configs(),
)


class TestRoundTrips:
    """``from_dict(to_dict(cfg)) == cfg`` for every config dataclass."""

    @given(config=crypto_configs)
    def test_crypto(self, config: CryptoConfig) -> None:
        assert CryptoConfig.from_dict(config.to_dict()) == config

    @given(config=backend_configs)
    def test_backend(self, config: BackendConfig) -> None:
        assert BackendConfig.from_dict(config.to_dict()) == config

    @given(config=mining_configs)
    def test_mining(self, config: MiningConfig) -> None:
        assert MiningConfig.from_dict(config.to_dict()) == config

    @given(config=workload_configs)
    def test_workload(self, config: WorkloadConfig) -> None:
        assert WorkloadConfig.from_dict(config.to_dict()) == config

    @given(config=reliability_configs())
    def test_reliability(self, config: ReliabilityConfig) -> None:
        assert ReliabilityConfig.from_dict(config.to_dict()) == config

    @given(config=reliability_configs())
    def test_reliability_survives_json(self, config: ReliabilityConfig) -> None:
        assert (
            ReliabilityConfig.from_dict(json.loads(json.dumps(config.to_dict())))
            == config
        )

    @given(config=service_configs)
    def test_service_nested(self, config: ServiceConfig) -> None:
        assert ServiceConfig.from_dict(config.to_dict()) == config

    @given(config=service_configs)
    def test_service_survives_json(self, config: ServiceConfig) -> None:
        """to_dict() is plain JSON data; a JSON round-trip loses nothing."""
        assert ServiceConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    @given(config=server_configs)
    def test_server(self, config: ServerConfig) -> None:
        assert ServerConfig.from_dict(config.to_dict()) == config

    @given(config=server_configs)
    def test_server_survives_json(self, config: ServerConfig) -> None:
        assert ServerConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_defaults_round_trip(self) -> None:
        assert ServiceConfig.from_dict(ServiceConfig().to_dict()) == ServiceConfig()

    def test_from_dict_accepts_built_subconfigs(self) -> None:
        config = ServiceConfig.from_dict({"crypto": CryptoConfig(paillier_bits=256)})
        assert config.crypto.paillier_bits == 256
        assert config.backend == BackendConfig()

    def test_nested_reliability_dicts_are_coerced(self) -> None:
        """Both container configs accept a plain mapping for ``reliability``."""
        service = ServiceConfig.from_dict(
            {"reliability": {"max_retries": 3, "deadline_ms": 500}}
        )
        assert service.reliability == ReliabilityConfig(max_retries=3, deadline_ms=500)
        server = ServerConfig(reliability={"breaker_enabled": True})
        assert server.reliability == ReliabilityConfig(breaker_enabled=True)
        assert ServerConfig.from_dict(server.to_dict()) == server


class TestRejection:
    """Invalid values raise ConfigError naming the offending field."""

    @pytest.mark.parametrize(
        ("kwargs", "needle"),
        [
            ({"paillier_pool_size": -1}, "paillier_pool_size"),
            ({"paillier_pool_size": 1.5}, "paillier_pool_size"),
            ({"paillier_bits": 32}, "paillier_bits"),
            ({"paillier_bits": True}, "paillier_bits"),
            ({"passphrase": 42}, "passphrase"),
            ({"shared_det_key": "yes"}, "shared_det_key"),
        ],
    )
    def test_crypto_rejections(self, kwargs: dict, needle: str) -> None:
        with pytest.raises(ConfigError, match=needle):
            CryptoConfig(**kwargs)

    def test_unknown_backend_name_lists_available(self) -> None:
        with pytest.raises(ConfigError) as excinfo:
            BackendConfig(name="postgres")
        message = str(excinfo.value)
        assert "postgres" in message
        for name in available_backends():
            assert name in message

    def test_bad_unsupported_policy(self) -> None:
        with pytest.raises(ConfigError, match="on_unsupported"):
            BackendConfig(on_unsupported="ignore")

    @pytest.mark.parametrize(
        ("kwargs", "needle"),
        [
            ({"workers": 0}, "workers"),
            ({"workers": -2}, "workers"),
            ({"chunk_size": 0}, "chunk_size"),
            ({"knn_k": 0}, "knn_k"),
            ({"outlier_p": 0.0}, "outlier_p"),
            ({"outlier_p": 1.5}, "outlier_p"),
            ({"outlier_d": -0.1}, "outlier_d"),
            ({"dbscan_eps": -1.0}, "dbscan_eps"),
            ({"dbscan_min_points": 0}, "dbscan_min_points"),
            ({"measure": "euclidean"}, "measure"),
            ({"outlier_p": True}, "outlier_p"),
            ({"dbscan_eps": False}, "dbscan_eps"),
            ({"outlier_d": "far"}, "outlier_d"),
        ],
    )
    def test_mining_rejections(self, kwargs: dict, needle: str) -> None:
        with pytest.raises(ConfigError, match=needle):
            MiningConfig(**kwargs)

    @pytest.mark.parametrize(
        ("kwargs", "needle"),
        [
            ({"size": 0}, "size"),
            ({"profile": "tpch"}, "profile"),
            ({"mix": "oltp"}, "mix"),
            ({"seed": "three"}, "seed"),
        ],
    )
    def test_workload_rejections(self, kwargs: dict, needle: str) -> None:
        with pytest.raises(ConfigError, match=needle):
            WorkloadConfig(**kwargs)

    @pytest.mark.parametrize(
        ("kwargs", "needle"),
        [
            ({"workers": 0}, "workers"),
            ({"workers": True}, "workers"),
            ({"max_pending": 0}, "max_pending"),
            ({"max_pending": -5}, "max_pending"),
            ({"submit_timeout": 0.0}, "submit_timeout"),
            ({"submit_timeout": -1.0}, "submit_timeout"),
            ({"submit_timeout": "soon"}, "submit_timeout"),
        ],
    )
    def test_server_rejections(self, kwargs: dict, needle: str) -> None:
        with pytest.raises(ConfigError, match=needle):
            ServerConfig(**kwargs)

    @pytest.mark.parametrize(
        ("kwargs", "needle"),
        [
            ({"max_retries": -1}, "max_retries"),
            ({"max_retries": 1.5}, "max_retries"),
            ({"backoff_base": -0.1}, "backoff_base"),
            ({"backoff_base": 1.0, "backoff_max": 0.5}, "backoff_max"),
            ({"deadline_ms": 0}, "deadline_ms"),
            ({"deadline_ms": "soon"}, "deadline_ms"),
            ({"breaker_enabled": "yes"}, "breaker_enabled"),
            ({"breaker_failure_rate": 0.0}, "breaker_failure_rate"),
            ({"breaker_failure_rate": 1.5}, "breaker_failure_rate"),
            ({"breaker_min_calls": 0}, "breaker_min_calls"),
            ({"breaker_min_calls": 4, "breaker_window": 3}, "breaker_window"),
            ({"breaker_cooldown_seconds": -1.0}, "breaker_cooldown_seconds"),
            ({"journal_path": 42}, "journal_path"),
            ({"snapshot_every": -1}, "snapshot_every"),
        ],
    )
    def test_reliability_rejections(self, kwargs: dict, needle: str) -> None:
        with pytest.raises(ConfigError, match=needle):
            ReliabilityConfig(**kwargs)

    def test_unknown_keys_rejected_by_name(self) -> None:
        with pytest.raises(ConfigError, match="pool_size"):
            CryptoConfig.from_dict({"pool_size": 10})
        with pytest.raises(ConfigError, match="cripto"):
            ServiceConfig.from_dict({"cripto": {}})

    def test_from_dict_requires_mapping(self) -> None:
        with pytest.raises(ConfigError, match="mapping"):
            MiningConfig.from_dict([("workers", 2)])  # type: ignore[arg-type]
        with pytest.raises(ConfigError, match="mapping"):
            ServiceConfig.from_dict("{}")  # type: ignore[arg-type]

    def test_service_config_field_types_checked(self) -> None:
        with pytest.raises(ConfigError, match="crypto"):
            ServiceConfig(crypto={"paillier_bits": 256})  # type: ignore[arg-type]

    def test_config_error_is_value_error_and_api_error(self) -> None:
        """One except clause catches config problems whichever way you spell it."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ApiError)
