"""Legacy entry points: deprecation shims with bit-for-bit equivalent output.

The old hand-wired path — construct a :class:`CryptDBProxy`, call its
single-query conveniences — still works but emits ``DeprecationWarning``;
the new path runs through :class:`repro.api.EncryptedMiningService`.  On
the P1 workload (the experiment the façade migration is proven against),
both paths must produce the same :class:`EncryptedResult` rows and the same
mining labels.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    CryptoConfig,
    EncryptedMiningService,
    LogContext,
    QueryLogGenerator,
    ServiceConfig,
    TokenDistance,
    WorkloadMix,
    dbscan,
    populate_database,
    webshop_profile,
)
from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import CryptDBProxy
from repro.sql.log import QueryLog

#: P1's proxy parameters (see repro.analysis.experiments.run_p1).
P1_PASSPHRASE = "experiments/p1-proxy"
P1_SEED = 8


@pytest.fixture(scope="module")
def p1_profile():
    return webshop_profile(customer_rows=40, order_rows=80, product_rows=20)


@pytest.fixture(scope="module")
def p1_workload(p1_profile) -> QueryLog:
    return QueryLogGenerator(p1_profile, WorkloadMix.spj_only(), seed=P1_SEED + 1).generate(20)


@pytest.fixture(scope="module")
def old_proxy(p1_profile) -> CryptDBProxy:
    proxy = CryptDBProxy(
        KeyChain(MasterKey.from_passphrase(P1_PASSPHRASE)),
        join_groups=p1_profile.join_groups(),
        paillier_bits=256,
        shared_det_key=True,
    )
    proxy.encrypt_database(populate_database(p1_profile, seed=P1_SEED))
    return proxy


@pytest.fixture(scope="module")
def new_service(p1_profile) -> EncryptedMiningService:
    service = EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(
                passphrase=P1_PASSPHRASE, paillier_bits=256, shared_det_key=True
            )
        ),
        join_groups=p1_profile.join_groups(),
    )
    service.encrypt(populate_database(p1_profile, seed=P1_SEED))
    return service


def _old_path_results(proxy: CryptDBProxy, workload: QueryLog):
    """The legacy path: the deprecated per-query conveniences, under warning capture."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = [proxy.execute(query) for query in workload.queries]
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    return results, deprecations


class TestDeprecationShims:
    def test_single_query_entry_points_warn(self, old_proxy, p1_workload) -> None:
        query = p1_workload.queries[0]
        with pytest.warns(DeprecationWarning, match="encrypt_query"):
            old_proxy.encrypt_query(query)
        with pytest.warns(DeprecationWarning, match="execute"):
            old_proxy.execute(query)
        with pytest.warns(DeprecationWarning, match="execute_encrypted"):
            old_proxy.execute_encrypted(old_proxy.rewrite_query(query))

    def test_old_and_new_paths_agree_on_the_p1_workload(
        self, old_proxy, new_service, p1_workload
    ) -> None:
        """Same EncryptedResult rows, query for query — the shim is equivalent."""
        old_results, deprecations = _old_path_results(old_proxy, p1_workload)
        assert deprecations, "the legacy path must emit DeprecationWarning"

        new_result = new_service.run_workload(p1_workload, on_unsupported="raise")
        assert new_result.queries_served == len(old_results)
        for old, new in zip(old_results, new_result.results):
            assert old.plain_query == new.plain_query
            assert old.encrypted_sql == new.encrypted_sql
            assert old.result.rows == new.result.rows
            assert old.result.columns == new.result.columns

    def test_old_and_new_paths_agree_on_mining_labels(
        self, old_proxy, new_service, p1_workload
    ) -> None:
        """Token-distance DBSCAN over the encrypted workload: identical labels."""
        old_results, _ = _old_path_results(old_proxy, p1_workload)
        old_log = QueryLog.from_queries(result.encrypted_query for result in old_results)
        mining = new_service.config.mining
        old_labels = dbscan(
            TokenDistance().condensed_distance_matrix(LogContext(log=old_log)),
            eps=mining.dbscan_eps,
            min_points=mining.dbscan_min_points,
        ).labels

        new_encrypted = new_service.run_workload(p1_workload).encrypted_log()
        new_labels = new_service.mine(new_encrypted).labels
        assert old_labels == new_labels
