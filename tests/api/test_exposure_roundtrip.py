"""The exposure report round-trips through plain data, counters included.

``ExposureReport.to_dict`` / ``from_dict`` are the serialisation boundary
for dashboards and the server's metrics endpoint; the regression this file
pins down is that the integrity counters (``cells_verified``,
``tamper_detected``) survive the round trip, that dicts saved before the
integrity layer existed still load (counters default to zero), and that
malformed payloads fail loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ColumnExposure, ExposureReport, ServiceError
from repro.crypto.base import EncryptionClass


def sample_report() -> ExposureReport:
    return ExposureReport(
        columns=(
            ColumnExposure(
                table="customers",
                column="city",
                onions=(("eq", "DET"), ("ord", "OPE")),
                weakest_class=EncryptionClass.OPE,
                security_level=2,
                cells_verified=152,
                tamper_detected=3,
            ),
            ColumnExposure(
                table="orders",
                column="total",
                onions=(("eq", "DET"), ("hom", "HOM"), ("ord", "OPE")),
                weakest_class=EncryptionClass.OPE,
                security_level=2,
            ),
        )
    )


class TestRoundTrip:
    def test_exact_round_trip_preserves_counters(self) -> None:
        report = sample_report()
        assert ExposureReport.from_dict(report.to_dict()) == report

    def test_round_trip_survives_json(self) -> None:
        report = sample_report()
        rebuilt = ExposureReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.for_column("customers", "city").cells_verified == 152
        assert rebuilt.for_column("customers", "city").tamper_detected == 3

    def test_pre_integrity_dicts_still_load(self) -> None:
        data = sample_report().to_dict()
        for entry in data["columns"]:
            del entry["cells_verified"]
            del entry["tamper_detected"]
        rebuilt = ExposureReport.from_dict(data)
        assert all(entry.cells_verified == 0 for entry in rebuilt.columns)
        assert all(entry.tamper_detected == 0 for entry in rebuilt.columns)

    def test_counters_default_to_zero(self) -> None:
        entry = sample_report().columns[1]
        assert entry.cells_verified == 0 and entry.tamper_detected == 0

    def test_malformed_payloads_fail_loudly(self) -> None:
        with pytest.raises(ServiceError):
            ExposureReport.from_dict({"not-columns": []})
        with pytest.raises(ServiceError):
            ExposureReport.from_dict({"columns": "nope"})
        with pytest.raises(ServiceError):
            ColumnExposure.from_dict(
                {
                    "table": "t",
                    "column": "c",
                    "onions": "not-a-mapping",
                    "weakest_class": "DET",
                    "security_level": 3,
                }
            )


def test_from_proxy_report_reads_counters() -> None:
    """The proxy's legacy dict shape carries the counters into the report."""
    legacy = {
        ("t", "c"): {
            "onions": {"eq": "DET"},
            "weakest_class": EncryptionClass.DET,
            "security_level": 3,
            "cells_verified": 7,
            "tamper_detected": 1,
        },
        ("t", "d"): {
            # A pre-integrity entry: no counter keys at all.
            "onions": {"eq": "DET"},
            "weakest_class": EncryptionClass.DET,
            "security_level": 3,
        },
    }
    report = ExposureReport.from_proxy_report(legacy)
    assert report.for_column("t", "c").cells_verified == 7
    assert report.for_column("t", "c").tamper_detected == 1
    assert report.for_column("t", "d").cells_verified == 0
