"""Behavior of the ``EncryptedMiningService`` façade and its sessions.

The façade must compose the proxy, backend, distance and mining layers
without changing a single byte of their outputs: workloads served through
:meth:`~repro.api.EncryptedMiningService.run_workload` equal a direct
proxy-session run, :meth:`~repro.api.EncryptedMiningService.mine` equals
the hand-wired pipeline, streaming into an incremental matrix equals batch
recompute — and every failure surfaces as a typed
:class:`~repro.api.ApiError` with an actionable message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ApiError,
    BackendConfig,
    ConfigError,
    CryptoConfig,
    EncryptedMiningService,
    LogContext,
    MiningConfig,
    QueryLog,
    QueryLogGenerator,
    QueryRejected,
    ServiceConfig,
    ServiceError,
    StreamingQueryLog,
    StreamSink,
    TokenDistance,
    WorkloadMix,
    WorkloadResult,
    available_backends,
    dbscan,
    distance_based_outliers,
    k_nearest_neighbors,
    parse_query,
    populate_database,
    webshop_profile,
)
from repro.db.backend import create_backend
from repro.exceptions import ExecutionError, RewriteError

MINING = MiningConfig(
    measure="token", knn_k=3, outlier_p=0.9, outlier_d=0.9, dbscan_eps=0.55,
    dbscan_min_points=3,
)


@pytest.fixture(scope="module")
def profile():
    return webshop_profile(customer_rows=20, order_rows=40, product_rows=10)


@pytest.fixture(scope="module")
def service(profile) -> EncryptedMiningService:
    config = ServiceConfig(
        crypto=CryptoConfig(
            passphrase="api-service-tests", paillier_bits=256, shared_det_key=True
        ),
        backend=BackendConfig(name="memory", on_unsupported="skip"),
        mining=MINING,
    )
    built = EncryptedMiningService(config, join_groups=profile.join_groups())
    built.encrypt(populate_database(profile, seed=21))
    return built


@pytest.fixture(scope="module")
def spj_log(profile) -> QueryLog:
    return QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=21).generate(16)


class TestWorkloads:
    def test_run_workload_returns_typed_result(self, service, spj_log) -> None:
        result = service.run_workload(spj_log)
        assert isinstance(result, WorkloadResult)
        assert result.queries_served + result.queries_skipped == len(spj_log)
        assert result.backend == "memory"
        assert result.throughput > 0
        assert len(result.encrypted_log()) == result.queries_served

    def test_results_identical_across_backends(self, service, spj_log) -> None:
        """The façade preserves the PR 2 claim: rows are backend-independent."""
        memory = service.run_workload(spj_log, backend="memory")
        sqlite = service.run_workload(spj_log, backend="sqlite")
        assert memory.queries_served == sqlite.queries_served
        for lhs, rhs in zip(memory.results, sqlite.results):
            assert lhs.encrypted_sql == rhs.encrypted_sql
            assert sorted(map(repr, lhs.result.rows)) == sorted(map(repr, rhs.result.rows))

    def test_run_workload_accepts_sql_strings(self, service) -> None:
        result = service.run_workload(["SELECT customer_name FROM customers"])
        assert result.queries_served == 1

    def test_decrypt_round_trip(self, service, profile) -> None:
        result = service.run_workload(["SELECT customer_city FROM customers"])
        decrypted = service.decrypt(result.results[0])
        plain_cities = set(
            populate_database(profile, seed=21).table("customers").column_values("customer_city")
        )
        assert {row[0] for row in decrypted.rows} <= plain_cities

    def test_generated_workload_is_deterministic(self, service) -> None:
        assert (
            service.generate_workload(size=5).statements
            == service.generate_workload(size=5).statements
        )


class TestErrorTranslation:
    def test_unknown_backend_raises_config_error_listing_backends(self, service) -> None:
        with pytest.raises(ConfigError) as excinfo:
            service.open_session(backend="oracle9i")
        message = str(excinfo.value)
        assert "oracle9i" in message
        for name in available_backends():
            assert name in message

    def test_rejected_query_raises_query_rejected_with_cause(self, service) -> None:
        with service.open_session(on_unsupported="raise") as session:
            with pytest.raises(QueryRejected) as excinfo:
                session.execute("SELECT ghost FROM phantom_table WHERE ghost = 1")
        assert isinstance(excinfo.value, ApiError)
        assert isinstance(excinfo.value.__cause__, RewriteError)

    def test_skip_policy_records_rejections_instead(self, service) -> None:
        result = service.run_workload(
            ["SELECT ghost FROM phantom_table WHERE ghost = 1"], on_unsupported="skip"
        )
        assert result.queries_served == 0
        assert result.queries_skipped == 1
        assert "phantom_table" in result.skipped[0][1]

    def test_reused_session_reports_per_run_skips(self, service) -> None:
        """A second run on the same session must not inherit the first run's skips."""
        with service.open_session(on_unsupported="skip") as session:
            first = session.run(["SELECT ghost FROM phantom_table WHERE ghost = 1"])
            second = session.run(["SELECT customer_name FROM customers"])
        assert first.queries_skipped == 1
        assert second.queries_skipped == 0
        assert second.queries_served == 1
        # The session-level view stays cumulative.
        assert len(session.skipped) == 1

    def test_unparseable_sql_raises_query_rejected(self, service) -> None:
        """Parse failures surface as ApiError, not raw SqlSyntaxError."""
        with pytest.raises(QueryRejected):
            service.run_workload(["SELEC broken FROM"])
        with pytest.raises(QueryRejected):
            service.mine(["SELEC broken FROM"])

    def test_keychain_and_passphrase_together_fail_loudly(self) -> None:
        from repro.crypto.keys import KeyChain, MasterKey

        with pytest.raises(ConfigError, match="not both"):
            EncryptedMiningService(
                ServiceConfig(crypto=CryptoConfig(passphrase="prod", paillier_bits=128)),
                keychain=KeyChain(MasterKey.generate()),
            )

    def test_session_before_encrypt_is_a_service_error(self) -> None:
        fresh = EncryptedMiningService(
            ServiceConfig(crypto=CryptoConfig(paillier_bits=128))
        )
        with pytest.raises(ServiceError, match="encrypt_database"):
            fresh.open_session()

    def test_create_backend_unknown_name_lists_available(self, small_database) -> None:
        with pytest.raises(ExecutionError) as excinfo:
            create_backend("duckdb", small_database)
        message = str(excinfo.value)
        assert "duckdb" in message
        for name in available_backends():
            assert name in message

    def test_create_backend_bad_option_names_the_option(self, small_database) -> None:
        with pytest.raises(ExecutionError, match="turbo_mode"):
            create_backend("memory", small_database, turbo_mode=True)


class TestMining:
    def test_mine_equals_hand_wired_pipeline(self, service, spj_log) -> None:
        encrypted = service.run_workload(spj_log).encrypted_log()
        mined = service.mine(encrypted)

        measure = TokenDistance()
        matrix = measure.condensed_distance_matrix(LogContext(log=encrypted))
        assert np.array_equal(mined.matrix.values, matrix.values)
        assert mined.labels == dbscan(matrix, eps=0.55, min_points=3).labels
        assert mined.outliers == distance_based_outliers(matrix, p=0.9, d=0.9)
        for index in range(matrix.n):
            assert mined.knn[index] == k_nearest_neighbors(matrix, index, k=3)
        assert mined.measure == "token"
        assert mined.n_items == len(encrypted)

    def test_mine_accepts_sql_strings_and_contexts(self, service) -> None:
        statements = [
            "SELECT customer_name FROM customers WHERE customer_age > 30",
            "SELECT customer_name FROM customers WHERE customer_age > 50",
            "SELECT product_name FROM products WHERE product_price > 10",
        ]
        from_strings = service.mine(statements)
        from_context = service.mine(LogContext(log=QueryLog.from_sql(statements)))
        assert from_strings.labels == from_context.labels

    def test_mine_caps_knn_for_tiny_logs(self, service) -> None:
        mined = service.mine(["SELECT customer_name FROM customers"])
        assert mined.knn == ((),)

    def test_internal_mining_errors_surface_as_api_errors(self, service) -> None:
        """MiningError/DpeError from the wrapped layers never escape raw."""
        with pytest.raises(ServiceError):
            service.mine([])
        result_service = EncryptedMiningService(
            ServiceConfig(
                crypto=CryptoConfig(paillier_bits=128),
                mining=MiningConfig(measure="result"),
            )
        )
        with pytest.raises(ServiceError):
            # The result measure needs database content; LogContext has none.
            result_service.mine(LogContext(log=QueryLog.from_sql(["SELECT a FROM t"])))


class TestStreaming:
    def test_stream_sink_protocol_is_satisfied(self, service) -> None:
        assert isinstance(StreamingQueryLog(), StreamSink)
        assert isinstance(service.incremental_miner(), StreamSink)

    def test_streaming_into_matrix_equals_batch_recompute(self, service, spj_log) -> None:
        miner = service.incremental_miner()
        batches = [spj_log.queries[start : start + 4] for start in range(0, 16, 4)]
        encrypted = service.stream(batches, into=miner)

        assert len(encrypted) == miner.n_items
        reference = TokenDistance().condensed_distance_matrix(
            LogContext(log=QueryLog(list(miner.stream)))
        )
        assert np.array_equal(miner.condensed().values, reference.values)
        assert miner.dbscan().labels == dbscan(reference, eps=0.55, min_points=3).labels

    def test_streaming_into_log_matches_streaming_into_matrix(self, service, spj_log) -> None:
        plain_sink = StreamingQueryLog()
        encrypted = service.stream([spj_log.queries], into=plain_sink)
        assert tuple(entry.query for entry in plain_sink) == encrypted

    def test_stream_accepts_a_query_log_and_flat_sequences_as_one_batch(
        self, service, spj_log
    ) -> None:
        """The shapes run_workload accepts stream too, as a single batch."""
        from_log = service.stream(spj_log, into=StreamingQueryLog())
        flat_sink = StreamingQueryLog()
        from_flat = service.stream(spj_log.queries, into=flat_sink)
        assert from_log == from_flat
        assert flat_sink.appends == 1

    def test_mixed_batch_shapes_never_escape_as_raw_type_errors(
        self, service, spj_log
    ) -> None:
        """Malformed workload shapes are ApiErrors, per the façade contract."""
        query = spj_log.queries[0]
        mixed_sink = StreamingQueryLog()
        # A lone query element is a batch of one, not a TypeError.
        encrypted = service.stream([[query], query], into=mixed_sink)
        assert len(encrypted) == 2
        assert mixed_sink.appends == 2
        with pytest.raises(ServiceError):
            service.run_workload(42)  # type: ignore[arg-type]

    def test_stream_accepts_a_lone_sql_string_as_one_batch(self, service) -> None:
        sink = StreamingQueryLog()
        encrypted = service.stream("SELECT customer_name FROM customers", into=sink)
        assert len(encrypted) == 1
        assert sink.appends == 1


class TestExposure:
    def test_exposure_report_is_typed_and_sorted(self, service, spj_log) -> None:
        service.run_workload(spj_log)
        report = service.exposure_report()
        assert report.columns == tuple(
            sorted(report.columns, key=lambda e: (e.table, e.column))
        )
        entry = report.for_column("customers", "customer_city")
        assert entry.security_level >= 1
        assert entry.onion_layers  # at least the EQ onion is reported
        assert report.weakest_level() == min(e.security_level for e in report.columns)

    def test_unknown_column_fails_loudly(self, service) -> None:
        report = service.exposure_report()
        with pytest.raises(ServiceError, match="customers.nope"):
            report.for_column("customers", "nope")
