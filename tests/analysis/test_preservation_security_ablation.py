"""Tests for the preservation harness, security comparison and ablation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ablation import run_ablation
from repro.analysis.preservation import compare_mining, run_preservation_experiment
from repro.analysis.security import run_security_comparison
from repro.core.dpe import LogContext
from repro.core.measures.token import TokenDistance
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.base import EncryptionClass
from repro.sql.log import QueryLog


class TestCompareMining:
    def test_identical_matrices_agree_everywhere(self):
        points = np.array([0.0, 0.2, 0.4, 5.0, 5.2, 9.9])
        matrix = np.abs(points[:, None] - points[None, :])
        comparison = compare_mining(matrix, matrix.copy())
        assert comparison.all_identical
        assert comparison.dbscan_ari == pytest.approx(1.0)
        assert comparison.kmedoids_ari == pytest.approx(1.0)
        assert comparison.hierarchical_ari == pytest.approx(1.0)

    def test_different_matrices_detected(self):
        points = np.array([0.0, 0.2, 0.4, 5.0, 5.2, 9.9])
        matrix = np.abs(points[:, None] - points[None, :])
        shuffled_points = np.array([0.0, 5.0, 0.4, 0.2, 9.9, 5.2])
        other = np.abs(shuffled_points[:, None] - shuffled_points[None, :])
        comparison = compare_mining(matrix, other)
        assert not comparison.all_identical


class TestPreservationExperiment:
    def test_token_experiment_reproduces_paper(self, keychain, sample_context):
        experiment = run_preservation_experiment(
            TokenDpeScheme(keychain), TokenDistance(), sample_context
        )
        assert experiment.reproduces_paper
        assert experiment.preservation.preserved
        assert experiment.equivalence.holds
        assert experiment.mining.all_identical
        assert experiment.log_size == len(sample_context)

    def test_summary_rows_render(self, keychain, sample_context):
        experiment = run_preservation_experiment(
            TokenDpeScheme(keychain), TokenDistance(), sample_context
        )
        rows = dict(experiment.summary_rows())
        assert rows["measure"] == "token"
        assert rows["c-equivalence"] == "holds"

    def test_broken_scheme_detected(self, keychain):
        from repro.analysis.ablation import ProbTokenScheme

        log = QueryLog.from_sql(
            ["SELECT a FROM t WHERE b = 5", "SELECT c FROM t WHERE d = 5", "SELECT a FROM t"]
        )
        context = LogContext(log=log)
        scheme = ProbTokenScheme(keychain)
        encrypted = LogContext(log=scheme.encrypt_log(log), labels={"encrypted": True})
        from repro.core.dpe import verify_distance_preservation

        assert not verify_distance_preservation(TokenDistance(), context, encrypted).preserved


class TestSecurityComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_security_comparison(log_size=60, seed=5)

    def test_kitdpe_never_less_secure(self, comparison):
        assert comparison.attributes_worse == 0

    def test_kitdpe_strictly_better_somewhere(self, comparison):
        assert comparison.attributes_strictly_better >= 1

    def test_aggregate_only_attributes_stay_probabilistic(self, comparison):
        by_attribute = {(e.table, e.attribute): e for e in comparison.exposures}
        discount = by_attribute[("orders", "order_discount")]
        assert discount.kitdpe_class is EncryptionClass.PROB
        assert discount.kitdpe_strictly_better

    def test_det_constants_leak_more_than_prob(self, comparison):
        rates = {a.scheme: a.constant_recovery_rate for a in comparison.attacks}
        token_rate = rates["token scheme (DET constants)"]
        structure_rate = rates["structure scheme (PROB constants)"]
        assert token_rate > structure_rate

    def test_tables_render(self, comparison):
        assert "CryptDB class" in comparison.exposure_table()
        assert "frequency-attack recovery" in comparison.attack_table()


class TestAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_ablation(log_size=40, seed=11)

    def test_appropriate_schemes_preserve(self, ablation):
        assert ablation.case("token/DET (appropriate)").preserved
        assert ablation.case("structure/PROB (appropriate)").preserved

    def test_prob_token_breaks_preservation(self, ablation):
        assert not ablation.case("token/PROB (not appropriate)").preserved

    def test_det_structure_preserves_but_leaks(self, ablation):
        weak = ablation.case("structure/DET (needlessly weak)")
        strong = ablation.case("structure/PROB (appropriate)")
        assert weak.preserved
        assert weak.distinct_ciphertext_ratio < strong.distinct_ciphertext_ratio

    def test_unknown_case_raises(self, ablation):
        from repro.exceptions import DpeError

        with pytest.raises(DpeError):
            ablation.case("nonexistent")
