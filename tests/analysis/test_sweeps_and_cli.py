"""Tests for the sweep harness and the command-line interface."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import preservation_sweep
from repro.cli import build_parser, main
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.exceptions import AnalysisError
from repro.sql.log import QueryLog
from repro.workloads.generator import WorkloadMix
from repro.workloads.schemas import webshop_profile


def keychain() -> KeyChain:
    return KeyChain(MasterKey.from_passphrase("sweep-cli-tests"))


class TestPreservationSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        profile = webshop_profile(customer_rows=20, order_rows=40, product_rows=10)
        return preservation_sweep(
            profile=profile,
            measure=TokenDistance(),
            scheme_factory=lambda: TokenDpeScheme(keychain()),
            sizes=(4, 8, 12),
            seed=3,
        )

    def test_one_point_per_size(self, sweep):
        assert [point.log_size for point in sweep.points] == [4, 8, 12]

    def test_preserved_at_every_size(self, sweep):
        assert sweep.all_preserved
        assert all(point.max_deviation == 0.0 for point in sweep.points)

    def test_timings_recorded(self, sweep):
        for point in sweep.points:
            assert point.plain_seconds >= 0.0
            assert point.encrypted_seconds >= 0.0
            assert point.encryption_seconds > 0.0
            assert point.overhead > 0.0

    def test_table_rendering(self, sweep):
        table = sweep.as_table()
        assert "log size" in table and "overhead" in table
        assert table.count("\n") >= 4

    def test_structure_measure_sweep(self):
        profile = webshop_profile(customer_rows=20, order_rows=40, product_rows=10)
        sweep = preservation_sweep(
            profile=profile,
            measure=StructureDistance(),
            scheme_factory=lambda: StructureDpeScheme(keychain()),
            sizes=(5, 9),
            mix=WorkloadMix.analytical(),
            seed=4,
        )
        assert sweep.all_preserved

    def test_validation(self):
        profile = webshop_profile(customer_rows=10, order_rows=20, product_rows=5)
        with pytest.raises(AnalysisError):
            preservation_sweep(
                profile=profile,
                measure=TokenDistance(),
                scheme_factory=lambda: TokenDpeScheme(keychain()),
                sizes=(),
            )
        with pytest.raises(AnalysisError):
            preservation_sweep(
                profile=profile,
                measure=TokenDistance(),
                scheme_factory=lambda: TokenDpeScheme(keychain()),
                sizes=(1,),
            )


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in (["list"], ["run", "T1"], ["table1"], ["figure1"], ["demo"]):
            assert parser.parse_args(command).command == command[0]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "T1" in output and "E4" in output

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "via CryptDB, except HOM" in output

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        assert "level 3" in capsys.readouterr().out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "T1"]) == 0
        output = capsys.readouterr().out
        assert "[ok ] T1" in output

    def test_run_without_ids_fails(self, capsys):
        assert main(["run"]) == 2

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        assert "PRESERVED" in capsys.readouterr().out

    def test_encrypt_log_command(self, tmp_path, capsys):
        plain_path = tmp_path / "plain.json"
        encrypted_path = tmp_path / "encrypted.json"
        QueryLog.from_sql(
            ["SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE c = 'x'"]
        ).save(str(plain_path))

        exit_code = main(
            [
                "encrypt-log",
                str(plain_path),
                str(encrypted_path),
                "--scheme",
                "token",
                "--passphrase",
                "cli-test",
            ]
        )
        assert exit_code == 0
        encrypted = QueryLog.load(str(encrypted_path))
        assert len(encrypted) == 2
        assert all("enc_" in statement for statement in encrypted.statements)
        assert "t" not in encrypted.accessed_tables()

    def test_encrypt_log_access_area_scheme(self, tmp_path):
        plain_path = tmp_path / "plain.json"
        encrypted_path = tmp_path / "encrypted.json"
        QueryLog.from_sql(
            ["SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE b < 9"]
        ).save(str(plain_path))
        assert main(
            [
                "encrypt-log",
                str(plain_path),
                str(encrypted_path),
                "--scheme",
                "access-area",
                "--passphrase",
                "cli-test",
            ]
        ) == 0
        assert len(QueryLog.load(str(encrypted_path))) == 2
