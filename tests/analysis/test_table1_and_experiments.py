"""Tests for the Table I / Figure 1 reproduction and the experiment registry."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    build_log_context,
    list_experiments,
    run_experiment,
    run_f1,
    run_t1,
)
from repro.analysis.table1 import (
    derive_table1,
    expected_table1,
    format_table1,
    render_figure1,
    table1_matches_paper,
)
from repro.exceptions import AnalysisError


class TestTable1:
    def test_derived_table_matches_paper_exactly(self):
        rows = table1_matches_paper()
        assert len(rows) == 4
        for row in rows:
            assert row.matches, f"derived {row.derived} != expected {row.expected}"

    def test_expected_table_is_the_published_one(self):
        expected = expected_table1()
        assert expected[0][5] == "DET"
        assert expected[1][5] == "PROB"
        assert expected[2][5] == "via CryptDB"
        assert expected[3][5] == "via CryptDB, except HOM"

    def test_derivation_row_rendering(self):
        derivations = derive_table1()
        text = format_table1(derivations)
        assert "Token-Based Query-String Distance" in text
        assert "via CryptDB, except HOM" in text
        assert "EncRel" in text and "EncAttr" in text

    def test_figure1_rendering(self):
        figure = render_figure1()
        assert "level 3" in figure and "level 1" in figure
        assert "HOM -> PROB" in figure


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        ids = {experiment_id for experiment_id, _ in list_experiments()}
        assert ids == {
            "T1", "F1", "E1", "E2", "E3", "E4", "S1", "S2",
            "P1", "P2", "P3", "P4", "P6", "R1", "A1",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(AnalysisError):
            run_experiment("Z9")

    def test_t1_outcome(self):
        outcome = run_t1()
        assert outcome.success
        assert outcome.experiment_id == "T1"
        assert len(outcome.data["rows"]) == 4

    def test_f1_outcome(self):
        outcome = run_f1()
        assert outcome.success
        assert all(outcome.data["checks"].values())

    def test_run_experiment_is_case_insensitive(self):
        assert run_experiment("t1").success

    def test_small_e1_run(self):
        outcome = run_experiment("E1", log_size=12, seed=2)
        assert outcome.success
        assert outcome.data["max_deviation"] == 0.0
        assert outcome.data["mining_identical"] is True

    def test_small_e2_run(self):
        outcome = run_experiment("E2", log_size=12, seed=2)
        assert outcome.success

    def test_small_e4_run(self):
        outcome = run_experiment("E4", log_size=12, seed=2)
        assert outcome.success

    def test_small_a1_run(self):
        outcome = run_experiment("A1", log_size=30, seed=3)
        assert outcome.success
        assert "token/PROB (not appropriate)" in outcome.data

    def test_small_p2_run(self):
        outcome = run_experiment("P2", sizes=(6, 10))
        assert outcome.success
        assert set(outcome.data["series"]) == {6, 10}

    def test_small_p6_run(self):
        outcome = run_experiment("P6", log_size=90, distinct=18, shards=3)
        assert outcome.success
        assert outcome.data["bit_for_bit"] and outcome.data["sharded_equal"]
        assert outcome.data["recall"] == 1.0 and outcome.data["ari"] == 1.0
        assert outcome.data["stats"]["certified_complete"] is True

    def test_small_p4_run(self):
        outcome = run_experiment("P4", values=20, key_bits=128, pool_size=20, ope_values=150)
        assert outcome.success
        assert outcome.data["paillier_equal"] and outcome.data["ope_equal"]
        assert set(outcome.data["speedups"]) == {
            "paillier_encrypt",
            "paillier_decrypt",
            "ope_encrypt",
        }
        assert outcome.data["key_bits"] == 128


class TestContextBuilder:
    def test_log_only_context(self):
        context = build_log_context(log_size=8, seed=1)
        assert len(context) == 8
        assert context.database is None and context.domains is None

    def test_context_with_database_and_domains(self):
        context = build_log_context(log_size=5, seed=1, with_database=True, with_domains=True)
        assert context.database is not None
        assert context.domains is not None
        assert context.database.total_rows() > 0
