"""The generated documentation set: determinism, drift, loud failure modes.

ARCHITECTURE.md and EXPERIMENTS.md are committed artifacts rendered from the
source tree; these tests pin the three properties that make that workable:
renders are byte-identical run to run, the committed files match a fresh
render (the local mirror of the CI docs-drift job), and the generator fails
loudly — on unknown modules and on undocumented public code — instead of
emitting stubs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.architecture import (
    iter_package_modules,
    render_architecture_doc,
    render_package_section,
    subpackages,
    top_level_modules,
)
from repro.analysis.docs import render_experiments_doc, write_all_docs
from repro.exceptions import AnalysisError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestDeterminism:
    def test_two_renders_are_byte_identical(self):
        assert render_architecture_doc() == render_architecture_doc()
        assert render_experiments_doc() == render_experiments_doc()

    def test_committed_architecture_md_is_current(self):
        committed = (REPO_ROOT / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert committed == render_architecture_doc(), (
            "ARCHITECTURE.md drifted from the source tree; "
            "regenerate with `python -m repro docs`"
        )

    def test_committed_experiments_md_is_current(self):
        committed = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert committed == render_experiments_doc(), (
            "EXPERIMENTS.md drifted from the source tree; "
            "regenerate with `python -m repro docs`"
        )


class TestStructure:
    def test_every_subpackage_has_a_section(self):
        document = render_architecture_doc()
        names = subpackages()
        assert names, "no subpackages discovered"
        for name in names:
            assert f"## `{name}`" in document
        # The new scaling subsystem must be part of the mining section.
        assert "### `repro.mining.parallel`" in document
        assert "### `repro.mining.incremental`" in document

    def test_top_level_modules_exclude_private_and_main(self):
        names = top_level_modules()
        assert "repro.cli" in names
        assert "repro.__main__" not in names
        assert all("._" not in name for name in names)

    def test_package_modules_are_sorted_and_complete(self):
        names = iter_package_modules("repro.mining")
        assert names == sorted(names)
        assert "repro.mining.matrix" in names
        assert "repro.mining.incremental" in names


class TestLoudFailures:
    def test_unknown_module_fails_loudly(self):
        with pytest.raises(AnalysisError, match="unknown module"):
            render_package_section("repro.nonexistent_subsystem")

    def test_unknown_package_in_module_iteration(self):
        with pytest.raises(AnalysisError):
            iter_package_modules("repro.also_not_there")

    def test_undocumented_member_fails_loudly(self):
        from repro.analysis.architecture import _summary

        class Undocumented:
            pass

        Undocumented.__doc__ = None
        with pytest.raises(AnalysisError, match="no docstring"):
            _summary(Undocumented, "repro.fake.Undocumented")


class TestWriteAllDocs:
    def test_default_writes_both_documents(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert write_all_docs() == 0
        assert (tmp_path / "EXPERIMENTS.md").exists()
        assert (tmp_path / "ARCHITECTURE.md").exists()

    def test_single_document_selection(self, tmp_path, capsys):
        architecture = tmp_path / "ARCH.md"
        assert write_all_docs(architecture=str(architecture)) == 0
        assert architecture.exists()
        assert not (tmp_path / "EXPERIMENTS.md").exists()

    def test_cli_docs_writes_both(self, tmp_path, capsys):
        from repro.cli import main

        experiments = tmp_path / "E.md"
        architecture = tmp_path / "A.md"
        assert main(["docs", str(experiments), "--architecture", str(architecture)]) == 0
        assert "## P3 — " in experiments.read_text(encoding="utf-8")
        assert "## `repro.mining`" in architecture.read_text(encoding="utf-8")
