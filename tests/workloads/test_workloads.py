"""Tests for workload profiles, database population and log generation."""

from __future__ import annotations

import pytest

from repro.db.schema import ColumnType
from repro.exceptions import WorkloadError
from repro.sql.visitor import column_refs, walk
from repro.sql.ast import AggregateCall, LikePredicate, Star
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import (
    populate_database,
    skyserver_profile,
    webshop_profile,
)


class TestProfiles:
    def test_webshop_tables_and_unique_columns(self, webshop):
        assert {t.name for t in webshop.tables} == {"customers", "orders", "products"}
        names = webshop.all_column_names()
        assert len(names) == len(set(names))

    def test_skyserver_tables(self, skyserver):
        assert {t.name for t in skyserver.tables} == {"photoobj", "specobj"}

    def test_domain_catalog_covers_all_columns(self, webshop):
        catalog = webshop.domain_catalog()
        for name in webshop.all_column_names():
            assert catalog.has_domain(name)

    def test_join_groups(self, webshop):
        groups = webshop.join_groups()
        assert len(groups) == 1
        assert ("customers", "customer_id") in groups[0].members
        assert ("orders", "order_customer") in groups[0].members

    def test_table_lookup_errors(self, webshop):
        with pytest.raises(WorkloadError):
            webshop.table("missing")
        with pytest.raises(WorkloadError):
            webshop.table("orders").column("missing")

    def test_aggregate_only_columns_exist(self, webshop):
        discount = webshop.table("orders").column("order_discount")
        assert discount.aggregate_candidate
        assert not discount.range_candidate and not discount.equality_candidate


class TestPopulation:
    def test_row_counts_match_profile(self, webshop, webshop_database):
        for table in webshop.tables:
            assert len(webshop_database.table(table.name)) == table.rows

    def test_values_respect_domains(self, webshop, webshop_database):
        for table in webshop.tables:
            for column in table.columns:
                values = [
                    v for v in webshop_database.table(table.name).column_values(column.name)
                    if v is not None
                ]
                if column.type is ColumnType.TEXT:
                    assert set(values) <= set(column.values)
                elif column.type.is_numeric:
                    assert min(values) >= column.minimum
                    assert max(values) <= column.maximum

    def test_key_columns_are_sequential(self, webshop, webshop_database):
        ids = webshop_database.table("customers").column_values("customer_id")
        assert ids == list(range(1, len(ids) + 1))

    def test_population_is_deterministic(self, webshop):
        first = populate_database(webshop, seed=7)
        second = populate_database(webshop, seed=7)
        assert first.table("orders").rows == second.table("orders").rows

    def test_different_seeds_differ(self, webshop):
        first = populate_database(webshop, seed=1)
        second = populate_database(webshop, seed=2)
        assert first.table("orders").rows != second.table("orders").rows

    def test_joins_produce_matches(self, webshop, webshop_database):
        from repro.db.executor import QueryExecutor
        from repro.sql.parser import parse_query

        result = QueryExecutor(webshop_database).execute(
            parse_query(
                "SELECT customer_id FROM customers JOIN orders ON customer_id = order_customer"
            )
        )
        assert len(result) > 0


class TestGenerator:
    def test_log_size_and_determinism(self, webshop):
        generator = QueryLogGenerator(webshop, WorkloadMix(), seed=5)
        log = generator.generate(25)
        assert len(log) == 25
        assert log.statements == QueryLogGenerator(webshop, WorkloadMix(), seed=5).generate(25).statements

    def test_different_seeds_produce_different_logs(self, webshop):
        a = QueryLogGenerator(webshop, WorkloadMix(), seed=1).generate(20)
        b = QueryLogGenerator(webshop, WorkloadMix(), seed=2).generate(20)
        assert a.statements != b.statements

    def test_queries_reference_only_profile_tables_and_columns(self, webshop, webshop_log):
        tables = {t.name for t in webshop.tables}
        columns = set(webshop.all_column_names())
        for query in webshop_log.queries:
            assert set(query.table_names()) <= tables
            assert {ref.name for ref in column_refs(query)} <= columns

    def test_no_like_or_star(self, webshop_log):
        for query in webshop_log.queries:
            for node in walk(query):
                assert not isinstance(node, LikePredicate)
            for item in query.select_items:
                assert not isinstance(item.expression, Star)

    def test_spj_mix_has_no_aggregates(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=3).generate(40)
        for query in log.queries:
            assert not query.has_aggregates()
            assert not query.group_by

    def test_analytical_mix_has_aggregates(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=3).generate(40)
        assert any(query.has_aggregates() for query in log.queries)
        assert any(query.group_by for query in log.queries)
        # AVG is never generated (CryptDB evaluates it client-side).
        for query in log.queries:
            for node in walk(query):
                if isinstance(node, AggregateCall):
                    assert node.function != "AVG"

    def test_join_queries_use_declared_join_columns(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(join_select=10.0), seed=4).generate(30)
        join_queries = [q for q in log.queries if q.joins]
        assert join_queries
        for query in join_queries:
            condition = query.joins[0].condition
            names = {ref.name for ref in column_refs(condition)}
            assert names == {"customer_id", "order_customer"}

    def test_generated_queries_execute_on_populated_database(self, webshop, webshop_database):
        from repro.db.executor import QueryExecutor

        log = QueryLogGenerator(webshop, WorkloadMix(), seed=6).generate(30)
        executor = QueryExecutor(webshop_database)
        for query in log.queries:
            executor.execute(query)  # must not raise

    def test_invalid_inputs(self, webshop):
        with pytest.raises(WorkloadError):
            QueryLogGenerator(webshop, WorkloadMix(), seed=1).generate(0)
        with pytest.raises(WorkloadError):
            WorkloadMix(
                point_select=0, range_select=0, conjunctive_select=0, in_select=0,
                join_select=0, aggregate_select=0, group_by_select=0,
            ).as_weights()

    def test_skyserver_generation(self, skyserver):
        log = QueryLogGenerator(skyserver, WorkloadMix.analytical(), seed=2).generate(20)
        assert len(log) == 20
        tables = {t.name for t in skyserver.tables}
        for query in log.queries:
            assert set(query.table_names()) <= tables
