"""End-to-end integration tests: the paper's full pipeline on synthetic workloads.

Each test follows the outsourcing story: the data owner generates a workload,
encrypts it with the measure-specific KIT-DPE scheme, hands the encrypted
context to the "service provider" (which only ever touches ciphertexts),
and the provider's mining results equal the owner's plaintext results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.preservation import compare_mining, run_preservation_experiment
from repro.core.dpe import LogContext, verify_distance_preservation
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.core.schemes import (
    AccessAreaDpeScheme,
    ResultDpeScheme,
    StructureDpeScheme,
    TokenDpeScheme,
)
from repro.crypto.keys import KeyChain, MasterKey
from repro.mining import dbscan, k_medoids
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile


def keychain_for(label: str) -> KeyChain:
    return KeyChain(MasterKey.from_passphrase(f"integration/{label}"))


class TestTokenPipeline:
    def test_synthetic_webshop_log(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=21).generate(25)
        context = LogContext(log=log)
        experiment = run_preservation_experiment(
            TokenDpeScheme(keychain_for("token")), TokenDistance(), context
        )
        assert experiment.reproduces_paper

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6), size=st.integers(min_value=5, max_value=18))
    def test_random_workloads_property(self, webshop, seed, size):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=seed).generate(size)
        context = LogContext(log=log)
        scheme = TokenDpeScheme(keychain_for(f"token-{seed}"))
        encrypted = scheme.encrypt_context(context)
        report = verify_distance_preservation(TokenDistance(), context, encrypted)
        assert report.preserved


class TestStructurePipeline:
    def test_synthetic_webshop_log(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=22).generate(25)
        context = LogContext(log=log)
        experiment = run_preservation_experiment(
            StructureDpeScheme(keychain_for("structure")), StructureDistance(), context
        )
        assert experiment.reproduces_paper

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6), size=st.integers(min_value=5, max_value=18))
    def test_random_workloads_property(self, webshop, seed, size):
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=seed).generate(size)
        context = LogContext(log=log)
        scheme = StructureDpeScheme(keychain_for(f"structure-{seed}"))
        encrypted = scheme.encrypt_context(context)
        assert verify_distance_preservation(StructureDistance(), context, encrypted).preserved


class TestResultPipeline:
    def test_synthetic_webshop_log(self):
        profile = webshop_profile(customer_rows=25, order_rows=50, product_rows=12)
        database = populate_database(profile, seed=23)
        log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=23).generate(15)
        context = LogContext(log=log, database=database)
        scheme = ResultDpeScheme(
            keychain_for("result"), join_groups=profile.join_groups(), paillier_bits=256
        )
        experiment = run_preservation_experiment(scheme, ResultDistance(), context)
        assert experiment.reproduces_paper

    def test_provider_never_sees_plaintext(self):
        profile = webshop_profile(customer_rows=20, order_rows=40, product_rows=10)
        database = populate_database(profile, seed=24)
        log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=24).generate(8)
        context = LogContext(log=log, database=database)
        scheme = ResultDpeScheme(
            keychain_for("result-privacy"), join_groups=profile.join_groups(), paillier_bits=256
        )
        encrypted = scheme.encrypt_context(context)
        plaintext_values = {"Berlin", "OPEN", "SHIPPED", "customers", "orders", "order_amount"}
        for statement in encrypted.log.statements:
            for secret in plaintext_values:
                assert secret not in statement
        assert set(encrypted.database.table_names).isdisjoint(set(database.table_names))


class TestAccessAreaPipeline:
    def test_synthetic_webshop_log(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=25).generate(25)
        context = LogContext(log=log, domains=webshop.domain_catalog())
        experiment = run_preservation_experiment(
            AccessAreaDpeScheme(keychain_for("aa")), AccessAreaDistance(), context
        )
        assert experiment.reproduces_paper

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_workloads_property(self, webshop, seed):
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=seed).generate(12)
        context = LogContext(log=log, domains=webshop.domain_catalog())
        scheme = AccessAreaDpeScheme(keychain_for(f"aa-{seed}"))
        encrypted = scheme.encrypt_context(context)
        assert verify_distance_preservation(AccessAreaDistance(), context, encrypted).preserved


class TestMiningOnEncryptedLog:
    """The headline claim, spelled out: clustering encrypted logs = clustering plain logs."""

    def test_clustering_results_identical(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=30).generate(20)
        plain_context = LogContext(log=log)
        scheme = TokenDpeScheme(keychain_for("mining"))
        encrypted_context = scheme.encrypt_context(plain_context)

        measure = TokenDistance()
        plain_matrix = measure.distance_matrix(plain_context)
        encrypted_matrix = measure.distance_matrix(encrypted_context)

        comparison = compare_mining(plain_matrix, encrypted_matrix, n_clusters=4)
        assert comparison.all_identical

        plain_dbscan = dbscan(plain_matrix, eps=0.6, min_points=2)
        encrypted_dbscan = dbscan(encrypted_matrix, eps=0.6, min_points=2)
        assert plain_dbscan.labels == encrypted_dbscan.labels

        plain_kmedoids = k_medoids(plain_matrix, k=3)
        encrypted_kmedoids = k_medoids(encrypted_matrix, k=3)
        assert plain_kmedoids.labels == encrypted_kmedoids.labels
        assert plain_kmedoids.medoids == encrypted_kmedoids.medoids

    def test_example4_from_the_paper(self):
        """Example 4: the encrypted query keeps its shape with encrypted parts."""
        keychain = keychain_for("example4")
        scheme = TokenDpeScheme(keychain)
        log = QueryLog.from_sql(["SELECT A1 FROM R WHERE A2 > 5"])
        encrypted = scheme.encrypt_log(log)
        statement = encrypted.statements[0]
        assert statement.startswith("SELECT enc_")
        assert " FROM enc_" in statement
        assert " WHERE enc_" in statement
        assert "A1" not in statement and "R " not in statement and " 5" not in statement
