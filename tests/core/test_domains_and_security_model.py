"""Tests for attribute domains and the security model (KIT-DPE step 1)."""

from __future__ import annotations

import pytest

from repro.core.domains import Domain, DomainCatalog
from repro.core.security_model import (
    AttackType,
    HighLevelScheme,
    QueryPart,
    SecurityGoal,
    SecurityModel,
    ThreatModel,
)
from repro.db.schema import ColumnType
from repro.exceptions import DpeError, SecurityModelError


class TestDomain:
    def test_numeric_domain(self):
        domain = Domain("age", minimum=0, maximum=120)
        assert domain.is_numeric
        assert domain.size_hint() == 120

    def test_categorical_domain(self):
        domain = Domain("city", values=frozenset({"a", "b"}))
        assert not domain.is_numeric
        assert domain.size_hint() == 2

    def test_must_be_exactly_one_kind(self):
        with pytest.raises(DpeError):
            Domain("x")
        with pytest.raises(DpeError):
            Domain("x", minimum=0, maximum=1, values=frozenset({"a"}))

    def test_numeric_needs_both_bounds(self):
        with pytest.raises(DpeError):
            Domain("x", minimum=0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(DpeError):
            Domain("x", minimum=10, maximum=0)


class TestDomainCatalog:
    def test_add_and_lookup(self):
        catalog = DomainCatalog([Domain("age", minimum=0, maximum=9)])
        assert catalog.has_domain("age")
        assert catalog.domain("age").maximum == 9
        assert not catalog.has_domain("other")
        with pytest.raises(DpeError):
            catalog.domain("other")

    def test_duplicate_rejected(self):
        catalog = DomainCatalog([Domain("age", minimum=0, maximum=9)])
        with pytest.raises(DpeError):
            catalog.add(Domain("age", minimum=0, maximum=5))

    def test_from_database(self, small_database):
        catalog = DomainCatalog.from_database(small_database)
        assert catalog.domain("age").minimum == 18
        assert catalog.domain("city").values == frozenset({"Berlin", "Paris", "Rome"})
        assert catalog.domain("balance").is_numeric

    def test_from_schema_hints(self):
        catalog = DomainCatalog.from_schema_hints(
            {
                "age": (ColumnType.INTEGER, (0, 99)),
                "city": (ColumnType.TEXT, ["a", "b"]),
            }
        )
        assert catalog.domain("age").maximum == 99
        assert catalog.domain("city").values == frozenset({"a", "b"})

    def test_iteration_and_len(self):
        catalog = DomainCatalog([Domain("a", minimum=0, maximum=1), Domain("b", minimum=0, maximum=2)])
        assert len(catalog) == 2
        assert {domain.attribute for domain in catalog} == {"a", "b"}


class TestThreatModel:
    def test_default_covers_all_passive_attacks(self):
        model = ThreatModel.passive_default()
        assert model.attacks == frozenset(AttackType)
        assert model.strongest_attack() is AttackType.CHOSEN_QUERY

    def test_empty_model_rejected(self):
        with pytest.raises(SecurityModelError):
            ThreatModel(frozenset())

    def test_attack_strength_ordering(self):
        assert AttackType.QUERY_ONLY.strength < AttackType.KNOWN_QUERY.strength
        assert AttackType.KNOWN_QUERY.strength < AttackType.CHOSEN_QUERY.strength

    def test_describe_mentions_attacks(self):
        assert "query-only" in ThreatModel.passive_default().describe()


class TestHighLevelScheme:
    def test_sql_default_encrypts_names_and_constants(self):
        scheme = HighLevelScheme.sql_log_default()
        assert scheme.encrypts(QueryPart.RELATION_NAMES)
        assert scheme.encrypts(QueryPart.ATTRIBUTE_NAMES)
        assert scheme.encrypts(QueryPart.CONSTANTS)
        assert not scheme.encrypts(QueryPart.KEYWORDS)
        assert scheme.per_attribute_constants

    def test_describe(self):
        assert "constants" in HighLevelScheme.sql_log_default().describe()


class TestSecurityModel:
    def test_default_validates(self):
        SecurityModel.sql_log_default().validate()

    def test_goal_requiring_unencrypted_part_rejected(self):
        model = SecurityModel(
            high_level_scheme=HighLevelScheme(frozenset({QueryPart.CONSTANTS})),
            goals=(
                SecurityGoal("hide schema", frozenset({QueryPart.RELATION_NAMES})),
            ),
        )
        with pytest.raises(SecurityModelError):
            model.validate()

    def test_describe_contains_goals(self):
        text = SecurityModel.sql_log_default().describe()
        assert "goal:" in text and "passive attacks" in text
