"""Tests for the batched/cached/vectorized distance pipeline.

The contract under test: for every measure, ``distance_matrix`` (batch +
cache + vectorized fast path) is element-wise equal to
``distance_matrix_reference`` (the seed's naive O(n²) loop, kept as the
equality oracle) — exactly for the Jaccard/set measures, within 1e-9 for
all of them — and the condensed representation round-trips through the
mining entry points without changing any result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpe import JaccardSetMeasure, LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.core.schemes import TokenDpeScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.mining.matrix import CondensedDistanceMatrix
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile


def _context_for(measure, profile, database, *, size: int, seed) -> LogContext:
    """A plaintext context with exactly the side information ``measure`` needs."""
    if isinstance(measure, ResultDistance):
        mix = WorkloadMix.spj_only()
    elif isinstance(measure, AccessAreaDistance):
        mix = WorkloadMix.analytical()
    else:
        mix = WorkloadMix()
    log = QueryLogGenerator(profile, mix, seed=seed).generate(size)
    return LogContext(
        log=log,
        database=database if measure.shared_information.db_content else None,
        domains=profile.domain_catalog() if measure.shared_information.domains else None,
    )


ALL_MEASURES = [TokenDistance, StructureDistance, ResultDistance, AccessAreaDistance]


class TestPipelineMatchesReference:
    @pytest.fixture(scope="class")
    def profile(self):
        return webshop_profile(customer_rows=20, order_rows=40, product_rows=10)

    @pytest.fixture(scope="class")
    def database(self, profile):
        return populate_database(profile, seed=7)

    @pytest.mark.parametrize("measure_class", ALL_MEASURES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_elementwise_equal_to_reference(self, profile, database, measure_class, seed):
        measure = measure_class()
        context = _context_for(measure, profile, database, size=14, seed=seed)
        reference = measure.distance_matrix_reference(context)
        pipeline = measure.distance_matrix(context)
        assert pipeline.shape == reference.shape
        assert np.max(np.abs(pipeline - reference)) <= 1e-9
        if isinstance(measure, JaccardSetMeasure):
            # The membership-matrix product is bit-for-bit equal, not merely close.
            assert np.array_equal(pipeline, reference)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_token_property_any_workload_seed(self, seed):
        profile = webshop_profile(customer_rows=15, order_rows=30, product_rows=8)
        measure = TokenDistance()
        context = _context_for(measure, profile, None, size=10, seed=seed)
        assert np.array_equal(
            measure.distance_matrix(context), measure.distance_matrix_reference(context)
        )

    def test_encrypted_context_equal_to_reference(self, profile):
        measure = TokenDistance()
        context = _context_for(measure, profile, None, size=12, seed=5)
        scheme = TokenDpeScheme(KeyChain(MasterKey.from_passphrase("pipeline-tests")))
        encrypted = scheme.encrypt_context(context)
        assert np.array_equal(
            measure.distance_matrix(encrypted), measure.distance_matrix_reference(encrypted)
        )


class CountingTokenDistance(TokenDistance):
    """Token measure that counts characteristic extractions (cache probe)."""

    def __init__(self) -> None:
        self.batch_calls = 0

    def characteristics(self, queries, context):
        self.batch_calls += 1
        return super().characteristics(queries, context)


class TestCaching:
    def test_prepare_is_memoized_per_context(self, sample_context):
        measure = CountingTokenDistance()
        first = measure.prepare(sample_context)
        second = measure.prepare(sample_context)
        assert first == second
        assert measure.batch_calls == 1

    def test_distance_matrix_reuses_prepared_characteristics(self, sample_context):
        measure = CountingTokenDistance()
        measure.prepare(sample_context)
        measure.distance_matrix(sample_context)
        measure.distance_matrix(sample_context)
        assert measure.batch_calls == 1

    def test_cache_invalidated_when_log_is_swapped(self, sample_context):
        measure = CountingTokenDistance()
        before = measure.distance_matrix(sample_context)
        sample_context.log = QueryLog.from_sql(
            ["SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"]
        )
        after = measure.distance_matrix(sample_context)
        assert measure.batch_calls == 2
        assert after.shape == (3, 3)
        assert before.shape != after.shape

    def test_cache_invalidated_when_database_is_swapped(self, webshop, webshop_database):
        calls = {"batches": 0}

        class CountingResultDistance(ResultDistance):
            def characteristics(self, queries, context):
                calls["batches"] += 1
                return super().characteristics(queries, context)

        log = QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=3).generate(6)
        context = LogContext(log=log, database=webshop_database)
        measure = CountingResultDistance()
        stale = measure.distance_matrix(context)
        context.database = populate_database(webshop, seed=99)
        fresh = measure.distance_matrix(context)
        assert calls["batches"] == 2
        assert fresh.shape == stale.shape

    def test_invalidate_cache_forces_recomputation(self, sample_context):
        measure = CountingTokenDistance()
        measure.distance_matrix(sample_context)
        measure.invalidate_cache(sample_context)
        measure.distance_matrix(sample_context)
        assert measure.batch_calls == 2

    def test_caches_are_independent_per_context(self, sample_log):
        measure = CountingTokenDistance()
        context_a = LogContext(log=sample_log)
        context_b = LogContext(log=sample_log)
        measure.distance_matrix(context_a)
        measure.distance_matrix(context_b)
        assert measure.batch_calls == 2
        assert np.array_equal(
            measure.distance_matrix(context_a), measure.distance_matrix(context_b)
        )

    def test_returned_square_matrix_is_writeable(self, sample_context):
        # Callers may post-process the square form; only the cached condensed
        # values are frozen.
        matrix = TokenDistance().distance_matrix(sample_context)
        matrix[0, 0] = 1.0  # must not raise


class TestCondensedPipeline:
    def test_condensed_matches_square(self, sample_context):
        measure = TokenDistance()
        condensed = measure.condensed_distance_matrix(sample_context)
        square = measure.distance_matrix(sample_context)
        assert isinstance(condensed, CondensedDistanceMatrix)
        assert condensed.n == len(sample_context)
        assert np.array_equal(condensed.to_square(), square)
        assert np.array_equal(condensed.values, square[np.triu_indices(condensed.n, k=1)])

    def test_condensed_values_are_frozen(self, sample_context):
        condensed = TokenDistance().condensed_distance_matrix(sample_context)
        with pytest.raises(ValueError):
            condensed.values[0] = 0.5

    def test_single_query_log(self):
        context = LogContext(log=QueryLog.from_sql(["SELECT a FROM t"]))
        measure = TokenDistance()
        assert measure.distance_matrix(context).shape == (1, 1)
        assert measure.condensed_distance_matrix(context).values.shape == (0,)


class TestJaccardVectorization:
    def test_all_empty_sets_give_zero_distances(self):
        measure = TokenDistance()
        values = measure.condensed_distances([frozenset(), frozenset(), frozenset()])
        assert np.array_equal(values, np.zeros(3))

    def test_empty_vs_nonempty_is_distance_one(self):
        measure = TokenDistance()
        values = measure.condensed_distances([frozenset(), frozenset({"a"})])
        assert np.array_equal(values, np.ones(1))

    @given(
        sets=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=40), max_size=12),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_vectorized_jaccard_equals_scalar(self, sets):
        measure = TokenDistance()
        vectorized = measure.condensed_distances(list(sets))
        expected = []
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                expected.append(measure.distance_between(sets[i], sets[j]))
        assert np.array_equal(vectorized, np.array(expected))

    def test_vocabulary_chunking_is_exact(self, monkeypatch):
        # Force multi-block accumulation: block size of n cells → 1 column/block.
        monkeypatch.setattr(JaccardSetMeasure, "_MEMBERSHIP_BLOCK_CELLS", 4)
        chunked = TokenDistance()
        sets = [
            frozenset({"a", "b", "c"}),
            frozenset({"b", "c", "d", "e"}),
            frozenset({"e", "f"}),
            frozenset(),
        ]
        expected = []
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                expected.append(chunked.distance_between(sets[i], sets[j]))
        assert np.array_equal(chunked.condensed_distances(sets), np.array(expected))
