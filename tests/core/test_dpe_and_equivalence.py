"""Tests for Definition 1 / Definition 2 verification machinery."""

from __future__ import annotations

import pytest

from repro.core.dpe import (
    DistanceMeasure,
    LogContext,
    SharedInformation,
    verify_distance_preservation,
)
from repro.core.equivalence import verify_c_equivalence
from repro.exceptions import DpeError
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query


class LengthMeasure(DistanceMeasure):
    """Toy measure for testing the framework: |len(tokens_a) - len(tokens_b)| scaled."""

    name = "length"
    display_name = "Length Distance"
    equivalence_notion = "Length Equivalence"

    def characteristic(self, query, context):
        from repro.sql.render import render_query

        return len(render_query(query))

    def distance_between(self, a, b):
        return abs(a - b) / 1000.0


class IdentityScheme:
    """A 'scheme' that does not encrypt anything (for framework tests)."""

    def encrypt_context(self, context):
        return context

    def encrypt_characteristic(self, query, characteristic, context):
        return characteristic


class BrokenScheme(IdentityScheme):
    """A scheme whose characteristic encryption is inconsistent."""

    def encrypt_characteristic(self, query, characteristic, context):
        return characteristic + 1


class TestSharedInformation:
    def test_describe(self):
        assert SharedInformation(log=True).describe() == "Log"
        assert SharedInformation(log=True, db_content=True).describe() == "Log + DB-Content"
        assert SharedInformation(log=True, domains=True).describe() == "Log + Domains"
        assert SharedInformation(log=False).describe() == "nothing"


class TestLogContext:
    def test_require_database_and_domains(self, sample_log):
        context = LogContext(log=sample_log)
        with pytest.raises(DpeError):
            context.require_database()
        with pytest.raises(DpeError):
            context.require_domains()

    def test_len(self, sample_log):
        assert len(LogContext(log=sample_log)) == len(sample_log)


class TestDistanceMatrix:
    def test_matrix_shape_and_symmetry(self, sample_context):
        matrix = LengthMeasure().distance_matrix(sample_context)
        n = len(sample_context)
        assert matrix.shape == (n, n)
        assert (matrix == matrix.T).all()
        assert (matrix.diagonal() == 0).all()

    def test_single_query_matrix(self):
        context = LogContext(log=QueryLog.from_sql(["SELECT a FROM t"]))
        matrix = LengthMeasure().distance_matrix(context)
        assert matrix.shape == (1, 1)

    def test_distance_method(self, sample_context):
        measure = LengthMeasure()
        q1 = parse_query("SELECT a FROM t")
        q2 = parse_query("SELECT a, b FROM t")
        assert measure.distance(q1, q2, sample_context) == measure.distance(q2, q1, sample_context)


class TestVerifyPreservation:
    def test_identity_scheme_preserves(self, sample_context):
        report = verify_distance_preservation(LengthMeasure(), sample_context, sample_context)
        assert report.preserved
        assert report.max_absolute_deviation == 0.0
        assert report.mean_absolute_deviation == 0.0
        assert "PRESERVED" in report.summary()

    def test_mismatched_lengths_rejected(self, sample_context, sample_log):
        shorter = LogContext(log=sample_log[:3])
        with pytest.raises(DpeError):
            verify_distance_preservation(LengthMeasure(), sample_context, shorter)

    def test_violations_detected_and_reported(self, sample_log):
        plain = LogContext(log=sample_log)
        # "Encrypt" by replacing a query with a much longer one: distances change.
        tampered_statements = sample_log.statements[:]
        tampered_statements[0] = (
            "SELECT a, b, c, d, e, f, g, h FROM some_very_long_table_name "
            "WHERE alpha > 1 AND beta > 2 AND gamma > 3"
        )
        tampered = LogContext(log=QueryLog.from_sql(tampered_statements))
        report = verify_distance_preservation(LengthMeasure(), plain, tampered)
        assert not report.preserved
        assert report.violating_pairs
        assert "VIOLATED" in report.summary()
        index_pairs = {(i, j) for i, j, _, _ in report.violating_pairs}
        assert all(0 in pair for pair in index_pairs)

    def test_violation_report_caps_examples(self, sample_log):
        plain = LogContext(log=sample_log)
        tampered = LogContext(
            log=QueryLog.from_sql(
                ["SELECT completely, different, stuff FROM elsewhere WHERE x = 1"]
                * len(sample_log)
            )
        )
        report = verify_distance_preservation(
            LengthMeasure(), plain, tampered, max_violations_reported=3
        )
        assert len(report.violating_pairs) <= 3


class TestVerifyEquivalence:
    def test_identity_scheme_satisfies_equivalence(self, sample_context):
        report = verify_c_equivalence(
            IdentityScheme(), LengthMeasure(), sample_context, sample_context
        )
        assert report.holds
        assert "HOLDS" in report.summary()

    def test_broken_scheme_detected(self, sample_context):
        report = verify_c_equivalence(
            BrokenScheme(), LengthMeasure(), sample_context, sample_context
        )
        assert not report.holds
        assert len(report.violations) == len(sample_context)
        assert "VIOLATED" in report.summary()

    def test_mismatched_lengths_rejected(self, sample_context, sample_log):
        with pytest.raises(DpeError):
            verify_c_equivalence(
                IdentityScheme(), LengthMeasure(), sample_context, LogContext(log=sample_log[:2])
            )
