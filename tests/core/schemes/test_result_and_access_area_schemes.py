"""Tests for the result and access-area DPE schemes (Table I rows 3-4)."""

from __future__ import annotations

import pytest

from repro.core.domains import DomainCatalog
from repro.core.dpe import LogContext, verify_distance_preservation
from repro.core.equivalence import verify_c_equivalence
from repro.core.measures.access_area import AccessAreaDistance
from repro.core.measures.result import ResultDistance
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme, AttributeUsage
from repro.core.schemes.result_scheme import ResultDpeScheme
from repro.cryptdb.proxy import JoinGroupSpec
from repro.exceptions import DpeError
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.sql.visitor import literals

SPJ_LOG = [
    "SELECT name FROM users WHERE age > 30",
    "SELECT name FROM users WHERE age > 50",
    "SELECT name, city FROM users WHERE city = 'Berlin'",
    "SELECT city FROM users WHERE uid IN (1, 2, 3)",
    "SELECT DISTINCT city FROM users WHERE salary >= 40000",
    "SELECT name FROM users JOIN accounts ON uid = owner_id WHERE balance < 0",
    "SELECT name FROM users WHERE age BETWEEN 20 AND 45 AND city = 'Paris'",
]

JOIN_GROUPS = [
    JoinGroupSpec("users-accounts", frozenset({("users", "uid"), ("accounts", "owner_id")}))
]


@pytest.fixture
def result_context(small_database) -> LogContext:
    return LogContext(log=QueryLog.from_sql(SPJ_LOG), database=small_database)


@pytest.fixture
def result_scheme(keychain) -> ResultDpeScheme:
    return ResultDpeScheme(keychain, join_groups=JOIN_GROUPS, paillier_bits=256)


class TestResultScheme:
    def test_encrypt_context_encrypts_log_and_database(self, result_scheme, result_context):
        encrypted = result_scheme.encrypt_context(result_context)
        assert len(encrypted.log) == len(result_context.log)
        assert encrypted.database is not None
        assert encrypted.database.table_names != result_context.database.table_names

    def test_distance_preserved(self, result_scheme, result_context):
        encrypted = result_scheme.encrypt_context(result_context)
        report = verify_distance_preservation(ResultDistance(), result_context, encrypted)
        assert report.preserved, report.violating_pairs

    def test_result_equivalence_definition4(self, result_scheme, result_context):
        encrypted = result_scheme.encrypt_context(result_context)
        report = verify_c_equivalence(result_scheme, ResultDistance(), result_context, encrypted)
        assert report.holds

    def test_aggregate_queries_rejected(self, result_scheme):
        with pytest.raises(DpeError):
            result_scheme.encrypt_query(parse_query("SELECT COUNT(*) FROM users"))

    def test_star_projections_rejected(self, result_scheme):
        with pytest.raises(DpeError):
            result_scheme.encrypt_query(parse_query("SELECT * FROM users"))

    def test_encrypt_characteristic_requires_column_projections(
        self, result_scheme, result_context
    ):
        result_scheme.encrypt_context(result_context)
        query = parse_query("SELECT age + 1 FROM users")
        with pytest.raises(DpeError):
            result_scheme.encrypt_characteristic(query, frozenset(), result_context)

    def test_describe_matches_table1(self, keychain):
        description = ResultDpeScheme(keychain, paillier_bits=256).describe()
        assert description["enc_const"] == "via CryptDB"


@pytest.fixture
def access_area_log() -> QueryLog:
    return QueryLog.from_sql(
        [
            "SELECT name FROM users WHERE age > 30",
            "SELECT name FROM users WHERE age BETWEEN 25 AND 45",
            "SELECT city FROM users WHERE city = 'Berlin'",
            "SELECT name FROM users WHERE city IN ('Paris', 'Rome')",
            "SELECT AVG(salary) FROM users WHERE age > 20",
            "SELECT SUM(salary) FROM users WHERE city = 'Berlin'",
            "SELECT name FROM users WHERE uid = 7",
        ]
    )


@pytest.fixture
def access_area_context(access_area_log, users_domains) -> LogContext:
    return LogContext(log=access_area_log, domains=users_domains)


class TestAccessAreaSchemeFit:
    def test_usage_classification(self, keychain, access_area_log, users_domains):
        scheme = AccessAreaDpeScheme(keychain)
        usage = scheme.fit(access_area_log, users_domains)
        assert usage["age"] is AttributeUsage.RANGE
        assert usage["city"] is AttributeUsage.EQUALITY
        assert usage["uid"] is AttributeUsage.EQUALITY
        assert usage["salary"] is AttributeUsage.AGGREGATE_ONLY
        assert usage["name"] is AttributeUsage.OTHER

    def test_encrypt_before_fit_raises(self, keychain):
        scheme = AccessAreaDpeScheme(keychain)
        with pytest.raises(DpeError):
            scheme.encrypt_query(parse_query("SELECT a FROM t WHERE b > 1"))

    def test_usage_of_unknown_attribute_is_other(self, keychain, access_area_log):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        assert scheme.usage_of("never_seen") is AttributeUsage.OTHER


class TestAccessAreaSchemeEncryption:
    def test_range_constants_become_ope_integers(self, keychain, access_area_log):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        encrypted = scheme.encrypt_query(parse_query("SELECT name FROM users WHERE age > 30"))
        constant_types = {type(l.value) for l in literals(encrypted)}
        assert constant_types == {int}

    def test_equality_constants_on_range_attributes_stay_comparable(
        self, keychain, access_area_log
    ):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        point = scheme.encrypt_constant_for("age", 30)
        low = scheme.encrypt_constant_for("age", 25)
        high = scheme.encrypt_constant_for("age", 45)
        assert low < point < high  # OPE keeps the point inside the interval

    def test_equality_only_attribute_uses_det(self, keychain, access_area_log):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        ciphertext = scheme.encrypt_constant_for("city", "Berlin")
        assert isinstance(ciphertext, str) and ciphertext.startswith("det:")
        assert ciphertext == scheme.encrypt_constant_for("city", "Berlin")

    def test_aggregate_only_attribute_uses_prob(self, keychain, access_area_log):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        first = scheme.encrypt_constant_for("salary", 100)
        second = scheme.encrypt_constant_for("salary", 100)
        assert first != second  # probabilistic

    def test_names_hidden_in_encrypted_query(self, keychain, access_area_log):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log)
        sql = render_query(
            scheme.encrypt_query(parse_query("SELECT name FROM users WHERE age > 30"))
        )
        for secret in ("users", "name", "age", "30"):
            assert secret not in sql

    def test_encrypted_domains_cover_only_range_attributes(
        self, keychain, access_area_log, users_domains
    ):
        scheme = AccessAreaDpeScheme(keychain)
        scheme.fit(access_area_log, users_domains)
        encrypted_domains = scheme.encrypt_domains(users_domains)
        encrypted_age = scheme.attribute_scheme.encrypt_identifier("age")
        assert encrypted_domains.has_domain(encrypted_age)
        # equality-only and aggregate-only attributes are not shared at all
        encrypted_city = scheme.attribute_scheme.encrypt_identifier("city")
        encrypted_salary = scheme.attribute_scheme.encrypt_identifier("salary")
        assert not encrypted_domains.has_domain(encrypted_city)
        assert not encrypted_domains.has_domain(encrypted_salary)
        domain = encrypted_domains.domain(encrypted_age)
        assert domain.minimum < domain.maximum  # OPE-encrypted bounds stay ordered


class TestAccessAreaSchemePreservation:
    def test_distance_preserved(self, keychain, access_area_context):
        scheme = AccessAreaDpeScheme(keychain)
        encrypted = scheme.encrypt_context(access_area_context)
        report = verify_distance_preservation(
            AccessAreaDistance(), access_area_context, encrypted
        )
        assert report.preserved, report.violating_pairs

    def test_c_equivalence(self, keychain, access_area_context):
        scheme = AccessAreaDpeScheme(keychain)
        encrypted = scheme.encrypt_context(access_area_context)
        report = verify_c_equivalence(
            scheme, AccessAreaDistance(), access_area_context, encrypted
        )
        assert report.holds

    def test_preservation_with_float_constants(self, keychain):
        log = QueryLog.from_sql(
            [
                "SELECT a FROM t WHERE price > 10.5",
                "SELECT a FROM t WHERE price BETWEEN 5.25 AND 20.75",
                "SELECT a FROM t WHERE price < 5.25",
            ]
        )
        context = LogContext(log=log)
        scheme = AccessAreaDpeScheme(keychain)
        encrypted = scheme.encrypt_context(context)
        report = verify_distance_preservation(AccessAreaDistance(), context, encrypted)
        assert report.preserved

    def test_describe_matches_table1(self, keychain):
        description = AccessAreaDpeScheme(keychain).describe()
        assert description["enc_const"] == "via CryptDB, except HOM"
