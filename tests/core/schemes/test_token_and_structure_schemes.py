"""Tests for the token and structure DPE schemes (Table I rows 1-2)."""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext, verify_distance_preservation
from repro.core.equivalence import verify_c_equivalence
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.exceptions import DpeError
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.sql.visitor import column_refs, literals


class TestTokenSchemeQueryEncryption:
    def test_names_and_constants_hidden(self, keychain):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_query(
            parse_query("SELECT name FROM users WHERE age > 30 AND city = 'Berlin'")
        )
        from repro.sql.tokens import query_token_set

        # No plaintext name or constant survives as a token of the encrypted
        # query (substring checks would false-positive on hex ciphertexts).
        encrypted_token_values = {value for _, value in query_token_set(encrypted)}
        for secret in ("users", "name", "age", "city", "Berlin", "30"):
            assert secret not in encrypted_token_values

    def test_structure_is_preserved(self, keychain):
        scheme = TokenDpeScheme(keychain)
        plain = parse_query("SELECT a, b FROM t WHERE c > 5 GROUP BY a ORDER BY a ASC LIMIT 3")
        encrypted = scheme.encrypt_query(plain)
        assert len(encrypted.select_items) == 2
        assert len(encrypted.group_by) == 1
        assert len(encrypted.order_by) == 1
        assert encrypted.limit == 3

    def test_deterministic_encryption_of_queries(self, keychain):
        scheme = TokenDpeScheme(keychain)
        query = parse_query("SELECT a FROM t WHERE b = 5")
        assert scheme.encrypt_query(query) == scheme.encrypt_query(query)

    def test_encrypted_query_reparses(self, keychain):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_query(
            parse_query("SELECT a FROM t WHERE b BETWEEN 1 AND 5 AND c IN ('x', 'y')")
        )
        assert parse_query(render_query(encrypted)) == encrypted

    def test_same_constant_same_ciphertext_across_queries(self, keychain):
        scheme = TokenDpeScheme(keychain)
        enc_a = scheme.encrypt_query(parse_query("SELECT a FROM t WHERE b = 5"))
        enc_b = scheme.encrypt_query(parse_query("SELECT a FROM t WHERE c = 5"))
        constants_a = {l.value for l in literals(enc_a)}
        constants_b = {l.value for l in literals(enc_b)}
        assert constants_a == constants_b

    def test_per_attribute_mode_differs_across_attributes(self, keychain):
        scheme = TokenDpeScheme(keychain, per_attribute_constants=True)
        enc_a = scheme.encrypt_query(parse_query("SELECT a FROM t WHERE b = 5"))
        enc_b = scheme.encrypt_query(parse_query("SELECT a FROM t WHERE c = 5"))
        assert {l.value for l in literals(enc_a)} != {l.value for l in literals(enc_b)}

    def test_null_and_boolean_literals_left_plain(self, keychain):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_query(parse_query("SELECT a FROM t WHERE b IS NULL"))
        assert "NULL" in render_query(encrypted)

    def test_alias_encrypted(self, keychain):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_query(parse_query("SELECT a AS label FROM t AS alias_name"))
        sql = render_query(encrypted)
        assert "label" not in sql and "alias_name" not in sql


class TestTokenSchemePreservation:
    def test_distance_preserved_on_sample_log(self, keychain, sample_context):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_context(sample_context)
        report = verify_distance_preservation(TokenDistance(), sample_context, encrypted)
        assert report.preserved
        assert report.pairs_checked == len(sample_context) * (len(sample_context) - 1) // 2

    def test_c_equivalence_on_sample_log(self, keychain, sample_context):
        scheme = TokenDpeScheme(keychain)
        encrypted = scheme.encrypt_context(sample_context)
        report = verify_c_equivalence(scheme, TokenDistance(), sample_context, encrypted)
        assert report.holds

    def test_characteristic_encryption_rejects_per_attribute_mode(self, keychain, sample_context):
        scheme = TokenDpeScheme(keychain, per_attribute_constants=True)
        query = sample_context.log[0].query
        characteristic = TokenDistance().characteristic(query, sample_context)
        with pytest.raises(DpeError):
            scheme.encrypt_characteristic(query, characteristic, sample_context)

    def test_describe_matches_table1(self, keychain):
        description = TokenDpeScheme(keychain).describe()
        assert (description["enc_rel"], description["enc_attr"], description["enc_const"]) == (
            "DET",
            "DET",
            "DET",
        )


class TestStructureScheme:
    def test_constants_are_randomized(self, keychain):
        scheme = StructureDpeScheme(keychain)
        query = parse_query("SELECT a FROM t WHERE b = 5")
        first = {l.value for l in literals(scheme.encrypt_query(query))}
        second = {l.value for l in literals(scheme.encrypt_query(query))}
        assert first != second  # PROB: same constant, different ciphertexts

    def test_identifiers_are_deterministic(self, keychain):
        scheme = StructureDpeScheme(keychain)
        query = parse_query("SELECT a FROM t WHERE b = 5")
        enc_a = scheme.encrypt_query(query)
        enc_b = scheme.encrypt_query(query)
        assert {c.name for c in column_refs(enc_a)} == {c.name for c in column_refs(enc_b)}
        assert enc_a.from_table == enc_b.from_table

    def test_distance_preserved_despite_randomized_constants(self, keychain, sample_context):
        scheme = StructureDpeScheme(keychain)
        encrypted = scheme.encrypt_context(sample_context)
        report = verify_distance_preservation(StructureDistance(), sample_context, encrypted)
        assert report.preserved

    def test_c_equivalence(self, keychain, sample_context):
        scheme = StructureDpeScheme(keychain)
        encrypted = scheme.encrypt_context(sample_context)
        report = verify_c_equivalence(scheme, StructureDistance(), sample_context, encrypted)
        assert report.holds

    def test_token_distance_not_preserved_by_structure_scheme(self, keychain):
        # Cross-check: the structure scheme is NOT appropriate for the token
        # measure when queries share constants (the ablation claim).
        log = QueryLog.from_sql(
            ["SELECT a FROM t WHERE b = 5", "SELECT c FROM t WHERE d = 5"]
        )
        context = LogContext(log=log)
        scheme = StructureDpeScheme(keychain)
        encrypted = scheme.encrypt_context(context)
        report = verify_distance_preservation(TokenDistance(), context, encrypted)
        assert not report.preserved

    def test_describe_matches_table1(self, keychain):
        description = StructureDpeScheme(keychain).describe()
        assert description["enc_const"] == "PROB"

    def test_encrypted_log_keeps_order_and_length(self, keychain, sample_log):
        scheme = StructureDpeScheme(keychain)
        encrypted_log = scheme.encrypt_log(sample_log)
        assert len(encrypted_log) == len(sample_log)
