"""Tests for the token-based and structure distance measures."""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext
from repro.core.measures.structure import StructureDistance
from repro.core.measures.token import TokenDistance
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query


@pytest.fixture
def context() -> LogContext:
    return LogContext(log=QueryLog.from_sql(["SELECT a FROM t"]))


def token_distance(sql_a: str, sql_b: str) -> float:
    measure = TokenDistance()
    context = LogContext(log=QueryLog.from_sql([sql_a, sql_b]))
    return measure.distance(parse_query(sql_a), parse_query(sql_b), context)


def structure_distance(sql_a: str, sql_b: str) -> float:
    measure = StructureDistance()
    context = LogContext(log=QueryLog.from_sql([sql_a, sql_b]))
    return measure.distance(parse_query(sql_a), parse_query(sql_b), context)


class TestTokenDistance:
    def test_identical_queries_distance_zero(self):
        assert token_distance("SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE b > 5") == 0.0

    def test_disjoint_queries_distance_near_one(self):
        distance = token_distance("SELECT a FROM t", "SELECT x, y FROM s WHERE z = 'v'")
        assert distance > 0.5

    def test_constant_change_matters(self):
        assert token_distance(
            "SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE b > 6"
        ) > 0.0

    def test_symmetry(self):
        a, b = "SELECT a FROM t WHERE b > 5", "SELECT c FROM t WHERE b > 5"
        assert token_distance(a, b) == token_distance(b, a)

    def test_range_and_identity(self, sample_log):
        measure = TokenDistance()
        context = LogContext(log=sample_log)
        matrix = measure.distance_matrix(context)
        assert matrix.shape == (len(sample_log), len(sample_log))
        assert (matrix.diagonal() == 0).all()
        assert ((matrix >= 0) & (matrix <= 1)).all()
        assert (matrix == matrix.T).all()

    def test_jaccard_value_hand_computed(self):
        # tokens(Q1) = {SELECT, a, FROM, t}; tokens(Q2) = {SELECT, b, FROM, t}
        # intersection = 3, union = 5 -> distance = 1 - 3/5
        assert token_distance("SELECT a FROM t", "SELECT b FROM t") == pytest.approx(0.4)

    def test_measure_metadata(self):
        measure = TokenDistance()
        description = measure.describe()
        assert description["equivalence_notion"] == "Token Equivalence"
        assert description["shared_information"] == "Log"


class TestStructureDistance:
    def test_constants_do_not_matter(self):
        assert structure_distance(
            "SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE b > 999"
        ) == 0.0

    def test_operator_matters(self):
        assert structure_distance(
            "SELECT a FROM t WHERE b > 5", "SELECT a FROM t WHERE b = 5"
        ) > 0.0

    def test_projection_matters(self):
        assert structure_distance("SELECT a FROM t", "SELECT a, b FROM t") > 0.0

    def test_identical_structure_distance_zero(self):
        assert structure_distance(
            "SELECT name, COUNT(*) FROM users WHERE age > 1 GROUP BY name",
            "SELECT name, COUNT(*) FROM users WHERE age > 30 GROUP BY name",
        ) == 0.0

    def test_jaccard_value_hand_computed(self):
        # features(Q1) = {(SELECT,a),(FROM,t),(WHERE,b >)}
        # features(Q2) = {(SELECT,a),(FROM,t)}
        distance = structure_distance("SELECT a FROM t WHERE b > 5", "SELECT a FROM t")
        assert distance == pytest.approx(1 - 2 / 3)

    def test_matrix_properties(self, sample_log):
        measure = StructureDistance()
        matrix = measure.distance_matrix(LogContext(log=sample_log))
        assert (matrix.diagonal() == 0).all()
        assert ((matrix >= 0) & (matrix <= 1)).all()

    def test_metadata(self):
        assert StructureDistance().describe()["equivalence_notion"] == "Structural Equivalence"
