"""Tests for the query-result distance measure (Definition 4)."""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext
from repro.core.measures.result import ResultDistance
from repro.exceptions import DpeError
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query


@pytest.fixture
def measure() -> ResultDistance:
    return ResultDistance()


@pytest.fixture
def context(small_database) -> LogContext:
    return LogContext(log=QueryLog.from_sql(["SELECT name FROM users"]), database=small_database)


class TestCharacteristic:
    def test_characteristic_is_result_tuple_set(self, measure, context):
        tuples = measure.characteristic(parse_query("SELECT city FROM users WHERE uid = 1"), context)
        assert tuples == frozenset({("Berlin",)})

    def test_database_required(self, measure):
        context = LogContext(log=QueryLog.from_sql(["SELECT a FROM t"]))
        with pytest.raises(DpeError):
            measure.characteristic(parse_query("SELECT a FROM t"), context)


class TestDistance:
    def distance(self, measure, context, sql_a: str, sql_b: str) -> float:
        return measure.distance(parse_query(sql_a), parse_query(sql_b), context)

    def test_same_results_distance_zero(self, measure, context):
        assert self.distance(
            measure, context,
            "SELECT name FROM users WHERE age > 30",
            "SELECT name FROM users WHERE age >= 31",
        ) == 0.0

    def test_disjoint_results_distance_one(self, measure, context):
        assert self.distance(
            measure, context,
            "SELECT name FROM users WHERE city = 'Rome'",
            "SELECT name FROM users WHERE city = 'Paris'",
        ) == 1.0

    def test_partial_overlap(self, measure, context):
        distance = self.distance(
            measure, context,
            "SELECT name FROM users WHERE age > 30",
            "SELECT name FROM users WHERE age > 50",
        )
        assert 0.0 < distance < 1.0

    def test_empty_results_are_equal(self, measure, context):
        assert self.distance(
            measure, context,
            "SELECT name FROM users WHERE age > 500",
            "SELECT name FROM users WHERE age > 900",
        ) == 0.0

    def test_depends_on_database_state(self, measure, small_database):
        from repro.db.database import Database
        from repro.db.schema import Column, ColumnType, TableSchema

        other = Database("other")
        other.create_table(
            TableSchema(
                "users",
                [
                    Column("uid", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                    Column("city", ColumnType.TEXT),
                    Column("age", ColumnType.INTEGER),
                    Column("salary", ColumnType.REAL),
                ],
            )
        )
        other.insert("users", {"uid": 1, "name": "only", "city": "Rome", "age": 99, "salary": 1.0})
        log = QueryLog.from_sql(["SELECT name FROM users"])
        context_a = LogContext(log=log, database=small_database)
        context_b = LogContext(log=log, database=other)
        query_a = parse_query("SELECT name FROM users WHERE age > 30")
        query_b = parse_query("SELECT name FROM users WHERE age > 90")
        assert measure.distance(query_a, query_b, context_a) != measure.distance(
            query_a, query_b, context_b
        )

    def test_matrix_over_log(self, measure, small_database):
        log = QueryLog.from_sql(
            [
                "SELECT name FROM users WHERE age > 30",
                "SELECT name FROM users WHERE age > 50",
                "SELECT name FROM users WHERE city = 'Rome'",
            ]
        )
        matrix = measure.distance_matrix(LogContext(log=log, database=small_database))
        assert matrix.shape == (3, 3)
        assert (matrix.diagonal() == 0).all()
        assert ((matrix >= 0) & (matrix <= 1)).all()

    def test_metadata(self, measure):
        description = measure.describe()
        assert description["equivalence_notion"] == "Result Equivalence"
        assert description["shared_information"] == "Log + DB-Content"
