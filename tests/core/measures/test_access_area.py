"""Tests for the access-area algebra and Definition 5.

Includes the property that all access-area relations (equality, overlap,
emptiness) are invariant under strictly monotone transformations of the
constants — the formal reason OPE-encrypted constants preserve the measure.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import Domain, DomainCatalog
from repro.core.dpe import LogContext
from repro.core.measures.access_area import (
    AccessArea,
    AccessAreaDistance,
    Interval,
    query_access_areas,
)
from repro.sql.log import QueryLog
from repro.sql.parser import parse_query


class TestInterval:
    def test_contains(self):
        interval = Interval(1, 10)
        assert interval.contains(1) and interval.contains(10) and interval.contains(5)
        assert not interval.contains(0) and not interval.contains(11)

    def test_exclusive_bounds(self):
        interval = Interval(1, 10, low_inclusive=False, high_inclusive=False)
        assert not interval.contains(1) and not interval.contains(10)
        assert interval.contains(2)

    def test_unbounded_sides(self):
        assert Interval(None, 5).contains(-1000)
        assert Interval(5, None).contains(10**9)

    def test_emptiness(self):
        assert Interval(5, 1).is_empty()
        assert Interval(5, 5, low_inclusive=False).is_empty()
        assert not Interval(5, 5).is_empty()

    def test_intersection(self):
        assert Interval(1, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(1, 4).intersect(Interval(5, 9)).is_empty()

    def test_overlap(self):
        assert Interval(1, 10).overlaps(Interval(10, 20))
        assert not Interval(1, 10, high_inclusive=False).overlaps(Interval(10, 20))

    def test_clip(self):
        assert Interval(None, 50).clip(0, 100) == Interval(0, 50)


class TestAccessArea:
    def test_full_and_empty(self):
        assert AccessArea.full_domain().contains(42)
        assert AccessArea.empty().is_empty()
        assert not AccessArea.full_domain().overlaps(AccessArea.empty())

    def test_points_and_intervals(self):
        area = AccessArea.of_points(frozenset({1, 5}))
        assert area.contains(1) and not area.contains(2)
        interval_area = AccessArea.of_interval(Interval(10, 20))
        assert interval_area.contains(15)

    def test_overlap_point_in_interval(self):
        points = AccessArea.of_points(frozenset({15}))
        interval = AccessArea.of_interval(Interval(10, 20))
        assert points.overlaps(interval)
        assert interval.overlaps(points)

    def test_intersect_and_union(self):
        a = AccessArea.of_interval(Interval(0, 10))
        b = AccessArea.of_interval(Interval(5, 20))
        assert a.intersect(b).contains(7)
        assert not a.intersect(b).contains(2)
        assert a.union(b).contains(2) and a.union(b).contains(15)

    def test_intersect_with_full_is_identity(self):
        area = AccessArea.of_points(frozenset({3}))
        assert AccessArea.full_domain().intersect(area) == area.canonical()

    def test_canonical_absorbs_covered_points(self):
        area = AccessArea(
            intervals=frozenset({Interval(0, 10)}), points=frozenset({5, 20})
        ).canonical()
        assert area.points == frozenset({20})

    def test_empty_interval_constructor(self):
        assert AccessArea.of_interval(Interval(9, 1)).is_empty()


class TestQueryAccessAreas:
    def areas(self, sql: str, domains: DomainCatalog | None = None):
        return query_access_areas(parse_query(sql), domains)

    def test_equality_predicate_is_point(self):
        areas = self.areas("SELECT a FROM t WHERE b = 5")
        assert areas["b"].points == frozenset({5})
        assert areas["a"].full  # projected without constraint

    def test_range_predicate_is_interval(self):
        areas = self.areas("SELECT a FROM t WHERE b > 5")
        assert not areas["b"].full
        assert areas["b"].contains(6) and not areas["b"].contains(5)

    def test_between_and_in(self):
        areas = self.areas("SELECT a FROM t WHERE b BETWEEN 1 AND 9 AND c IN (2, 4)")
        assert areas["b"].contains(9) and not areas["b"].contains(10)
        assert areas["c"].points == frozenset({2, 4})

    def test_conjunction_intersects(self):
        areas = self.areas("SELECT a FROM t WHERE b > 5 AND b < 10")
        assert areas["b"].contains(7)
        assert not areas["b"].contains(5) and not areas["b"].contains(10)

    def test_disjunction_unions(self):
        areas = self.areas("SELECT a FROM t WHERE b < 3 OR b > 8")
        assert areas["b"].contains(1) and areas["b"].contains(9)
        assert not areas["b"].contains(5)

    def test_or_with_different_attributes_is_full_for_each(self):
        areas = self.areas("SELECT a FROM t WHERE b < 3 OR c = 1")
        assert areas["b"].full and areas["c"].full

    def test_not_and_like_are_conservative(self):
        areas = self.areas("SELECT a FROM t WHERE NOT b = 5 AND name LIKE 'x%'")
        assert areas["b"].full
        assert areas["name"].full

    def test_unreferenced_attribute_absent(self):
        areas = self.areas("SELECT a FROM t WHERE b = 1")
        assert "z" not in areas

    def test_flipped_comparison(self):
        areas = self.areas("SELECT a FROM t WHERE 5 < b")
        assert areas["b"].contains(6) and not areas["b"].contains(4)

    def test_domain_clipping(self):
        domains = DomainCatalog([Domain("b", minimum=0, maximum=100)])
        areas = self.areas("SELECT a FROM t WHERE b > 50", domains)
        clipped = next(iter(areas["b"].intervals))
        assert clipped.high == 100

    def test_column_column_predicate_is_conservative(self):
        areas = self.areas("SELECT a FROM t WHERE b = c")
        assert areas["b"].full and areas["c"].full


class TestDefinition5:
    def distance(self, sql_a: str, sql_b: str, x: float = 0.5) -> float:
        measure = AccessAreaDistance(overlap_score=x)
        context = LogContext(log=QueryLog.from_sql([sql_a, sql_b]))
        return measure.distance(parse_query(sql_a), parse_query(sql_b), context)

    def test_equal_access_areas_distance_zero(self):
        assert self.distance(
            "SELECT a FROM t WHERE b BETWEEN 1 AND 9",
            "SELECT a FROM t WHERE b BETWEEN 1 AND 9",
        ) == 0.0

    def test_overlapping_areas_score_half(self):
        # attribute a: full vs full -> 0; attribute b: [1,9] vs [5,20] -> 0.5
        assert self.distance(
            "SELECT a FROM t WHERE b BETWEEN 1 AND 9",
            "SELECT a FROM t WHERE b BETWEEN 5 AND 20",
        ) == pytest.approx(0.25)

    def test_disjoint_areas_score_one(self):
        assert self.distance(
            "SELECT a FROM t WHERE b < 3",
            "SELECT a FROM t WHERE b > 7",
        ) == pytest.approx(0.5)  # averaged with attribute a (0)

    def test_custom_overlap_score(self):
        assert self.distance(
            "SELECT a FROM t WHERE b BETWEEN 1 AND 9",
            "SELECT a FROM t WHERE b BETWEEN 5 AND 20",
            x=0.8,
        ) == pytest.approx(0.4)

    def test_invalid_overlap_score_rejected(self):
        with pytest.raises(ValueError):
            AccessAreaDistance(overlap_score=1.0)
        with pytest.raises(ValueError):
            AccessAreaDistance(overlap_score=0.0)

    def test_attribute_accessed_by_only_one_query_counts_as_disjoint(self):
        # Q1 accesses {a, b}, Q2 accesses {a, c}: delta_b = delta_c = 1,
        # delta_a = 0 -> distance = 2/3.
        assert self.distance(
            "SELECT a FROM t WHERE b = 1", "SELECT a FROM t WHERE c = 1"
        ) == pytest.approx(2 / 3)

    def test_empty_characteristics(self):
        measure = AccessAreaDistance()
        assert measure.distance_between({}, {}) == 0.0


class TestMonotoneInvariance:
    """Access-area relations are invariant under strictly monotone maps."""

    @staticmethod
    def _transform_area(area: AccessArea, mapping) -> AccessArea:
        if area.full:
            return AccessArea.full_domain()
        return AccessArea(
            intervals=frozenset(
                Interval(
                    None if i.low is None else mapping(i.low),
                    None if i.high is None else mapping(i.high),
                    i.low_inclusive,
                    i.high_inclusive,
                )
                for i in area.intervals
            ),
            points=frozenset(mapping(p) for p in area.points),
        )

    @settings(max_examples=80)
    @given(
        low_a=st.integers(min_value=-100, max_value=100),
        width_a=st.integers(min_value=0, max_value=50),
        low_b=st.integers(min_value=-100, max_value=100),
        width_b=st.integers(min_value=0, max_value=50),
        points=st.frozensets(st.integers(min_value=-100, max_value=100), max_size=4),
        scale=st.integers(min_value=1, max_value=1000),
        offset=st.integers(min_value=-10**6, max_value=10**6),
    )
    def test_relations_preserved_under_affine_map(
        self, low_a, width_a, low_b, width_b, points, scale, offset
    ):
        def mapping(x):
            return scale * x + offset

        area_a = AccessArea(
            intervals=frozenset({Interval(low_a, low_a + width_a)}), points=frozenset()
        ).canonical()
        area_b = AccessArea(
            intervals=frozenset({Interval(low_b, low_b + width_b)}), points=points
        ).canonical()

        mapped_a = self._transform_area(area_a, mapping).canonical()
        mapped_b = self._transform_area(area_b, mapping).canonical()

        assert (area_a.canonical() == area_b.canonical()) == (mapped_a == mapped_b)
        assert area_a.overlaps(area_b) == mapped_a.overlaps(mapped_b)
        assert area_a.intersect(area_b).is_empty() == mapped_a.intersect(mapped_b).is_empty()
