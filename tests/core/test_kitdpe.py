"""Tests for the KIT-DPE engine (Definition 6 and steps 3-4)."""

from __future__ import annotations

import pytest

from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    ConstantUsage,
    EquivalenceRequirements,
    KitDpeEngine,
)
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
    standard_measures,
)
from repro.crypto.base import EncryptionClass
from repro.exceptions import DpeError


@pytest.fixture
def engine() -> KitDpeEngine:
    return KitDpeEngine()


class TestAppropriateClass:
    def test_no_requirement_yields_prob(self, engine):
        choice = engine.appropriate_class(ComponentRequirement())
        assert choice.chosen is EncryptionClass.PROB
        assert choice.security_level == 3

    def test_equality_requirement_yields_det(self, engine):
        choice = engine.appropriate_class(ComponentRequirement(needs_equality=True))
        assert choice.chosen is EncryptionClass.DET

    def test_order_requirement_yields_ope(self, engine):
        choice = engine.appropriate_class(
            ComponentRequirement(needs_equality=True, needs_order=True)
        )
        assert choice.chosen is EncryptionClass.OPE

    def test_addition_requirement_yields_hom(self, engine):
        choice = engine.appropriate_class(ComponentRequirement(needs_addition=True))
        assert choice.chosen is EncryptionClass.HOM

    def test_plain_excluded_by_default(self, engine):
        candidates = engine.appropriate_classes(ComponentRequirement())
        assert EncryptionClass.PLAIN not in candidates

    def test_plain_can_be_included(self):
        engine = KitDpeEngine(include_plain=True)
        # PLAIN satisfies everything but sits on level 0, so it never wins.
        choice = engine.appropriate_class(ComponentRequirement(needs_equality=True))
        assert choice.chosen is EncryptionClass.DET

    def test_impossible_requirement_raises(self, engine):
        with pytest.raises(DpeError):
            engine.appropriate_class(
                ComponentRequirement(needs_order=True, needs_addition=True)
            )

    def test_subclasses_are_dropped_in_favour_of_parents(self, engine):
        # Both DET and JOIN qualify for equality; DET (the parent) is chosen.
        candidates = engine.appropriate_classes(ComponentRequirement(needs_equality=True))
        assert EncryptionClass.DET in candidates
        assert EncryptionClass.JOIN not in candidates
        # Both PROB and HOM qualify for "nothing"; PROB (the parent) is chosen.
        candidates = engine.appropriate_classes(ComponentRequirement())
        assert candidates == [EncryptionClass.PROB]


class TestDerivation:
    def test_token_row(self, engine):
        derivation = engine.derive(TokenDistance())
        assert derivation.enc_rel.chosen is EncryptionClass.DET
        assert derivation.enc_attr.chosen is EncryptionClass.DET
        assert derivation.enc_const.summary == "DET"

    def test_structure_row(self, engine):
        derivation = engine.derive(StructureDistance())
        assert derivation.enc_const.summary == "PROB"

    def test_result_row(self, engine):
        derivation = engine.derive(ResultDistance())
        assert derivation.enc_const.summary == "via CryptDB"
        assert derivation.enc_const.via_cryptdb
        per_usage = dict(derivation.enc_const.per_usage)
        assert per_usage[ConstantUsage.EQUALITY_PREDICATE].chosen is EncryptionClass.DET
        assert per_usage[ConstantUsage.RANGE_PREDICATE].chosen is EncryptionClass.OPE
        assert per_usage[ConstantUsage.AGGREGATE_ARGUMENT].chosen is EncryptionClass.HOM

    def test_access_area_row(self, engine):
        derivation = engine.derive(AccessAreaDistance())
        assert derivation.enc_const.summary == "via CryptDB, except HOM"
        per_usage = dict(derivation.enc_const.per_usage)
        assert per_usage[ConstantUsage.AGGREGATE_ARGUMENT].chosen is EncryptionClass.PROB
        assert per_usage[ConstantUsage.RANGE_PREDICATE].chosen is EncryptionClass.OPE

    def test_derive_table_covers_all_measures(self, engine):
        derivations = engine.derive_table(standard_measures())
        assert [d.measure for d in derivations] == ["token", "structure", "result", "access_area"]

    def test_shared_information_column(self, engine):
        derivations = {d.measure: d for d in engine.derive_table(standard_measures())}
        assert derivations["token"].shared_information == "Log"
        assert derivations["result"].shared_information == "Log + DB-Content"
        assert derivations["access_area"].shared_information == "Log + Domains"

    def test_measure_without_requirements_rejected(self, engine):
        class Bare:
            name = "bare"

        with pytest.raises(DpeError):
            engine.derive(Bare())  # type: ignore[arg-type]

    def test_constant_choice_usage_lookup(self, engine):
        derivation = engine.derive(ResultDistance())
        choice = derivation.enc_const.usage_choice(ConstantUsage.RANGE_PREDICATE)
        assert choice.chosen is EncryptionClass.OPE
        uniform = engine.derive(TokenDistance()).enc_const
        assert uniform.usage_choice(ConstantUsage.RANGE_PREDICATE).chosen is EncryptionClass.DET


class TestSecurityAssessment:
    def test_assessment_lists_classes_and_levels(self, engine):
        derivation = engine.derive(StructureDistance())
        assessment = engine.assess(derivation)
        assert EncryptionClass.DET in assessment.classes_in_use
        assert EncryptionClass.PROB in assessment.classes_in_use
        assert assessment.minimum_security_level == 2
        assert assessment.known_from_literature

    def test_assessment_for_cryptdb_backed_scheme(self, engine):
        derivation = engine.derive(ResultDistance())
        assessment = engine.assess(derivation)
        assert assessment.minimum_security_level == 1  # OPE constants
        assert any("CryptDB" in note for note in assessment.notes)

    def test_token_assessment_level(self, engine):
        assessment = engine.assess(engine.derive(TokenDistance()))
        assert assessment.minimum_security_level == 2


class TestRequirementValidation:
    def test_constant_requirement_needs_exactly_one_form(self):
        with pytest.raises(DpeError):
            ConstantRequirement()
        with pytest.raises(DpeError):
            ConstantRequirement(
                uniform=ComponentRequirement(),
                per_usage=((ConstantUsage.OTHER, ComponentRequirement()),),
            )

    def test_requirements_expose_notion_names(self):
        requirements = TokenDistance().component_requirements()
        assert isinstance(requirements, EquivalenceRequirements)
        assert requirements.notion == "Token Equivalence"
        assert requirements.characteristic == "tokens"
