"""Every tamper class is caught, on every backend, on every check path.

The storage audit (``verify_storage`` / the lazy ``auto_verify`` pass)
catches bit flips, row swaps and stale-snapshot replays; the signed hash
chain (``verify_stream``) catches log rollbacks; and with the audit turned
off, the decrypt path still refuses result cells whose ciphertexts were
never stored.  The counters in the exposure report make both outcomes
observable: ``cells_verified`` grows on honest runs, ``tamper_detected``
on caught ones.
"""

from __future__ import annotations

import pytest

from repro.api import StreamingQueryLog, TamperDetected

BACKENDS = ("memory", "sqlite")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("suffix", ["_ord", "_hom"])
def test_flip_detected_by_audit(make_injector, backend, suffix):
    injector = make_injector(backend, auto_verify=False)
    assert injector.session.verify_storage() > 0  # clean audit passes first
    injector.flip(suffix=suffix)
    with pytest.raises(TamperDetected):
        injector.session.verify_storage()


@pytest.mark.parametrize("backend", BACKENDS)
def test_swap_detected_by_audit(make_injector, backend):
    injector = make_injector(backend, auto_verify=False)
    result = injector.swap()
    assert result.cells_changed > 0, "rows 0 and 1 must differ for a real swap"
    with pytest.raises(TamperDetected):
        injector.session.verify_storage()


@pytest.mark.parametrize("backend", BACKENDS)
def test_replay_detected_by_audit(make_injector, backend):
    injector = make_injector(backend, auto_verify=False)
    result, fresh_session = injector.replay()
    assert result.cells_changed > 0, "the stale snapshot must differ somewhere"
    with pytest.raises(TamperDetected):
        fresh_session.verify_storage()


@pytest.mark.parametrize("backend", BACKENDS)
def test_rollback_detected_by_stream_verify(make_injector, backend, spj_queries):
    injector = make_injector(backend)
    sink = StreamingQueryLog()
    injector.session.stream(spj_queries.queries, into=sink)
    checkpoint = injector.session.last_checkpoint
    assert checkpoint is not None and checkpoint.length == sink.chain_length
    injector.session.verify_stream(sink)  # clean chain verifies first
    injector.rollback(sink)
    with pytest.raises(TamperDetected):
        injector.session.verify_stream(sink)


@pytest.mark.parametrize("backend", BACKENDS)
def test_flip_detected_on_decrypt_path(make_injector, backend, spj_queries):
    # auto_verify off: no storage audit runs, so detection must come from
    # the value-tag check on the decrypt path alone.
    injector = make_injector(backend, auto_verify=False)
    injector.flip(suffix="", row=0)  # the EQ base column feeds SELECTed cells
    with pytest.raises(TamperDetected):
        for result in injector.session.run(spj_queries).results:
            injector.service.decrypt(result)


@pytest.mark.parametrize("backend", BACKENDS)
def test_auto_verify_audits_before_first_query(make_injector, backend, spj_queries):
    injector = make_injector(backend, auto_verify=True)
    injector.flip()
    with pytest.raises(TamperDetected):
        injector.session.execute(spj_queries.queries[0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_counters_track_audits_and_detections(make_injector, backend):
    injector = make_injector(backend, auto_verify=False)
    injector.session.verify_storage()
    report = injector.service.exposure_report()
    assert sum(entry.cells_verified for entry in report.columns) > 0
    assert all(entry.tamper_detected == 0 for entry in report.columns)

    injector.flip()
    with pytest.raises(TamperDetected):
        injector.session.verify_storage()
    report = injector.service.exposure_report()
    assert sum(entry.tamper_detected for entry in report.columns) >= 1
