"""Property tests of the integrity primitives.

Hypothesis drives the core claims with adversarially chosen inputs:

* *manifest tags* — for ciphertext shapes from every onion layer (DET/SIV
  text on EQ, OPE integers on ORD, Paillier big integers on HOM), flipping
  a single bit of any stored value or swapping any unequal pair of rows
  changes the recomputed row tag away from the manifest's;
* *hash chains* — over encrypted query logs produced by all four distance
  measures' DPE schemes, ``verify_log_entries`` accepts a log if and only
  if it is an exact prefix-extension of the signed checkpoint: any
  truncated suffix or mutated committed entry is rejected, every honest
  extension is accepted.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.schemes import (
    AccessAreaDpeScheme,
    ResultDpeScheme,
    StructureDpeScheme,
    TokenDpeScheme,
)
from repro.crypto.integrity import (
    ColumnAuthenticator,
    sign_checkpoint,
    verify_log_entries,
)
from repro.crypto.keys import KeyChain, MasterKey
from repro.exceptions import IntegrityError
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile

KEY = KeyChain(MasterKey.from_passphrase("integrity-tests")).key_for("integrity", "t")
CHECKPOINT_KEY = KeyChain(MasterKey.from_passphrase("integrity-tests")).key_for(
    "integrity", "checkpoint"
)

# Ciphertext shapes as each onion layer stores them: EQ holds SIV text,
# ORD holds OPE integers, HOM holds Paillier residues (huge integers).
ONION_VALUES = {
    "eq": st.text(min_size=1, max_size=24),
    "ord": st.integers(min_value=0, max_value=2**63 - 1),
    "hom": st.integers(min_value=2**200, max_value=2**256),
}


def flip_bit(value):
    if isinstance(value, int):
        return value ^ 1
    return value[:-1] + chr(ord(value[-1]) ^ 1)


@pytest.mark.parametrize("onion", sorted(ONION_VALUES))
@given(data=st.data())
def test_single_flipped_bit_breaks_the_row_tag(onion, data):
    values = data.draw(st.lists(ONION_VALUES[onion], min_size=1, max_size=8))
    index = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    authenticator = ColumnAuthenticator(KEY)
    manifest = authenticator.manifest(values, version=1)
    tampered = flip_bit(values[index])
    assert (
        authenticator.row_tag(index, 1, tampered) != manifest.row_tags[index]
    ), "a one-bit edit must break the row tag"
    assert authenticator.value_tag(tampered) not in manifest.value_tags or tampered in values


@pytest.mark.parametrize("onion", sorted(ONION_VALUES))
@given(data=st.data())
def test_swapped_pair_breaks_the_row_tags(onion, data):
    values = data.draw(
        st.lists(ONION_VALUES[onion], min_size=2, max_size=8, unique=True)
    )
    row_a = data.draw(st.integers(min_value=0, max_value=len(values) - 2))
    row_b = data.draw(st.integers(min_value=row_a + 1, max_value=len(values) - 1))
    authenticator = ColumnAuthenticator(KEY)
    manifest = authenticator.manifest(values, version=1)
    assert authenticator.row_tag(row_a, 1, values[row_b]) != manifest.row_tags[row_a]
    assert authenticator.row_tag(row_b, 1, values[row_a]) != manifest.row_tags[row_b]


@given(data=st.data())
def test_replayed_version_breaks_the_row_tag(data):
    value = data.draw(ONION_VALUES["ord"])
    version = data.draw(st.integers(min_value=1, max_value=100))
    stale_version = data.draw(st.integers(min_value=0, max_value=version - 1))
    authenticator = ColumnAuthenticator(KEY)
    assert authenticator.row_tag(0, version, value) != authenticator.row_tag(
        0, stale_version, value
    ), "tags must bind the snapshot version, or replays go unnoticed"


# --------------------------------------------------------------------------- #
# hash chains over the four measures' encrypted logs


def _encrypted_corpora() -> dict[str, list[str]]:
    """SQL texts of one small workload encrypted by each measure's scheme."""
    profile = webshop_profile(customer_rows=6, order_rows=8, product_rows=4)
    # SPJ only: the result-distance scheme rejects aggregate queries.
    log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=17).generate(8)
    keychain = KeyChain(MasterKey.from_passphrase("integrity-chains"))
    corpora: dict[str, list[str]] = {}
    result_scheme = ResultDpeScheme(
        keychain, paillier_bits=256, join_groups=profile.join_groups()
    )
    # The result scheme rewrites against the encrypted schema, so the
    # database must be encrypted before its log can be.
    result_scheme.proxy.encrypt_database(populate_database(profile, seed=17))
    for name, scheme in (
        ("token", TokenDpeScheme(keychain)),
        ("structure", StructureDpeScheme(keychain)),
        ("result", result_scheme),
        ("access-area", AccessAreaDpeScheme(keychain)),
    ):
        if isinstance(scheme, AccessAreaDpeScheme):
            scheme.fit(log, profile.domain_catalog())
        encrypted = scheme.encrypt_log(log)
        corpora[name] = [entry.sql for entry in encrypted]
    return corpora


CORPORA = _encrypted_corpora()


def checkpoint_at(entries: list[str], length: int):
    """The owner's signed checkpoint after ``length`` entries."""
    from repro.crypto.integrity import LogHashChain

    chain = LogHashChain()
    for sql in entries[:length]:
        chain.extend(sql)
    return sign_checkpoint(CHECKPOINT_KEY, chain.length, chain.head)


@pytest.mark.parametrize("measure", sorted(CORPORA))
@given(data=st.data())
def test_verify_chain_accepts_exactly_prefix_extensions(measure, data):
    entries = CORPORA[measure]
    committed = data.draw(st.integers(min_value=0, max_value=len(entries)))
    checkpoint = checkpoint_at(entries, committed)

    # Every honest extension of the committed prefix is accepted.
    extension = data.draw(st.integers(min_value=committed, max_value=len(entries)))
    verify_log_entries(entries[:extension], checkpoint, CHECKPOINT_KEY)

    # Any truncation below the checkpoint is a rollback.
    if committed > 0:
        truncated = data.draw(st.integers(min_value=0, max_value=committed - 1))
        with pytest.raises(IntegrityError):
            verify_log_entries(entries[:truncated], checkpoint, CHECKPOINT_KEY)


@pytest.mark.parametrize("measure", sorted(CORPORA))
@given(data=st.data())
def test_verify_chain_rejects_mutated_history(measure, data):
    entries = CORPORA[measure]
    committed = data.draw(st.integers(min_value=1, max_value=len(entries)))
    checkpoint = checkpoint_at(entries, committed)
    mutated_index = data.draw(st.integers(min_value=0, max_value=committed - 1))
    mutated = list(entries)
    mutated[mutated_index] = flip_bit(mutated[mutated_index])
    with pytest.raises(IntegrityError):
        verify_log_entries(mutated, checkpoint, CHECKPOINT_KEY)


@given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
def test_forged_checkpoint_is_rejected(length, other_length):
    entries = CORPORA["token"]
    honest = checkpoint_at(entries, length)
    forged_key = KeyChain(MasterKey.from_passphrase("not-the-owner")).key_for(
        "integrity", "checkpoint"
    )
    with pytest.raises(IntegrityError):
        verify_log_entries(entries, honest, forged_key)
    forged = sign_checkpoint(forged_key, honest.length, honest.head)
    with pytest.raises(IntegrityError):
        verify_log_entries(entries, forged, CHECKPOINT_KEY)
