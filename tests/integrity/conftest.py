"""Fault-injection fixtures for the integrity suite.

The suite proves the two contracts of the integrity layer on *both*
execution backends:

1. an honest provider pays nothing — authenticated runs are bit-for-bit
   equal to unauthenticated ones and never raise;
2. a tampering provider is always caught — every tamper class of
   :mod:`repro.attacks.tamper` (ciphertext bit flip, row swap, stale
   snapshot replay, log rollback) surfaces as
   :class:`~repro.api.TamperDetected`.

The central fixture is :func:`make_injector`: it builds a small
authenticated service over the webshop profile, opens a session on the
requested backend, and returns a :class:`FaultInjector` that can corrupt
the backend's stored tuples (any table/column/row, with sensible defaults)
or truncate a streamed log's suffix at a chosen point — uniformly for the
in-memory interpreter and the SQLite engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.api import (
    CryptoConfig,
    EncryptedMiningService,
    ServiceConfig,
    ServiceSession,
    StreamingQueryLog,
)
from repro.attacks import tamper
from repro.db.database import Database
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, webshop_profile

#: Both execution backends; every detection test runs on each.
BACKENDS = ("memory", "sqlite")

PROFILE = webshop_profile(customer_rows=8, order_rows=12, product_rows=5)


@pytest.fixture(scope="session")
def spj_queries() -> QueryLog:
    """A small deterministic SPJ workload over the webshop profile."""
    return QueryLogGenerator(PROFILE, WorkloadMix.spj_only(), seed=21).generate(10)


def build_service(
    *, authenticate: bool = True, auto_verify: bool = True, passphrase: str = "integrity"
) -> tuple[EncryptedMiningService, Database]:
    """A small service over the webshop profile, already encrypted."""
    service = EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(
                passphrase=passphrase,
                paillier_bits=256,
                shared_det_key=True,
                authenticate=authenticate,
                auto_verify=auto_verify,
            )
        ),
        join_groups=PROFILE.join_groups(),
    )
    encrypted = service.encrypt(populate_database(PROFILE, seed=2))
    return service, encrypted


@dataclass
class FaultInjector:
    """Corrupt one session's stored tuples or streamed log at a chosen point.

    Wraps an open authenticated session plus the encrypted database it
    serves, and applies the tamper primitives of :mod:`repro.attacks.tamper`
    against whatever engine actually holds the data.
    """

    service: EncryptedMiningService
    session: ServiceSession
    encrypted: Database
    backend: str
    register: object  # callable collecting extra sessions for teardown

    @property
    def provider(self):
        """The session's execution backend — the adversary's viewpoint."""
        return tamper.storage_backend(self.session)

    def target(self, suffix: str = "_ord") -> tuple[str, str]:
        """A default (encrypted table, physical column) tamper target."""
        table = sorted(self.encrypted.table_names)[0]
        column = next(
            name
            for name in self.encrypted.table(table).schema.column_names
            if name.endswith(suffix)
        )
        return table, column

    def flip(self, *, suffix: str = "_ord", row: int = 0) -> tamper.TamperResult:
        """Flip one ciphertext bit in the chosen onion column."""
        table, column = self.target(suffix)
        return tamper.flip_ciphertext(self.provider, table, column, row=row)

    def swap(self, *, row_a: int = 0, row_b: int = 1) -> tamper.TamperResult:
        """Swap two stored rows of the default target table."""
        table, _ = self.target()
        return tamper.swap_rows(self.provider, table, row_a=row_a, row_b=row_b)

    def replay(self) -> tuple[tamper.TamperResult, ServiceSession]:
        """Replay a stale snapshot after the owner re-encrypted the database.

        Captures the current stored table, lets the owner re-encrypt (the
        snapshot-version bump), opens a fresh session serving the new
        snapshot, and writes the stale rows back into *its* storage.
        Returns the tamper result and the fresh session the audit should
        now catch.
        """
        table, _ = self.target()
        stale = tamper.capture_rows(self.provider, table)
        self.service.encrypt(populate_database(PROFILE, seed=2))
        fresh = self.service.open_session(backend=self.backend, on_unsupported="skip")
        self.register(fresh)
        result = tamper.replay_rows(tamper.storage_backend(fresh), table, stale)
        return result, fresh

    def rollback(self, sink: StreamingQueryLog, *, drop: int = 3) -> tamper.TamperResult:
        """Truncate the streamed log's most recent ``drop`` entries."""
        return tamper.rollback_log(sink, max(0, sink.chain_length - drop))


@pytest.fixture
def service_builder():
    """The :func:`build_service` factory, as a fixture."""
    return build_service


@pytest.fixture
def make_injector():
    """Factory: an open :class:`FaultInjector` on the chosen backend."""
    open_sessions = []

    def build(
        backend: str, *, authenticate: bool = True, auto_verify: bool = True
    ) -> FaultInjector:
        service, encrypted = build_service(
            authenticate=authenticate, auto_verify=auto_verify
        )
        session = service.open_session(backend=backend, on_unsupported="skip")
        open_sessions.append(session)
        return FaultInjector(
            service=service,
            session=session,
            encrypted=encrypted,
            backend=backend,
            register=open_sessions.append,
        )

    yield build
    for session in open_sessions:
        session.close()
