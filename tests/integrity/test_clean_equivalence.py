"""Authentication is free for honest providers.

The integrity layer keeps every tag *detached* (owner-side manifests,
signed checkpoints) and never touches a stored ciphertext byte, so an
authenticated service must be observably identical to an unauthenticated
one built from the same passphrase: same deterministic ciphertexts on
disk, same decrypted results, zero alarms.  Raw HOM columns are the one
legitimate difference between two encryption runs (probabilistic Paillier
blinding), so the stored-bytes comparison excludes them and the result
comparison happens after decryption — the user-visible contract.
"""

from __future__ import annotations

import pytest

from repro.api import StreamingQueryLog

BACKENDS = ("memory", "sqlite")


def stored_non_hom_cells(encrypted):
    """Every stored cell outside the probabilistically blinded HOM columns."""
    cells = {}
    for name in encrypted.table_names:
        table = encrypted.table(name)
        for column in table.schema.column_names:
            if column.endswith("_hom"):
                continue
            cells[(name, column)] = tuple(table.column_values(column))
    return cells


def test_stored_ciphertexts_identical(service_builder):
    plain_service, plain_db = service_builder(authenticate=False)
    auth_service, auth_db = service_builder(authenticate=True)
    assert stored_non_hom_cells(plain_db) == stored_non_hom_cells(auth_db)


@pytest.mark.parametrize("backend", BACKENDS)
def test_decrypted_results_identical(service_builder, backend, spj_queries):
    plain_service, _ = service_builder(authenticate=False)
    auth_service, _ = service_builder(authenticate=True)
    plain_run = plain_service.run_workload(
        spj_queries, backend=backend, on_unsupported="skip"
    )
    auth_run = auth_service.run_workload(
        spj_queries, backend=backend, on_unsupported="skip"
    )
    assert len(plain_run.results) == len(auth_run.results) > 0
    plain_rows = [plain_service.decrypt(result) for result in plain_run.results]
    auth_rows = [auth_service.decrypt(result) for result in auth_run.results]
    assert plain_rows == auth_rows


@pytest.mark.parametrize("backend", BACKENDS)
def test_honest_run_raises_no_alarms(service_builder, backend, spj_queries):
    service, _ = service_builder(authenticate=True, auto_verify=True)
    with service.open_session(backend=backend, on_unsupported="skip") as session:
        session.run(spj_queries)  # lazy audit + decrypt-path checks, no raise
        assert session.verify_storage() > 0
        sink = StreamingQueryLog()
        session.stream(spj_queries.queries, into=sink)
        verified = session.verify_stream(sink)
        assert verified.length == sink.chain_length
    report = service.exposure_report()
    assert sum(entry.cells_verified for entry in report.columns) > 0
    assert all(entry.tamper_detected == 0 for entry in report.columns)
