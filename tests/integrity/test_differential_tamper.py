"""Differential tamper fuzzing: both backends agree, tampered or not.

The cross-backend differential oracle (PR 2) proves the interpreter and the
SQLite engine compute the same answers; this suite extends the oracle to
the integrity layer.  Under seeded random fault injection — a random
tamper class against a random table/column/row — the two backends must
fail *identically*: the same :class:`~repro.api.TamperDetected` error, at
the same check.  And on clean authenticated runs the oracle still finds
no deviation between the backends' encrypted results.
"""

from __future__ import annotations

import random

import pytest

from repro.api import TamperDetected
from repro.attacks import tamper
from repro.db.differential import result_difference


def random_fault(rng: random.Random, injector):
    """Apply one randomly chosen storage tamper; returns its description."""
    encrypted = injector.encrypted
    table = rng.choice(sorted(encrypted.table_names))
    columns = encrypted.table(table).schema.column_names
    n_rows = len(encrypted.table(table).rows)
    kind = rng.choice(["flip", "swap"])
    if kind == "flip":
        column = rng.choice(columns)
        row = rng.randrange(n_rows)
        tamper.flip_ciphertext(injector.provider, table, column, row=row)
        return f"flip {table}.{column} row {row}"
    row_a = rng.randrange(n_rows)
    row_b = (row_a + 1 + rng.randrange(n_rows - 1)) % n_rows
    result = tamper.swap_rows(
        injector.provider, table, row_a=min(row_a, row_b), row_b=max(row_a, row_b)
    )
    if result.cells_changed == 0:
        # Identical rows: fall back to a guaranteed-effective flip.
        tamper.flip_ciphertext(injector.provider, table, columns[0], row=row_a)
        return f"flip {table}.{columns[0]} row {row_a} (swap was a no-op)"
    return f"swap {table} rows {row_a} and {row_b}"


@pytest.mark.parametrize("seed", range(6))
def test_backends_raise_identically_under_random_faults(make_injector, seed):
    outcomes = {}
    for backend in ("memory", "sqlite"):
        injector = make_injector(backend, auto_verify=False)
        description = random_fault(random.Random(seed), injector)
        try:
            injector.session.verify_storage()
            outcomes[backend] = ("missed", description)
        except TamperDetected:
            outcomes[backend] = ("detected", description)
    assert outcomes["memory"] == outcomes["sqlite"]
    assert outcomes["memory"][0] == "detected", outcomes


@pytest.mark.parametrize("seed", range(3))
def test_backends_agree_on_clean_authenticated_runs(make_injector, spj_queries, seed):
    rng = random.Random(seed)
    queries = list(spj_queries.queries)
    rng.shuffle(queries)
    results = {}
    for backend in ("memory", "sqlite"):
        injector = make_injector(backend, auto_verify=True)
        run = injector.session.run(queries)
        assert len(run.results) == len(queries)
        results[backend] = [
            injector.service.decrypt(result) for result in run.results
        ]
    for query, reference, candidate in zip(
        queries, results["memory"], results["sqlite"]
    ):
        difference = result_difference(query, reference, candidate)
        assert difference is None, difference
