"""Fixtures for the fault-tolerance test suite.

Everything time-related runs on a fake clock/sleep — the suite must be
deterministic and sleep-free.  ``CHAOS_SEED`` (environment variable,
default 13) seeds every :class:`~repro.api.FaultInjector` built here; the
CI chaos job rotates it to replay the whole suite under different fault
schedules without code changes.
"""

from __future__ import annotations

import os

import pytest

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "13"))


class FakeClock:
    """A manually advanced monotonic clock doubling as a fake ``sleep``.

    Passing ``clock.sleep`` as a policy's sleep makes backoff advance the
    same clock deadlines read, so retry/deadline interplay is testable
    without a single real sleep.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward."""
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        """Record the sleep and advance the clock by it."""
        self.sleeps.append(seconds)
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    """A fresh fake clock starting at zero."""
    return FakeClock()


@pytest.fixture
def chaos_seed() -> int:
    """The suite-wide injector seed (rotated by the CI chaos job)."""
    return CHAOS_SEED
