"""Retry, deadline, and circuit-breaker policies on a fake clock.

Every test here is sleep-free: policies get the fixture clock's ``sleep``
and ``clock`` callables, so backoff, cooldowns and deadline expiry are
driven by explicit ``advance`` calls.  The jitter distribution properties
(bounded, decorrelated) are property-tested with hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api.errors import CircuitOpen, DeadlineExceeded
from repro.exceptions import InjectedFault, WorkerCrashed
from repro.reliability.policy import (
    CircuitBreaker,
    Deadline,
    ReliabilityStats,
    RetryPolicy,
    classify_transient,
)


class TestClassifyTransient:
    @pytest.mark.parametrize(
        "error",
        [
            InjectedFault("flaky"),
            TimeoutError("timed out"),
            ConnectionError("reset"),
            InterruptedError("signal"),
        ],
    )
    def test_transients_are_retryable(self, error):
        assert classify_transient(error) is True

    @pytest.mark.parametrize(
        "error",
        [WorkerCrashed("killed"), ValueError("bad input"), RuntimeError("boom")],
    )
    def test_permanent_errors_are_not(self, error):
        assert classify_transient(error) is False


class TestDeadline:
    def test_budget_elapsed_remaining(self, clock):
        deadline = Deadline(2.0, clock=clock)
        assert deadline.budget == 2.0
        clock.advance(0.5)
        assert deadline.elapsed() == pytest.approx(0.5)
        assert deadline.remaining() == pytest.approx(1.5)
        assert not deadline.expired
        deadline.check("still fine")  # no raise

    def test_check_raises_past_budget_with_context(self, clock):
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="mining phase") as excinfo:
            deadline.check("mining phase")
        assert excinfo.value.elapsed == pytest.approx(1.0)
        assert excinfo.value.budget == pytest.approx(1.0)

    def test_after_ms(self, clock):
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.budget == pytest.approx(0.25)
        clock.advance(0.2)
        assert not deadline.expired
        clock.advance(0.1)
        assert deadline.expired

    def test_remaining_never_negative(self, clock):
        deadline = Deadline(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0

    def test_negative_budget_rejected(self, clock):
        with pytest.raises(ValueError, match="budget"):
            Deadline(-1.0, clock=clock)


class TestRetryPolicy:
    def test_retries_transients_then_succeeds(self, clock):
        stats = ReliabilityStats()
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, max_delay=0.5, sleep=clock.sleep, seed=7
        )
        attempts = []

        def flaky():
            attempts.append(len(attempts) + 1)
            if len(attempts) < 3:
                raise InjectedFault("transient")
            return "done"

        assert policy.call(flaky, stats=stats) == "done"
        assert attempts == [1, 2, 3]
        assert len(clock.sleeps) == 2
        assert stats.snapshot()["retries"] == 2
        assert stats.snapshot()["gave_up"] == 0

    def test_permanent_error_is_not_retried(self, clock):
        policy = RetryPolicy(max_attempts=5, sleep=clock.sleep, seed=7)
        calls = []

        def crash():
            calls.append(1)
            raise WorkerCrashed("killed")

        with pytest.raises(WorkerCrashed):
            policy.call(crash)
        assert len(calls) == 1
        assert clock.sleeps == []

    def test_budget_exhaustion_raises_last_error_and_counts(self, clock):
        stats = ReliabilityStats()
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.02, sleep=clock.sleep, seed=7
        )
        calls = []

        def always_flaky():
            calls.append(len(calls) + 1)
            raise InjectedFault("flaky", site="s", call=len(calls))

        with pytest.raises(InjectedFault) as excinfo:
            policy.call(always_flaky, stats=stats)
        assert len(calls) == 3
        assert excinfo.value.call == 3  # the *last* attempt's error
        snapshot = stats.snapshot()
        assert snapshot["retries"] == 2
        assert snapshot["gave_up"] == 1

    def test_deadline_blocks_unfundable_backoff(self, clock):
        stats = ReliabilityStats()
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=1.0, sleep=clock.sleep, seed=7
        )
        deadline = Deadline(0.5, clock=clock)  # can never fund a 1s backoff
        with pytest.raises(DeadlineExceeded) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(InjectedFault("x")), deadline=deadline, stats=stats)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert stats.snapshot()["deadline_exceeded"] == 1
        assert clock.sleeps == []  # never slept past the budget

    def test_expired_deadline_checked_before_each_attempt(self, clock):
        policy = RetryPolicy(max_attempts=3, sleep=clock.sleep, seed=7)
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        calls = []
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: calls.append(1), deadline=deadline)
        assert calls == []  # the work never even started

    def test_delays_are_bounded(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.05, max_delay=0.3, sleep=lambda _: None, seed=11
        )
        delays = list(policy.delays())
        assert len(delays) == 7
        for delay in delays:
            assert 0.05 <= delay <= 0.3

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        base=st.floats(min_value=0.001, max_value=1.0),
        factor=st.floats(min_value=1.0, max_value=50.0),
        attempts=st.integers(min_value=2, max_value=12),
    )
    def test_decorrelated_jitter_properties(self, seed, base, factor, attempts):
        """Every delay lies in [base, max]; each step honours the recipe.

        The decorrelated-jitter invariant: the n-th delay is drawn from
        ``[base, max(previous, base) * 3]`` then capped, so no delay may
        exceed ``min(max_delay, max(previous, base) * 3)``.
        """
        maximum = base * factor
        policy = RetryPolicy(
            max_attempts=attempts,
            base_delay=base,
            max_delay=maximum,
            sleep=lambda _: None,
            seed=seed,
        )
        previous = None
        for delay in policy.delays():
            assert base <= delay <= maximum
            anchor = base if previous is None else max(previous, base)
            assert delay <= min(maximum, anchor * 3) + 1e-12
            previous = delay

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_jitter_is_seed_deterministic(self, seed):
        def delays(s):
            policy = RetryPolicy(
                max_attempts=6, base_delay=0.01, max_delay=1.0,
                sleep=lambda _: None, seed=s,
            )
            return list(policy.delays())

        assert delays(seed) == delays(seed)


class TestCircuitBreaker:
    def build(self, clock, **overrides):
        options = dict(
            failure_rate_threshold=0.5,
            min_calls=3,
            window=6,
            cooldown_seconds=10.0,
            clock=clock,
            tenant="acme",
        )
        options.update(overrides)
        return CircuitBreaker(**options)

    def test_stays_closed_below_min_calls(self, clock):
        breaker = self.build(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.allow()  # still admitting

    def test_opens_at_failure_rate_and_rejects(self, clock):
        breaker = self.build(clock)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()  # 2/3 failures >= 0.5
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.tenant == "acme"
        assert excinfo.value.retry_after == pytest.approx(10.0)

    def test_cooldown_leads_to_single_half_open_probe(self, clock):
        breaker = self.build(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        breaker.allow()  # the probe is admitted
        with pytest.raises(CircuitOpen):
            breaker.allow()  # concurrent caller rejected while probe runs

    def test_probe_success_closes_and_clears_window(self, clock):
        breaker = self.build(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        # The window was cleared: it takes min_calls fresh failures to
        # re-open, not one (old outcomes must not linger).
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_probe_failure_reopens_for_a_fresh_cooldown(self, clock):
        breaker = self.build(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(10.0)  # re-stamped
        clock.advance(10.0)
        assert breaker.state == "half_open"

    def test_validation(self, clock):
        with pytest.raises(ValueError, match="failure_rate_threshold"):
            self.build(clock, failure_rate_threshold=0.0)
        with pytest.raises(ValueError, match="min_calls"):
            self.build(clock, min_calls=0)
        with pytest.raises(ValueError, match="window"):
            self.build(clock, window=2)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            self.build(clock, cooldown_seconds=-1.0)


class TestReliabilityStats:
    def test_counters_and_snapshot(self):
        stats = ReliabilityStats()
        stats.count_retry()
        stats.count_retry()
        stats.count_gave_up()
        stats.count_deadline_exceeded()
        stats.count_recovery()
        assert stats.snapshot() == {
            "retries": 2,
            "gave_up": 1,
            "deadline_exceeded": 1,
            "recoveries": 1,
        }
