"""End-to-end fault tolerance through the public façade and the server.

Chaos backends registered by a seeded :class:`~repro.api.FaultInjector`
route real encrypted workloads through injected faults; the assertions are
the layer's contracts: retried work completes bit-for-bit, expired
deadlines surface as :class:`~repro.api.DeadlineExceeded` (and are
counted), tripped breakers reject at admission with
:class:`~repro.api.CircuitOpen`, overload carries the queue depth and
tenant, and journaled streams recover exactly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import (
    BackendConfig,
    CircuitOpen,
    ConfigError,
    CryptoConfig,
    Deadline,
    DeadlineExceeded,
    EncryptedMiningService,
    FaultInjector,
    MiningServer,
    ReliabilityConfig,
    ServerConfig,
    ServerOverloaded,
    ServiceConfig,
    ServiceError,
    StreamJournal,
    WorkloadConfig,
)
from repro.server import AdmissionQueue


def chaos_service(
    injector: FaultInjector,
    name: str,
    *,
    reliability: ReliabilityConfig | None = None,
    backend: str | None = None,
) -> EncryptedMiningService:
    """A small encrypted service routed through ``injector``'s chaos backend."""
    backend_name = backend or injector.register_chaos_backend(name, inner="sqlite")
    service = EncryptedMiningService(
        ServiceConfig(
            crypto=CryptoConfig(passphrase="reliability-e2e", paillier_bits=256),
            backend=BackendConfig(name=backend_name, on_unsupported="skip"),
            workload=WorkloadConfig(size=6, seed=3),
            reliability=reliability or ReliabilityConfig(),
        )
    )
    service.encrypt(service.build_database())
    return service


class TestSessionRetries:
    def test_retries_absorb_faults_bit_for_bit(self):
        """Two scripted transients; the served rows equal a fault-free run."""
        injector = FaultInjector(0)
        retrying = chaos_service(
            injector,
            "chaos-e2e-retry",
            reliability=ReliabilityConfig(
                max_retries=3, backoff_base=0.001, backoff_max=0.002
            ),
        )
        injector.script("chaos-e2e-retry.backend.execute", at_call=2)
        injector.script("chaos-e2e-retry.backend.execute", at_call=4)
        workload = retrying.generate_workload()

        reference = chaos_service(FaultInjector(0), "x", backend="sqlite")
        expected = [
            reference.decrypt(r).rows
            for r in reference.run_workload(workload).results
        ]
        served = [
            retrying.decrypt(r).rows
            for r in retrying.run_workload(workload).results
        ]
        assert served == expected
        snapshot = retrying.reliability_stats.snapshot()
        assert snapshot["retries"] == 2
        assert snapshot["gave_up"] == 0

    def test_retry_budget_exhaustion_surfaces_and_counts(self):
        injector = FaultInjector(0)
        service = chaos_service(
            injector,
            "chaos-e2e-exhaust",
            reliability=ReliabilityConfig(
                max_retries=1, backoff_base=0.001, backoff_max=0.002
            ),
        )
        for call in (1, 2, 3):  # outlasts the 2-attempt budget
            injector.script("chaos-e2e-exhaust.backend.execute", at_call=call)
        with pytest.raises(ServiceError, match="transient fault"):
            service.run_workload(service.generate_workload())
        snapshot = service.reliability_stats.snapshot()
        assert snapshot["gave_up"] == 1
        assert snapshot["retries"] == 1

    def test_no_retry_wrapper_when_disabled(self):
        injector = FaultInjector(0)
        service = chaos_service(injector, "chaos-e2e-noretry")  # max_retries=0
        injector.script("chaos-e2e-noretry.backend.execute", at_call=1)
        with pytest.raises(ServiceError, match="transient fault"):
            service.run_workload(service.generate_workload())
        assert service.reliability_stats.snapshot()["retries"] == 0


class TestSessionDeadline:
    def test_expired_deadline_raises_and_counts(self, clock):
        service = chaos_service(FaultInjector(0), "x", backend="sqlite")
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with service.open_session() as session:
            with pytest.raises(DeadlineExceeded):
                session.run(service.generate_workload(), deadline=deadline)
        assert service.reliability_stats.snapshot()["deadline_exceeded"] == 1

    def test_config_default_deadline_applies_to_every_run(self):
        service = chaos_service(
            FaultInjector(0),
            "x",
            backend="sqlite",
            reliability=ReliabilityConfig(deadline_ms=1),
        )
        with service.open_session() as session:
            with pytest.raises(DeadlineExceeded):
                session.run(service.generate_workload(size=40))
        assert service.reliability_stats.snapshot()["deadline_exceeded"] >= 1

    def test_stream_deadline_never_half_publishes(self, clock):
        """An expired stream call leaves the sink without a partial batch."""
        from repro.mining.incremental import StreamingQueryLog

        service = chaos_service(FaultInjector(0), "x", backend="sqlite")
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        sink = StreamingQueryLog()
        with service.open_session() as session:
            with pytest.raises(DeadlineExceeded):
                session.stream(
                    service.generate_workload(), into=sink, deadline=deadline
                )
        assert len(sink) == 0


def breaker_server(**reliability):
    options = dict(
        breaker_enabled=True,
        breaker_failure_rate=0.5,
        breaker_min_calls=2,
        breaker_window=4,
        breaker_cooldown_seconds=3600.0,
    )
    options.update(reliability)
    return MiningServer(
        ServerConfig(workers=2, max_pending=8, reliability=options)
    )


def tenant_config(name: str) -> ServiceConfig:
    return ServiceConfig(
        crypto=CryptoConfig(passphrase=name, paillier_bits=256),
        backend=BackendConfig(name="sqlite"),
        workload=WorkloadConfig(size=4, seed=1),
    )


class TestServerBreaker:
    def test_breaker_trips_and_rejects_at_admission(self):
        with breaker_server() as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            for _ in range(2):
                future = server.submit("acme", ["THIS IS NOT SQL ;;;"])
                with pytest.raises(Exception):
                    future.result(timeout=30.0)
            assert handle.breaker_state == "open"
            with pytest.raises(CircuitOpen) as excinfo:
                server.submit("acme", ["SELECT name FROM customer"])
            assert excinfo.value.tenant == "acme"
            assert excinfo.value.retry_after == pytest.approx(3600.0, abs=5.0)
            stats = server.stats().for_tenant("acme")
            assert stats.reliability["breaker_state"] == "open"

    def test_breaker_is_per_tenant(self):
        with breaker_server() as server:
            server.add_tenant("noisy", tenant_config("noisy"))
            healthy = server.add_tenant("healthy", tenant_config("healthy"))
            for _ in range(2):
                with pytest.raises(Exception):
                    server.submit("noisy", ["NOT SQL ;;;"]).result(timeout=30.0)
            with pytest.raises(CircuitOpen):
                server.submit("noisy", ["SELECT name FROM customer"])
            workload = healthy.service.generate_workload()
            assert server.run_workload("healthy", workload) is not None

    def test_half_open_probe_success_closes_the_breaker(self):
        # cooldown 0: the breaker goes half-open immediately, so the next
        # admission is the probe — no real sleeping in the test.
        with breaker_server(breaker_cooldown_seconds=0.0) as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            for _ in range(2):
                with pytest.raises(Exception):
                    server.submit("acme", ["NOT SQL ;;;"]).result(timeout=30.0)
            assert handle.breaker_state == "half_open"
            workload = handle.service.generate_workload()
            server.run_workload("acme", workload)  # the probe, successful
            assert handle.breaker_state == "closed"
            server.run_workload("acme", workload)  # normal service resumed

    def test_breaker_disabled_reports_disabled_state(self):
        with MiningServer(ServerConfig(workers=1)) as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            assert handle.breaker_state == "disabled"
            stats = server.stats().for_tenant("acme")
            assert stats.reliability["breaker_state"] == "disabled"


class TestServerDeadline:
    def test_config_deadline_cancels_admitted_work(self):
        reliability = dict(deadline_ms=1)
        with MiningServer(ServerConfig(workers=1, reliability=reliability)) as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            workload = handle.service.generate_workload(size=40)
            with pytest.raises(DeadlineExceeded):
                server.submit("acme", workload).result(timeout=30.0)
            stats = server.stats().for_tenant("acme")
            assert stats.reliability["deadline_exceeded"] >= 1

    def test_explicit_deadline_beats_the_config_default(self, clock):
        expired = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with MiningServer(ServerConfig(workers=1)) as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            workload = handle.service.generate_workload()
            with pytest.raises(DeadlineExceeded):
                server.submit("acme", workload, deadline=expired).result(timeout=30.0)

    def test_mine_checks_the_deadline_up_front(self, clock):
        expired = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with MiningServer(ServerConfig(workers=1)) as server:
            handle = server.add_tenant("acme", tenant_config("acme"))
            workload = handle.service.generate_workload()
            with pytest.raises(DeadlineExceeded):
                server.mine("acme", workload, deadline=expired).result(timeout=30.0)
            stats = server.stats().for_tenant("acme")
            assert stats.reliability["deadline_exceeded"] >= 1


class BlockingSink:
    """A stream sink that parks the worker until the test releases it."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.batches: list[list[object]] = []

    def append(self, batch) -> None:
        """Record the batch once the test allows the worker to proceed."""
        assert self.release.wait(timeout=30.0), "test never released the sink"
        self.batches.append(list(batch))


def park_worker(server, handle, workload):
    """Occupy the single worker on a blocked stream; return (future, sink)."""
    sink = BlockingSink()
    parked = server.stream(handle.name if hasattr(handle, "name") else "solo", workload, into=sink)
    deadline = time.perf_counter() + 30.0
    while not parked.running() and time.perf_counter() < deadline:
        time.sleep(0.005)
    assert parked.running(), "worker never picked up the parked stream"
    return parked, sink


class TestOverloadPayload:
    def test_rejection_carries_depth_and_tenant(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1)
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(2, wait=False, tenant="acme")
        assert excinfo.value.queue_depth == 1
        assert excinfo.value.tenant == "acme"
        assert "acme" in str(excinfo.value)

    def test_timed_out_rejection_names_the_wait(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1)
        with pytest.raises(ServerOverloaded, match="stayed full for 0.01s") as excinfo:
            queue.submit(2, wait=True, timeout=0.01, tenant="acme")
        assert excinfo.value.queue_depth == 1
        assert excinfo.value.tenant == "acme"

    def test_anonymous_rejection_has_no_tenant(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1, wait=False)
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(2, wait=False)
        assert excinfo.value.tenant is None
        assert excinfo.value.queue_depth == 1

    def test_server_rejection_names_the_submitting_tenant(self):
        with MiningServer(ServerConfig(workers=1, max_pending=1)) as server:
            handle = server.add_tenant("solo", tenant_config("solo"))
            workload = handle.service.generate_workload()
            parked, sink = park_worker(server, handle, workload)
            queued = server.submit("solo", workload, wait=False)
            with pytest.raises(ServerOverloaded) as excinfo:
                server.submit("solo", workload, wait=False)
            assert excinfo.value.tenant == "solo"
            assert excinfo.value.queue_depth == 1
            sink.release.set()
            assert parked.result(timeout=30.0) is not None
            assert queued.result(timeout=30.0) is not None


class TestTimeoutDuringClose:
    def test_blocked_submit_times_out_while_the_server_closes(self):
        """A submit waiting on a full queue must not deadlock a closing server.

        The blocked submit holds no server lock, so close() proceeds; the
        submitter gets its timeout rejection while the shutdown is still
        joining the parked worker, and the close completes normally after.
        """
        server = MiningServer(ServerConfig(workers=1, max_pending=1))
        handle = server.add_tenant("solo", tenant_config("solo"))
        workload = handle.service.generate_workload()
        parked, sink = park_worker(server, handle, workload)
        queued = server.submit("solo", workload)  # fills the single slot

        outcome: dict[str, object] = {}

        def blocked_submit():
            try:
                server.submit("solo", workload, timeout=0.3, wait=True)
                outcome["result"] = "admitted"
            except ServerOverloaded as error:
                outcome["result"] = "rejected"
                outcome["tenant"] = error.tenant

        submitter = threading.Thread(target=blocked_submit)
        submitter.start()
        closer = threading.Thread(target=server.close)
        closer.start()

        submitter.join(timeout=30.0)
        assert not submitter.is_alive(), "blocked submit never returned"
        assert outcome["result"] == "rejected"  # timed out during the close
        assert outcome["tenant"] == "solo"

        sink.release.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive(), "close never finished"
        assert queued.cancelled()
        with pytest.raises(Exception, match="closed"):
            server.submit("solo", workload)

    def test_closed_server_rejects_before_touching_the_queue(self):
        server = MiningServer(ServerConfig(workers=1, max_pending=1))
        server.add_tenant("solo", tenant_config("solo"))
        server.close()
        with pytest.raises(Exception, match="closed"):
            server.submit("solo", ["SELECT name FROM customer"])
        assert server.stats().queue.rejected == 0


class TestJournaledService:
    def test_journaled_miner_recovers_bit_for_bit(self, tmp_path):
        journal_path = str(tmp_path / "service.journal")
        service = chaos_service(FaultInjector(0), "x", backend="sqlite")
        workload = service.generate_workload(size=8)
        batches = [workload.queries[i : i + 2] for i in range(0, 8, 2)]

        matrix, journal = service.journaled_miner(path=journal_path)
        with service.open_session() as session:
            for batch in batches[:3]:  # the crash happens before batch 4
                session.stream(batch, into=matrix)
        journal.close()

        recovered, report = service.recover_miner(path=journal_path)
        assert report.batches_replayed >= 1
        assert recovered.stream.chain_head == matrix.stream.chain_head
        assert recovered.n_items == matrix.n_items
        assert service.reliability_stats.snapshot()["recoveries"] == 1

        # Resume: re-attach a journal and stream the final batch.
        resumed = StreamJournal(journal_path)
        resumed.attach(recovered.stream)
        with service.open_session() as session:
            session.stream(batches[3], into=recovered)
        resumed.close()
        assert recovered.n_items == 8

    def test_journal_path_defaults_to_the_config(self, tmp_path):
        journal_path = str(tmp_path / "configured.journal")
        service = chaos_service(
            FaultInjector(0),
            "x",
            backend="sqlite",
            reliability=ReliabilityConfig(journal_path=journal_path, snapshot_every=2),
        )
        matrix, journal = service.journaled_miner()
        assert journal.path == StreamJournal(journal_path).path
        assert journal.snapshot_every == 2
        journal.close()

    def test_journaled_miner_without_any_path_is_a_config_error(self):
        service = chaos_service(FaultInjector(0), "x", backend="sqlite")
        with pytest.raises(ConfigError, match="journal"):
            service.journaled_miner()
