"""Crash-safe streaming: journal durability, verification, and recovery.

The core claim under test: :func:`recover_matrix` rebuilds incremental
mining state *bit-for-bit* equal to what an uninterrupted run over the
journaled prefix would hold — and every reload refolds the PR 8 hash chain,
so a corrupted, truncated, or mis-paired journal is rejected instead of
silently recovered into wrong artefacts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.measures import TokenDistance
from repro.exceptions import IntegrityError, JournalError
from repro.mining.incremental import IncrementalDistanceMatrix, StreamingQueryLog
from repro.reliability.journal import (
    RecoveryReport,
    StreamJournal,
    read_journal,
    recover_matrix,
    snapshot_path_for,
)
from repro.reliability.policy import ReliabilityStats

#: Mining parameters shared by the journaled run and the recovery.
PARAMETERS = dict(knn_k=3, outlier_p=0.85, outlier_d=0.88, dbscan_eps=0.6, dbscan_min_points=3)

#: Four batches of three distinct queries each.
BATCHES = [
    [f"SELECT name FROM users WHERE age > {10 * batch + item}" for item in range(3)]
    for batch in range(4)
]


def journaled_run(path, batches, **journal_options):
    """Stream ``batches`` through a journaled incremental matrix."""
    stream = StreamingQueryLog()
    matrix = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
    journal = StreamJournal(path, **journal_options)
    journal.attach(stream)
    for batch in batches:
        stream.append(batch)
    return stream, matrix, journal


def uninterrupted_run(batches):
    """The fault-free reference: same batches, no journal, no crash."""
    stream = StreamingQueryLog()
    matrix = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
    for batch in batches:
        stream.append(batch)
    return stream, matrix


def assert_bit_for_bit(recovered, reference):
    """Every mining artefact of ``recovered`` equals the reference's."""
    assert recovered.n_items == reference.n_items
    assert np.array_equal(recovered.square(), reference.square())
    assert recovered.stream.chain_head == reference.stream.chain_head
    assert recovered.dbscan().labels == reference.dbscan().labels
    assert recovered.outliers() == reference.outliers()
    for i in range(recovered.n_items):
        assert recovered.knn(i) == reference.knn(i)


class TestJournalRecording:
    def test_counts_batches_and_entries(self, tmp_path):
        _, _, journal = journaled_run(tmp_path / "stream.journal", BATCHES)
        assert journal.batches_recorded == 4
        assert journal.entries_recorded == 12
        journal.close()

    def test_attach_catches_up_on_existing_entries(self, tmp_path):
        stream = StreamingQueryLog()
        stream.append(BATCHES[0])
        journal = StreamJournal(tmp_path / "stream.journal")
        journal.attach(stream)  # the pre-existing batch becomes a catch-up record
        assert journal.entries_recorded == 3
        stream.append(BATCHES[1])
        assert journal.entries_recorded == 6
        journal.close()

    def test_record_after_close_raises(self, tmp_path):
        _, _, journal = journaled_run(tmp_path / "stream.journal", BATCHES[:1])
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError, match="closed"):
            journal.record(["SELECT name FROM users WHERE age > 99"], "head")

    def test_negative_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="snapshot_every"):
            StreamJournal(tmp_path / "stream.journal", snapshot_every=-1)

    def test_attach_rejects_a_foreign_stream(self, tmp_path):
        _, _, journal = journaled_run(tmp_path / "stream.journal", BATCHES[:2])
        journal.close()
        resumed = StreamJournal(tmp_path / "stream.journal")
        other = StreamingQueryLog()
        other.append(["SELECT city FROM users WHERE age < 18"])
        with pytest.raises(JournalError, match="not a prefix"):
            resumed.attach(other)
        resumed.close()


class TestRecovery:
    def test_recovery_is_bit_for_bit(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES)
        journal.close()  # the "crash": the process is gone, the file remains

        _, reference = uninterrupted_run(BATCHES)
        recovered, report = recover_matrix(path, TokenDistance(), **PARAMETERS)

        assert_bit_for_bit(recovered, reference)
        assert report.batches_replayed == 4
        assert report.entries_replayed == 12
        assert report.chain_head == reference.stream.chain_head
        assert report.torn_tail_dropped is False
        assert report.snapshot_used is False
        assert report.checkpoint_verified is False

    def test_reattach_resumes_journaling(self, tmp_path):
        """Recover, re-attach, stream more: the journal keeps the full tail."""
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:2])
        journal.close()

        recovered, _ = recover_matrix(path, TokenDistance(), **PARAMETERS)
        resumed = StreamJournal(path)
        resumed.attach(recovered.stream)
        for batch in BATCHES[2:]:
            recovered.stream.append(batch)
        resumed.close()

        _, reference = uninterrupted_run(BATCHES)
        final, report = recover_matrix(path, TokenDistance(), **PARAMETERS)
        assert_bit_for_bit(final, reference)
        assert report.entries_replayed == 12

    def test_recovery_counts_into_reliability_stats(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:1])
        journal.close()
        stats = ReliabilityStats()
        recover_matrix(path, TokenDistance(), stats=stats, **PARAMETERS)
        assert stats.snapshot()["recoveries"] == 1

    def test_empty_journal_recovers_to_empty_state(self, tmp_path):
        matrix, report = recover_matrix(
            tmp_path / "missing.journal", TokenDistance(), **PARAMETERS
        )
        assert matrix.n_items == 0
        assert report.batches_replayed == 0

    def test_report_to_dict_round_trips(self):
        report = RecoveryReport(
            batches_replayed=2,
            entries_replayed=6,
            chain_head="abc",
            torn_tail_dropped=True,
            snapshot_used=False,
            checkpoint_verified=True,
        )
        assert report.to_dict() == {
            "batches_replayed": 2,
            "entries_replayed": 6,
            "chain_head": "abc",
            "torn_tail_dropped": True,
            "snapshot_used": False,
            "checkpoint_verified": True,
        }


class TestCrashSemantics:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:3])
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"batch":4,"entries":["SELECT na')  # crash mid-write

        state = read_journal(path)
        assert state.torn_tail_dropped is True
        assert state.batches_recorded == 3

        _, reference = uninterrupted_run(BATCHES[:3])
        recovered, report = recover_matrix(path, TokenDistance(), **PARAMETERS)
        assert report.torn_tail_dropped is True
        assert_bit_for_bit(recovered, reference)

    def test_complete_but_unparsable_final_line_is_also_torn(self, tmp_path):
        """The newline landed but the payload did not — same crash, same tolerance."""
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:2])
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        state = read_journal(path)
        assert state.torn_tail_dropped is True
        assert state.batches_recorded == 2

    def test_corrupt_middle_line_is_disk_corruption_not_a_crash(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:3])
        journal.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="line 2 is corrupt"):
            read_journal(path)

    def test_batch_gap_is_rejected(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:3])
        journal.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        del lines[1]  # drop batch 2: 1 -> 3 skips
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="skips from batch 1 to 3"):
            read_journal(path)

    def test_tampered_entry_fails_hash_chain_verification(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES[:3])
        journal.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[0])
        record["entries"][0] = "SELECT secret FROM vault WHERE id = 1"
        lines[0] = json.dumps(record, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="hash-chain verification"):
            read_journal(path)


class TestSnapshots:
    def test_snapshot_bounds_replay_but_not_the_state(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES, snapshot_every=2)
        journal.close()
        assert snapshot_path_for(path).exists()

        _, reference = uninterrupted_run(BATCHES)
        recovered, report = recover_matrix(path, TokenDistance(), **PARAMETERS)
        assert report.snapshot_used is True
        # The snapshot coalesces its prefix into one catch-up batch: fewer
        # batches replayed, identical entries and artefacts.
        assert report.batches_replayed < 4
        assert report.entries_replayed == 12
        assert_bit_for_bit(recovered, reference)

    def test_corrupt_snapshot_is_rejected(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES, snapshot_every=2)
        journal.close()
        snapshot_path_for(path).write_text("{broken", encoding="utf-8")
        with pytest.raises(JournalError, match="snapshot .* is corrupt"):
            read_journal(path)

    def test_forged_snapshot_fails_hash_chain_verification(self, tmp_path):
        path = tmp_path / "stream.journal"
        _, _, journal = journaled_run(path, BATCHES, snapshot_every=2)
        journal.close()
        snapshot = snapshot_path_for(path)
        payload = json.loads(snapshot.read_text(encoding="utf-8"))
        payload["entries"][0] = "SELECT secret FROM vault WHERE id = 1"
        snapshot.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(JournalError, match="hash-chain verification"):
            read_journal(path)


class TestCheckpointPinning:
    KEY = b"owner-checkpoint-key"

    def test_owner_checkpoint_verifies_the_journal_prefix(self, tmp_path):
        path = tmp_path / "stream.journal"
        stream, _, journal = journaled_run(path, BATCHES)
        checkpoint = stream.checkpoint(self.KEY)
        journal.close()
        _, report = recover_matrix(
            path, TokenDistance(), checkpoint=checkpoint, key=self.KEY, **PARAMETERS
        )
        assert report.checkpoint_verified is True

    def test_checkpoint_without_key_is_rejected(self, tmp_path):
        path = tmp_path / "stream.journal"
        stream, _, journal = journaled_run(path, BATCHES[:1])
        checkpoint = stream.checkpoint(self.KEY)
        journal.close()
        with pytest.raises(JournalError, match="signing key"):
            recover_matrix(path, TokenDistance(), checkpoint=checkpoint, **PARAMETERS)

    def test_rolled_back_journal_is_caught_by_the_checkpoint(self, tmp_path):
        """The hash chain alone cannot catch truncation; the checkpoint can.

        A provider that hands back a *shorter* but internally consistent
        journal passes the chain refold — rollback detection needs the
        owner-signed checkpoint, exactly as in the PR 8 tamper model.
        """
        path = tmp_path / "stream.journal"
        stream, _, journal = journaled_run(path, BATCHES)
        checkpoint = stream.checkpoint(self.KEY)  # signed at 12 entries
        journal.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[:2]) + "\n", encoding="utf-8")  # roll back

        recovered, _ = recover_matrix(path, TokenDistance(), **PARAMETERS)
        assert recovered.n_items == 6  # the chain refold alone accepts it...
        with pytest.raises(IntegrityError):  # ...the checkpoint does not
            recover_matrix(
                path, TokenDistance(), checkpoint=checkpoint, key=self.KEY, **PARAMETERS
            )
