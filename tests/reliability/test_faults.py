"""The seeded fault injector: determinism, scripting, wrappers.

The injector's contract is that a single seed reproduces the whole fault
schedule, per site, regardless of what other sites do — that is what lets
tests, benchmarks and the R1 experiment share one chaos configuration.
"""

from __future__ import annotations

import pytest

from repro.db.backend import available_backends, create_backend
from repro.db.database import Database
from repro.exceptions import InjectedFault, WorkerCrashed
from repro.reliability.faults import FaultInjector, FaultyBackend
from repro.reliability.policy import classify_transient


def schedule(injector: FaultInjector, site: str, calls: int) -> list[bool]:
    """Fire ``site`` ``calls`` times; True where a fault was injected."""
    fired = []
    for _ in range(calls):
        try:
            injector.fire(site)
            fired.append(False)
        except InjectedFault:
            fired.append(True)
    return fired


class TestDeterminism:
    def test_same_seed_same_schedule(self, chaos_seed):
        first = FaultInjector(chaos_seed, transient_rate=0.3)
        second = FaultInjector(chaos_seed, transient_rate=0.3)
        assert schedule(first, "backend.execute", 50) == schedule(
            second, "backend.execute", 50
        )

    def test_sites_are_independent(self, chaos_seed):
        """A site's schedule is a pure function of its own call order.

        Interleaving calls to another site must not perturb it — that is
        what makes multi-threaded chaos runs reproducible per site.
        """
        alone = FaultInjector(chaos_seed, transient_rate=0.3)
        interleaved = FaultInjector(chaos_seed, transient_rate=0.3)
        reference = schedule(alone, "a", 30)
        observed = []
        for _ in range(30):
            schedule(interleaved, "b", 3)  # noise on another site
            observed.extend(schedule(interleaved, "a", 1))
        assert observed == reference

    def test_different_seeds_differ(self):
        # Statistically certain over 200 draws at 30%.
        a = schedule(FaultInjector(1, transient_rate=0.3), "s", 200)
        b = schedule(FaultInjector(2, transient_rate=0.3), "s", 200)
        assert a != b

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="transient_rate"):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(ValueError, match="latency_rate"):
            FaultInjector(latency_rate=-0.1)
        with pytest.raises(ValueError, match="latency_seconds"):
            FaultInjector(latency_seconds=-1)


class TestScripting:
    def test_scripted_fault_fires_once_at_call(self):
        injector = FaultInjector(0)  # no random faults
        injector.script("site", at_call=3)
        injector.fire("site")
        injector.fire("site")
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("site")
        assert excinfo.value.site == "site"
        assert excinfo.value.call == 3
        assert classify_transient(excinfo.value)
        injector.fire("site")  # fired once, gone

    def test_script_crash_is_permanent(self):
        injector = FaultInjector(0)
        injector.script_crash("worker", at_call=1)
        with pytest.raises(WorkerCrashed) as excinfo:
            injector.fire("worker")
        assert not classify_transient(excinfo.value)
        assert excinfo.value.call == 1

    def test_script_accepts_custom_error_factory(self):
        injector = FaultInjector(0)
        injector.script("site", at_call=1, error=lambda: OSError("disk gone"))
        with pytest.raises(OSError, match="disk gone"):
            injector.fire("site")

    def test_at_call_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultInjector(0).script("site", at_call=0)

    def test_scripted_only_suppresses_random_draws(self):
        injector = FaultInjector(0, transient_rate=1.0)  # would always fault
        injector.script("sink.append", at_call=2)
        injector.fire("sink.append", scripted_only=True)  # rate ignored
        with pytest.raises(InjectedFault):
            injector.fire("sink.append", scripted_only=True)  # script still fires
        injector.fire("sink.append", scripted_only=True)

    def test_latency_injection_uses_injected_sleep(self):
        sleeps = []
        injector = FaultInjector(
            0, latency_rate=1.0, latency_seconds=0.25, sleep=sleeps.append
        )
        injector.fire("slow")
        assert sleeps == [0.25]
        assert injector.stats()["slow"]["delayed"] == 1


class TestCounters:
    def test_stats_per_site(self):
        injector = FaultInjector(0)
        injector.script("a", at_call=1)
        with pytest.raises(InjectedFault):
            injector.fire("a")
        injector.fire("a")
        injector.fire("b")
        stats = injector.stats()
        assert stats["a"] == {"calls": 2, "injected": 1, "delayed": 0}
        assert stats["b"] == {"calls": 1, "injected": 0, "delayed": 0}
        assert injector.calls("a") == 2
        assert injector.calls("unseen") == 0


class RecordingBackend:
    """A stub ExecutionBackend recording which calls reached it."""

    name = "recording"

    def __init__(self) -> None:
        self.executed: list[object] = []
        self.closed = False

    def execute(self, query):
        self.executed.append(query)
        return "row"

    def execute_many(self, queries):
        self.executed.extend(queries)
        return ["row"] * len(list(queries))

    def close(self) -> None:
        self.closed = True


class TestBackendWrapper:
    def test_fault_fires_before_the_work(self):
        """A faulted call must do NO work — that is what makes retries safe."""
        inner = RecordingBackend()
        injector = FaultInjector(0)
        injector.script("db.execute", at_call=1)
        wrapped = injector.wrap_backend(inner, site="db")
        with pytest.raises(InjectedFault):
            wrapped.execute("q1")
        assert inner.executed == []  # nothing reached the backend
        assert wrapped.execute("q1") == "row"
        assert inner.executed == ["q1"]

    def test_close_is_never_faulted(self):
        inner = RecordingBackend()
        injector = FaultInjector(0, transient_rate=1.0)
        wrapped = injector.wrap_backend(inner, site="db")
        wrapped.close()
        assert inner.closed

    def test_attribute_passthrough(self):
        inner = RecordingBackend()
        wrapped = FaultInjector(0).wrap_backend(inner)
        assert wrapped.name == "recording"
        assert wrapped.executed is inner.executed

    def test_register_chaos_backend_routes_the_registry(self, chaos_seed):
        injector = FaultInjector(chaos_seed)
        name = injector.register_chaos_backend("chaos-test-memory", inner="memory")
        assert name in available_backends()
        backend = create_backend(name, Database("testdb"))
        assert isinstance(backend, FaultyBackend)
        injector.script("chaos-test-memory.backend.execute_many", at_call=1)
        with pytest.raises(InjectedFault):
            backend.execute_many([])
        backend.close()


class RecordingPool:
    """A stub noise pool recording refill/ensure/take calls."""

    def __init__(self) -> None:
        self.refills = 0
        self.ensures = 0
        self.takes = 0

    def refill(self) -> None:
        self.refills += 1

    def ensure(self, count: int) -> None:
        self.ensures += 1

    def take(self) -> int:
        self.takes += 1
        return 42

    def __len__(self) -> int:
        return 0


class TestNoisePoolWrapper:
    def test_take_is_never_faulted(self):
        pool = RecordingPool()
        wrapped = FaultInjector(0, transient_rate=1.0).wrap_pool(pool)
        assert wrapped.take() == 42  # infallible on-demand fallback

    def test_refill_and_ensure_pass_the_fault_point(self):
        pool = RecordingPool()
        injector = FaultInjector(0)
        injector.script("pool.refill", at_call=1)
        injector.script("pool.ensure", at_call=1)
        wrapped = injector.wrap_pool(pool)
        with pytest.raises(InjectedFault):
            wrapped.refill()
        with pytest.raises(InjectedFault):
            wrapped.ensure(4)
        assert pool.refills == 0 and pool.ensures == 0
        wrapped.refill()
        wrapped.ensure(4)
        assert pool.refills == 1 and pool.ensures == 1

    def test_async_refill_retry_absorbs_one_transient(self):
        """The refill worker's bounded retry rides out a single fault."""
        pool = RecordingPool()
        injector = FaultInjector(0)
        injector.script("pool.refill", at_call=1)
        wrapped = injector.wrap_pool(pool)
        handle = wrapped.refill_async(retries=2)
        assert handle.join(timeout=30.0) is True
        assert handle.error is None
        assert handle.attempts == 2  # first attempt faulted, second landed
        assert pool.refills == 1
