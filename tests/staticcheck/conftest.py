"""Fixtures for the static-analysis suite: synthetic source trees.

The rules match files by *module identity* (``repro.crypto.x``,
``examples.y``), derived from path anchors — so a fixture tree only needs a
``repro``/``examples`` directory at any depth for a file to pick up the
same obligations the real tree has.
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def lint_tree(tmp_path):
    """Factory writing ``{relpath: source}`` trees and returning the root."""

    def build(files: dict[str, str]) -> Path:
        root = tmp_path / "proj"
        for relpath, source in files.items():
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        return root

    return build
