"""Per-rule positive/negative fixtures for the five production rules.

Every rule gets at least one *true positive* (a synthetic violation it must
flag) and matching negatives proving the rule's escape hatches work —
delegating batch paths, TYPE_CHECKING imports, seeded RNGs, holds-methods.
"""

from __future__ import annotations

from repro.analysis.staticcheck import run_lint


def rules_fired(report):
    """The distinct rule names among a report's findings."""
    return {finding.rule for finding in report.findings}


class TestLayering:
    def test_entry_point_importing_internals_is_flagged(self, lint_tree):
        root = lint_tree({"repro/cli.py": "import repro.mining.distance\n"})
        report = run_lint([root], rules=["layering"])
        assert [f.line for f in report.findings] == [1]
        assert "entry points" in report.findings[0].message

    def test_examples_belong_to_the_entry_point_layer(self, lint_tree):
        root = lint_tree({"examples/demo.py": "from repro.server import core\n"})
        report = run_lint([root], rules=["layering"])
        assert rules_fired(report) == {"layering"}

    def test_facade_imports_are_allowed(self, lint_tree):
        root = lint_tree(
            {"examples/demo.py": "from repro.api import MiningService\nimport repro\n"}
        )
        assert run_lint([root], rules=["layering"]).findings == ()

    def test_crypto_may_not_import_mining(self, lint_tree):
        root = lint_tree(
            {"repro/crypto/fast.py": "from repro.mining import distance\n"}
        )
        report = run_lint([root], rules=["layering"])
        assert rules_fired(report) == {"layering"}
        assert "bottom layer" in report.findings[0].message

    def test_type_checking_imports_are_exempt(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/fast.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.mining import distance\n"
                )
            }
        )
        assert run_lint([root], rules=["layering"]).findings == ()

    def test_reliability_may_not_reach_backend_internals(self, lint_tree):
        root = lint_tree(
            {
                "repro/reliability/wrap.py": (
                    "from repro.db.backend import create_backend\n"
                    "from repro.db.executor import QueryExecutor\n"
                )
            }
        )
        report = run_lint([root], rules=["layering"])
        # The registry seam (line 1) is allowed; the internal import is not.
        assert [f.line for f in report.findings] == [2]


class TestLockDiscipline:
    GUARDED = (
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = object()\n"
        "        self._items = []  # guarded-by: _lock\n"
    )

    def test_unlocked_access_is_flagged(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/pool.py": self.GUARDED
                + "    def size(self):\n        return len(self._items)\n"
            }
        )
        report = run_lint([root], rules=["lock-discipline"])
        assert rules_fired(report) == {"lock-discipline"}
        assert "_items" in report.findings[0].message

    def test_locked_access_passes(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/pool.py": self.GUARDED
                + "    def size(self):\n"
                "        with self._lock:\n"
                "            return len(self._items)\n"
            }
        )
        assert run_lint([root], rules=["lock-discipline"]).findings == ()

    def test_init_is_exempt(self, lint_tree):
        root = lint_tree({"repro/server/pool.py": self.GUARDED})
        assert run_lint([root], rules=["lock-discipline"]).findings == ()

    def test_nested_closures_do_not_inherit_the_lock(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/pool.py": self.GUARDED
                + "    def deferred(self):\n"
                "        with self._lock:\n"
                "            return lambda: len(self._items)\n"
            }
        )
        report = run_lint([root], rules=["lock-discipline"])
        assert rules_fired(report) == {"lock-discipline"}

    def test_holds_method_shifts_the_obligation_to_callers(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/pool.py": self.GUARDED
                + "    def _drain(self):  # holds: _lock\n"
                "        self._items.clear()\n"
                "    def good(self):\n"
                "        with self._lock:\n"
                "            self._drain()\n"
                "    def bad(self):\n"
                "        self._drain()\n"
            }
        )
        report = run_lint([root], rules=["lock-discipline"])
        assert len(report.findings) == 1
        assert "bad()" in report.findings[0].message
        assert "holds" in report.findings[0].message


class TestDeterminism:
    def test_global_rng_is_flagged(self, lint_tree):
        root = lint_tree(
            {"repro/mining/pick.py": "import random\nx = random.random()\n"}
        )
        report = run_lint([root], rules=["determinism"])
        assert rules_fired(report) == {"determinism"}

    def test_unseeded_random_instance_is_flagged(self, lint_tree):
        root = lint_tree(
            {"repro/mining/pick.py": "import random\nrng = random.Random()\n"}
        )
        assert rules_fired(run_lint([root], rules=["determinism"])) == {"determinism"}

    def test_seeded_random_instance_passes(self, lint_tree):
        root = lint_tree(
            {"repro/mining/pick.py": "import random\nrng = random.Random(42)\n"}
        )
        assert run_lint([root], rules=["determinism"]).findings == ()

    def test_wall_clock_outside_the_seams_is_flagged(self, lint_tree):
        root = lint_tree({"repro/server/t.py": "import time\nnow = time.time()\n"})
        assert rules_fired(run_lint([root], rules=["determinism"])) == {"determinism"}

    def test_wall_clock_inside_reliability_is_the_seam(self, lint_tree):
        root = lint_tree(
            {"repro/reliability/clock.py": "import time\nnow = time.time()\n"}
        )
        assert run_lint([root], rules=["determinism"]).findings == ()

    def test_monotonic_measurement_is_always_allowed(self, lint_tree):
        root = lint_tree(
            {"repro/server/t.py": "import time\nstart = time.perf_counter()\n"}
        )
        assert run_lint([root], rules=["determinism"]).findings == ()

    def test_datetime_now_is_flagged(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/t.py": (
                    "import datetime\nstamp = datetime.datetime.now()\n"
                )
            }
        )
        assert rules_fired(run_lint([root], rules=["determinism"])) == {"determinism"}

    def test_set_iteration_in_mining_is_flagged(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/merge.py": (
                    "def merge(items):\n"
                    "    return [x for x in set(items)]\n"
                )
            }
        )
        report = run_lint([root], rules=["determinism"])
        assert rules_fired(report) == {"determinism"}
        assert "sorted" in report.findings[0].message

    def test_sorted_set_iteration_passes(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/merge.py": (
                    "def merge(items):\n"
                    "    return [x for x in sorted(set(items))]\n"
                )
            }
        )
        assert run_lint([root], rules=["determinism"]).findings == ()

    def test_set_iteration_outside_mining_is_not_this_rules_business(self, lint_tree):
        root = lint_tree(
            {"repro/server/s.py": "def f(items):\n    return [x for x in set(items)]\n"}
        )
        assert run_lint([root], rules=["determinism"]).findings == ()


class TestOracleParity:
    def test_non_delegating_batch_without_reference_is_flagged(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/fast.py": (
                    "class Scheme:\n"
                    "    def encrypt_many(self, values):\n"
                    "        return [v * 2 for v in values]\n"
                )
            }
        )
        report = run_lint([root], rules=["oracle-parity"])
        assert rules_fired(report) == {"oracle-parity"}
        assert "encrypt*_reference" in report.findings[0].message

    def test_delegating_batch_needs_no_reference(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/fast.py": (
                    "class Scheme:\n"
                    "    def encrypt(self, v):\n"
                    "        return v * 2\n"
                    "    def encrypt_many(self, values):\n"
                    "        return [self.encrypt(v) for v in values]\n"
                )
            }
        )
        assert run_lint([root], rules=["oracle-parity"]).findings == ()

    def test_batch_with_reference_sibling_passes(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/fast.py": (
                    "class Scheme:\n"
                    "    def encrypt_many(self, values):\n"
                    "        return [v * 2 for v in values]\n"
                    "    def encrypt_reference(self, v):\n"
                    "        return v * 2\n"
                )
            }
        )
        assert run_lint([root], rules=["oracle-parity"]).findings == ()

    def test_fast_path_stats_without_oracle_is_flagged(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/fast.py": (
                    "class Scheme:\n"
                    "    def fast_path_stats(self):\n"
                    "        return {'hits': 1}\n"
                )
            }
        )
        assert rules_fired(run_lint([root], rules=["oracle-parity"])) == {
            "oracle-parity"
        }

    def test_empty_fast_path_stats_is_the_base_default(self, lint_tree):
        root = lint_tree(
            {
                "repro/crypto/base.py": (
                    "class Scheme:\n"
                    "    def fast_path_stats(self):\n"
                    "        return {}\n"
                )
            }
        )
        assert run_lint([root], rules=["oracle-parity"]).findings == ()

    def test_rule_is_scoped_to_crypto(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/fast.py": (
                    "class Batch:\n"
                    "    def merge_many(self, values):\n"
                    "        return values\n"
                )
            }
        )
        assert run_lint([root], rules=["oracle-parity"]).findings == ()


class TestExceptionPolicy:
    def test_bare_except_is_flagged_everywhere(self, lint_tree):
        root = lint_tree(
            {"repro/mining/m.py": "try:\n    pass\nexcept:\n    pass\n"}
        )
        report = run_lint([root], rules=["exception-policy"])
        assert rules_fired(report) == {"exception-policy"}

    def test_named_broad_except_is_allowed(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/s.py": (
                    "try:\n    pass\nexcept BaseException:\n    raise\n"
                )
            }
        )
        assert run_lint([root], rules=["exception-policy"]).findings == ()

    def test_boundary_raising_builtin_is_flagged(self, lint_tree):
        root = lint_tree(
            {"repro/api/svc.py": "def f():\n    raise ValueError('nope')\n"}
        )
        report = run_lint([root], rules=["exception-policy"])
        assert rules_fired(report) == {"exception-policy"}
        assert "ApiError" in report.findings[0].message

    def test_boundary_raising_api_error_passes(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/svc.py": (
                    "from repro.api.errors import QueryRejected\n"
                    "def f():\n"
                    "    raise QueryRejected('full')\n"
                )
            }
        )
        assert run_lint([root], rules=["exception-policy"]).findings == ()

    def test_non_boundary_builtin_raise_is_fine(self, lint_tree):
        root = lint_tree(
            {"repro/mining/m.py": "def f():\n    raise ValueError('internal')\n"}
        )
        assert run_lint([root], rules=["exception-policy"]).findings == ()

    def test_bare_reraise_at_the_boundary_is_fine(self, lint_tree):
        root = lint_tree(
            {
                "repro/api/svc.py": (
                    "def f():\n"
                    "    try:\n"
                    "        pass\n"
                    "    except Exception:\n"
                    "        raise\n"
                )
            }
        )
        assert run_lint([root], rules=["exception-policy"]).findings == ()
