"""Suppression semantics: exact-line silencing and unused-suppression errors."""

from __future__ import annotations

from repro.analysis.staticcheck import run_lint
from repro.analysis.staticcheck.suppress import UNUSED_SUPPRESSION

BARE_EXCEPT = "try:\n    pass\nexcept:{comment}\n    pass\n"


class TestSuppressions:
    def test_matching_suppression_silences_the_finding(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/m.py": BARE_EXCEPT.format(
                    comment="  # repro: ignore[exception-policy]"
                )
            }
        )
        assert run_lint([root], rules=["exception-policy"]).findings == ()

    def test_suppression_is_line_exact(self, lint_tree):
        source = (
            "# repro: ignore[exception-policy]\n"
            "try:\n    pass\nexcept:\n    pass\n"
        )
        root = lint_tree({"repro/mining/m.py": source})
        report = run_lint([root], rules=["exception-policy"])
        # The finding survives (wrong line) AND the suppression is unused.
        assert sorted(f.rule for f in report.findings) == [
            "exception-policy",
            UNUSED_SUPPRESSION,
        ]

    def test_wrong_rule_name_does_not_silence(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/m.py": BARE_EXCEPT.format(
                    comment="  # repro: ignore[layering]"
                )
            }
        )
        report = run_lint([root], rules=["exception-policy"])
        assert sorted(f.rule for f in report.findings) == [
            "exception-policy",
            UNUSED_SUPPRESSION,
        ]

    def test_multi_rule_comment_errors_for_each_unused_rule(self, lint_tree):
        root = lint_tree(
            {
                "repro/mining/m.py": BARE_EXCEPT.format(
                    comment="  # repro: ignore[exception-policy, determinism]"
                )
            }
        )
        report = run_lint([root], rules=["exception-policy", "determinism"])
        # exception-policy is earned; determinism silences nothing -> error.
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION]
        assert "'determinism'" in report.findings[0].message

    def test_unused_suppression_in_clean_file_errors(self, lint_tree):
        root = lint_tree(
            {"repro/mining/m.py": "VALUE = 1  # repro: ignore[determinism]\n"}
        )
        report = run_lint([root], rules=["determinism"])
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION]
        assert report.exit_code(strict=False) == 1
