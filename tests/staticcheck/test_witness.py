"""LockWitness runtime: order-cycle detection and guarded-access watching."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.staticcheck.witness import (
    LockWitness,
    LockWitnessError,
    WitnessedLock,
    class_guards,
)
from repro.exceptions import AnalysisError


class Counter:
    """A tiny annotated class used as a watch target."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def bump_unsafely(self) -> None:
        self._count += 1

    def value(self) -> int:
        with self._lock:
            return self._count


class Unannotated:
    """A class with no guard annotations (watching it must fail loudly)."""

    def __init__(self) -> None:
        self._value = 0


class TestWitnessedLock:
    def test_wrap_tracks_held_by_current_thread(self):
        witness = LockWitness()
        lock = witness.wrap(threading.Lock(), "L")
        assert isinstance(lock, WitnessedLock)
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_rlock_reentry_records_no_self_edge(self):
        witness = LockWitness()
        lock = witness.wrap(threading.RLock(), "R")
        with lock:
            with lock:
                assert lock.held_by_current_thread()
        assert witness.lock_order_edges() == {}
        witness.check()  # no violations, no cycle

    def test_wrapping_a_witnessed_lock_is_idempotent(self):
        witness = LockWitness()
        lock = witness.wrap(threading.Lock(), "L")
        assert witness.wrap(lock, "other") is lock


def _nest(outer: WitnessedLock, inner: WitnessedLock) -> None:
    """Acquire ``outer`` then ``inner`` (and release both), on a fresh thread."""

    def body() -> None:
        with outer:
            with inner:
                pass

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()


class TestLockOrderCycles:
    def test_two_thread_order_inversion_is_a_cycle(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")
        # Scripted inversion: thread 1 nests A -> B, thread 2 nests B -> A.
        # The threads run to completion sequentially, so the run never
        # actually deadlocks — the witness still reports the potential.
        _nest(a, b)
        _nest(b, a)
        assert witness.lock_order_edges() == {("A", "B"): 1, ("B", "A"): 1}
        assert witness.find_cycle() == ["A", "B", "A"]
        with pytest.raises(LockWitnessError, match="lock-order cycle"):
            witness.check()

    def test_consistent_order_is_clean(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")
        for _ in range(3):
            _nest(a, b)
        assert witness.lock_order_edges() == {("A", "B"): 3}
        assert witness.find_cycle() is None
        witness.check()

    def test_reset_clears_recorded_state(self):
        witness = LockWitness()
        a = witness.wrap(threading.Lock(), "A")
        b = witness.wrap(threading.Lock(), "B")
        _nest(a, b)
        _nest(b, a)
        witness.reset()
        witness.check()


class TestGuardedAttributeWatching:
    def test_class_guards_reads_the_annotations(self):
        guards = class_guards(Counter)
        assert guards.guarded == {"_count": "_lock"}

    def test_unannotated_class_is_rejected(self):
        witness = LockWitness()
        with pytest.raises(AnalysisError, match="declares no"):
            witness.watch_instance(Unannotated())

    def test_locked_access_is_clean(self):
        witness = LockWitness()
        counter = witness.watch_instance(Counter())
        counter.bump()
        assert counter.value() == 1
        assert witness.violations == ()
        witness.check()

    def test_unlocked_access_is_recorded_not_raised(self):
        witness = LockWitness()
        counter = witness.watch_instance(Counter())
        counter.bump_unsafely()  # must not raise mid-flight
        assert witness.violations  # ...but is recorded
        assert "_count" in witness.violations[0]
        assert "_lock" in witness.violations[0]
        with pytest.raises(LockWitnessError, match="guarded-access"):
            witness.check()

    def test_violation_names_the_offending_thread(self):
        witness = LockWitness()
        counter = witness.watch_instance(Counter())
        thread = threading.Thread(target=counter.bump_unsafely, name="rogue")
        thread.start()
        thread.join()
        assert any("rogue" in violation for violation in witness.violations)


class TestWatchClasses:
    def test_future_instances_are_watched_until_uninstall(self):
        witness = LockWitness()
        uninstall = witness.watch_classes([Counter])
        try:
            watched = Counter()
            watched.bump_unsafely()
            assert witness.violations
        finally:
            uninstall()
        witness.reset()
        unwatched = Counter()
        unwatched.bump_unsafely()
        assert witness.violations == ()

    def test_subclasses_are_not_auto_watched(self):
        class Derived(Counter):
            def __init__(self) -> None:
                super().__init__()
                self._count = 0  # still initializing: must not be flagged

        witness = LockWitness()
        uninstall = witness.watch_classes([Counter])
        try:
            Derived()
            assert witness.violations == ()
        finally:
            uninstall()

    def test_watching_an_unannotated_class_fails_at_install(self):
        witness = LockWitness()
        with pytest.raises(AnalysisError):
            witness.watch_classes([Unannotated])
