"""Framework behaviour: registry, parse cache, findings, runner, CLI."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    available_checkers,
    create_checker,
    register_checker,
    run_lint,
)
from repro.analysis.staticcheck.findings import Finding, Severity, finding_for
from repro.analysis.staticcheck.parsing import SourceCache, module_identity
from repro.analysis.staticcheck.runner import LintReport, format_report, iter_python_files
from repro.cli import main as cli_main
from repro.exceptions import AnalysisError

PRODUCTION_RULES = (
    "layering",
    "lock-discipline",
    "determinism",
    "oracle-parity",
    "exception-policy",
)


class _NullRule:
    """A do-nothing checker used to exercise the registry."""

    name = "test-null"

    def check(self, source, config):
        return []


class TestRegistry:
    def test_production_rules_are_registered(self):
        names = available_checkers()
        for rule in PRODUCTION_RULES:
            assert rule in names

    def test_create_returns_a_named_checker(self):
        checker = create_checker("layering")
        assert checker.name == "layering"

    def test_unknown_rule_lists_available(self):
        with pytest.raises(AnalysisError, match="unknown lint rule.*available"):
            create_checker("no-such-rule")

    def test_duplicate_registration_is_rejected(self):
        register_checker("test-null", _NullRule)
        try:
            with pytest.raises(AnalysisError, match="already registered"):
                register_checker("test-null", _NullRule)
            register_checker("test-null", _NullRule, replace=True)  # explicit wins
        finally:
            # The registry has no unregister; replacing with the same null
            # rule keeps the shared registry harmless for other tests.
            register_checker("test-null", _NullRule, replace=True)


class TestModuleIdentity:
    @pytest.mark.parametrize(
        ("relpath", "expected"),
        [
            ("src/repro/crypto/ope.py", "repro.crypto.ope"),
            ("src/repro/crypto/__init__.py", "repro.crypto"),
            ("src/repro/cli.py", "repro.cli"),
            ("examples/quickstart.py", "examples.quickstart"),
            ("scripts/tool.py", "tool"),
        ],
    )
    def test_paths_map_to_dotted_identities(self, tmp_path, relpath, expected):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("x = 1\n", encoding="utf-8")
        assert module_identity(target) == expected


class TestSourceCache:
    def test_same_file_is_parsed_once(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("value = 1  # a comment\n", encoding="utf-8")
        cache = SourceCache()
        first = cache.get(target)
        assert cache.get(target) is first
        assert isinstance(first.tree, ast.Module)
        assert first.comments == {1: "a comment"}

    def test_syntax_error_is_an_analysis_error(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="cannot parse"):
            SourceCache().get(target)

    def test_missing_file_is_an_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            SourceCache().get(tmp_path / "missing.py")


class TestFindings:
    def test_ordering_is_by_path_line_rule(self):
        findings = [
            finding_for("b-rule", "b.py", 1, "m"),
            finding_for("a-rule", "a.py", 9, "m"),
            finding_for("a-rule", "a.py", 2, "m"),
        ]
        ordered = sorted(findings)
        assert [(f.path, f.line, f.rule) for f in ordered] == [
            ("a.py", 2, "a-rule"),
            ("a.py", 9, "a-rule"),
            ("b.py", 1, "b-rule"),
        ]

    def test_format_is_the_canonical_line(self):
        finding = finding_for("layering", "src/x.py", 3, "no")
        assert finding.format() == "src/x.py:3: error [layering] no"

    def test_severity_does_not_affect_equality(self):
        error = Finding("p.py", 1, "r", "m", Severity.ERROR)
        warning = Finding("p.py", 1, "r", "m", Severity.WARNING)
        assert error == warning


class TestReport:
    def _report(self, severity: Severity) -> LintReport:
        return LintReport(
            findings=(Finding("p.py", 1, "r", "m", severity),),
            files_checked=1,
            rules=("r",),
        )

    def test_errors_fail_regardless_of_strict(self):
        report = self._report(Severity.ERROR)
        assert report.exit_code(strict=False) == 1
        assert report.exit_code(strict=True) == 1

    def test_warnings_fail_only_under_strict(self):
        report = self._report(Severity.WARNING)
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_clean_report_is_zero(self):
        report = LintReport(findings=(), files_checked=3, rules=("r",))
        assert report.exit_code(strict=True) == 0
        assert "3 files checked, 0 errors, 0 warnings" in format_report(report)


class TestRunner:
    def test_missing_path_fails_loudly(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            iter_python_files([tmp_path / "nowhere"])

    def test_pycache_is_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x=", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["ok.py"]

    def test_run_lint_reports_are_deterministic(self, lint_tree):
        root = lint_tree(
            {
                "repro/server/one.py": "def f():\n    raise ValueError('x')\n",
                "repro/server/two.py": "try:\n    pass\nexcept:\n    pass\n",
            }
        )
        first = run_lint([root], rules=PRODUCTION_RULES)
        second = run_lint([root], rules=PRODUCTION_RULES)
        assert first == second
        assert [f.rule for f in first.findings] == [
            "exception-policy",
            "exception-policy",
        ]


class TestCli:
    def test_lint_command_reports_and_fails(self, lint_tree, capsys):
        root = lint_tree({"repro/api/bad.py": "try:\n    pass\nexcept:\n    pass\n"})
        code = cli_main(["lint", str(root), "--strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[exception-policy]" in out
        assert "1 errors" in out

    def test_lint_command_clean_exit(self, lint_tree, capsys):
        root = lint_tree({"repro/api/good.py": "VALUE = 1\n"})
        assert cli_main(["lint", str(root), "--strict"]) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_lint_command_bad_path_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "missing")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_rule_filter_runs_only_named_rules(self, lint_tree):
        root = lint_tree({"repro/api/bad.py": "try:\n    pass\nexcept:\n    pass\n"})
        report = run_lint([root], rules=["layering"])
        assert report.findings == ()
        assert report.rules == ("layering",)


class TestRepoIsClean:
    REPO = Path(__file__).resolve().parents[2]

    def test_src_and_examples_pass_strict(self):
        report = run_lint(
            [self.REPO / "src", self.REPO / "examples"], rules=PRODUCTION_RULES
        )
        assert report.findings == (), format_report(report, strict=True)
        assert report.files_checked > 100
