"""The checker framework type-checks under ``mypy --strict``.

The strict island is configured in ``pyproject.toml`` (``[tool.mypy]`` with
a ``repro.analysis.staticcheck.*`` strict override) and enforced by the CI
lint job.  This test runs the same command when mypy is importable, so a
local environment with mypy gets the signal from pytest too; environments
without mypy (it is not a runtime dependency) skip.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed (CI's lint job installs and runs it)",
)
def test_staticcheck_package_is_strictly_typed() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/analysis/staticcheck"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, result.stdout + result.stderr
