"""Race regression tests for the memoized OPE descent cache.

The node cache used to be updated without a lock: two threads racing on the
same descent node could interleave the eviction check, the size test and
the counter increments, losing cache-accounting updates (``hits + misses``
drifting from the number of lookups) and — worse — interleaving
``clear_cache`` with a half-done insertion.  These tests hammer one scheme
instance from barrier-synchronized threads with a shrunken switch interval
and assert the two properties the lock now guarantees: every ciphertext is
bit-for-bit the reference descent, and the accounting is *exact*, not
approximate.
"""

from __future__ import annotations

import random
import sys
import threading

import pytest

from repro.crypto.ope import OrderPreservingScheme

THREADS = 8
KEY = b"ope-threading-regression-key!!!!"


@pytest.fixture
def fast_switching():
    """Amplify races by forcing frequent thread switches."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def _scheme(**overrides) -> OrderPreservingScheme:
    parameters = {"domain_min": 0, "domain_max": 1023, "expansion_bits": 8}
    parameters.update(overrides)
    return OrderPreservingScheme(KEY, **parameters)


def _hammer(scheme, per_thread_work):
    """Run ``per_thread_work(thread_index)`` in THREADS barrier-started threads."""
    barrier = threading.Barrier(THREADS)
    failures = []

    def body(index):
        barrier.wait()
        try:
            per_thread_work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            failures.append(error)

    threads = [threading.Thread(target=body, args=(index,)) for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestOpeCacheRaces:
    def test_concurrent_encrypt_is_bit_for_bit_and_accounting_exact(self, fast_switching):
        values = list(range(0, 1024, 7))
        scheme = _scheme()
        reference = {value: scheme.encrypt_reference(value) for value in values}

        # Calibrate: the descent performs a fixed number of node lookups per
        # value, independent of cache state, so T threads over the same
        # values must account exactly T times the single-threaded count.
        calibration = _scheme()
        for value in values:
            calibration.encrypt(value)
        calibration_stats = calibration.cache_stats()
        lookups_single = calibration_stats["hits"] + calibration_stats["misses"]
        assert lookups_single > 0

        def work(index):
            ordered = list(values)
            random.Random(index).shuffle(ordered)
            for value in ordered:
                assert scheme.encrypt(value) == reference[value]

        _hammer(scheme, work)
        stats = scheme.cache_stats()
        assert stats["hits"] + stats["misses"] == THREADS * lookups_single
        assert stats["evictions"] == 0

    def test_concurrent_clear_cache_never_corrupts_ciphertexts(self, fast_switching):
        values = list(range(0, 1024, 13))
        # A cache far smaller than the descent tree forces evictions too.
        scheme = _scheme(cache_max_nodes=32)
        reference = {value: scheme.encrypt_reference(value) for value in values}

        def work(index):
            ordered = list(values)
            random.Random(index).shuffle(ordered)
            for position, value in enumerate(ordered):
                if index == 0 and position % 5 == 0:
                    scheme.clear_cache()
                assert scheme.encrypt(value) == reference[value]
                assert scheme.decrypt(reference[value]) == value

        _hammer(scheme, work)
        stats = scheme.cache_stats()
        assert stats["hits"] >= 0 and stats["misses"] >= 0
        assert stats["nodes"] <= 32

    def test_concurrent_encrypt_many_matches_scalar_reference(self, fast_switching):
        values = [value for value in range(0, 1024, 11) for _ in range(2)]
        scheme = _scheme()
        reference = [scheme.encrypt_reference(value) for value in values]

        def work(index):
            assert scheme.encrypt_many(list(values)) == reference

        _hammer(scheme, work)
