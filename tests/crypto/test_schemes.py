"""Tests for the PROB, DET and JOIN schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.base import CiphertextKind, EncryptionClass, IdentityScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.join import JoinGroup, JoinScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import DecryptionError, EncryptionError, KeyError_

VALUES = [0, 1, -7, 123456789, 2.5, -0.125, "", "hello", "O'Brien", True, False, None]
sql_values = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12),
    st.text(max_size=40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestProbabilisticScheme:
    def test_round_trip(self, keychain):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        for value in VALUES:
            assert scheme.decrypt(scheme.encrypt(value)) == value

    def test_randomized(self, keychain):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        assert scheme.encrypt("x") != scheme.encrypt("x")

    def test_class_metadata(self, keychain):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        assert scheme.encryption_class is EncryptionClass.PROB
        assert scheme.is_probabilistic
        assert not scheme.preserves_equality
        assert scheme.describe()["class"] == "PROB"

    def test_tampering_detected(self, keychain):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        ciphertext = scheme.encrypt("secret")
        tampered = ciphertext[:-2] + ("00" if ciphertext[-2:] != "00" else "11")
        with pytest.raises(DecryptionError):
            scheme.decrypt(tampered)

    def test_wrong_key_fails(self, keychain):
        ciphertext = ProbabilisticScheme(keychain.key_for("prob1")).encrypt("secret")
        with pytest.raises(DecryptionError):
            ProbabilisticScheme(keychain.key_for("prob2")).decrypt(ciphertext)

    def test_malformed_ciphertexts_rejected(self, keychain):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        for bad in ["nope", "prob:zz", "prob:aa", 42, None]:
            with pytest.raises(DecryptionError):
                scheme.decrypt(bad)

    def test_short_key_rejected(self):
        with pytest.raises(KeyError_):
            ProbabilisticScheme(b"short")

    @settings(max_examples=60, deadline=None)
    @given(value=sql_values)
    def test_round_trip_property(self, keychain, value):
        scheme = ProbabilisticScheme(keychain.key_for("prob"))
        assert scheme.decrypt(scheme.encrypt(value)) == value


class TestDeterministicScheme:
    def test_round_trip(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        for value in VALUES:
            assert scheme.decrypt(scheme.encrypt(value)) == value

    def test_deterministic_and_injective(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        assert scheme.encrypt("x") == scheme.encrypt("x")
        ciphertexts = {scheme.encrypt(value) for value in VALUES}
        assert len(ciphertexts) == len(VALUES)

    def test_types_do_not_collide(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        assert scheme.encrypt(5) != scheme.encrypt("5")
        assert scheme.encrypt(5) != scheme.encrypt(5.0)

    def test_key_separation(self, keychain):
        a = DeterministicScheme(keychain.key_for("det-a"))
        b = DeterministicScheme(keychain.key_for("det-b"))
        assert a.encrypt("x") != b.encrypt("x")

    def test_identifier_encryption_is_valid_identifier(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        ciphertext = scheme.encrypt_identifier("users")
        assert ciphertext.startswith("enc_")
        assert ciphertext[4:].isalnum()
        assert scheme.decrypt_identifier(ciphertext) == "users"
        assert scheme.is_identifier_ciphertext(ciphertext)

    def test_identifier_and_value_namespaces_differ(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        assert scheme.encrypt("users") != scheme.encrypt_identifier("users")

    def test_integrity_check(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        ciphertext = scheme.encrypt("secret")
        tampered = ciphertext[:-2] + ("00" if ciphertext[-2:] != "00" else "11")
        with pytest.raises(DecryptionError):
            scheme.decrypt(tampered)

    def test_malformed_inputs(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        with pytest.raises(DecryptionError):
            scheme.decrypt("not-a-ciphertext")
        with pytest.raises(DecryptionError):
            scheme.decrypt_identifier("nope")

    @settings(max_examples=60, deadline=None)
    @given(value=sql_values)
    def test_determinism_property(self, keychain, value):
        scheme = DeterministicScheme(keychain.key_for("det"))
        assert scheme.encrypt(value) == scheme.encrypt(value)
        assert scheme.decrypt(scheme.encrypt(value)) == value

    def test_batch_round_trip_with_repeats(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        values = ["a", 5, "a", None, 5.0, 5, "a"]
        ciphertexts = scheme.encrypt_many(values)
        assert ciphertexts.count(ciphertexts[0]) == 3  # dedup: equal bits
        assert scheme.decrypt_many(ciphertexts) == values

    def test_decrypt_many_rejects_malformed(self, keychain):
        scheme = DeterministicScheme(keychain.key_for("det"))
        with pytest.raises(DecryptionError):
            scheme.decrypt_many([scheme.encrypt("ok"), "not-a-ciphertext"])


class TestJoinScheme:
    def test_same_group_shares_ciphertexts(self, keychain):
        group = JoinGroup("g1")
        group.add("users", "uid")
        group.add("accounts", "owner_id")
        scheme = JoinScheme(keychain, group)
        assert scheme.encrypt_for("users", "uid", 42) == scheme.encrypt_for(
            "accounts", "owner_id", 42
        )
        assert scheme.encryption_class is EncryptionClass.JOIN

    def test_non_member_rejected(self, keychain):
        group = JoinGroup("g1", {("users", "uid")})
        scheme = JoinScheme(keychain, group)
        with pytest.raises(EncryptionError):
            scheme.encrypt_for("orders", "oid", 1)

    def test_different_groups_do_not_join(self, keychain):
        g1 = JoinGroup("g1", {("a", "x")})
        g2 = JoinGroup("g2", {("b", "y")})
        assert JoinScheme(keychain, g1).encrypt(7) != JoinScheme(keychain, g2).encrypt(7)

    def test_join_ope_mode_preserves_order(self, keychain):
        group = JoinGroup("g-ope", {("a", "x"), ("b", "y")})
        scheme = JoinScheme(keychain, group, order_preserving=True, domain_min=0, domain_max=1000)
        assert scheme.encryption_class is EncryptionClass.JOIN_OPE
        ciphertexts = [scheme.encrypt(v) for v in (1, 5, 500)]
        assert ciphertexts == sorted(ciphertexts)
        assert scheme.ciphertext_kind is CiphertextKind.INTEGER

    def test_round_trip(self, keychain):
        group = JoinGroup("g1", {("a", "x")})
        scheme = JoinScheme(keychain, group)
        assert scheme.decrypt(scheme.encrypt("v")) == "v"


class TestIdentityScheme:
    def test_identity(self):
        scheme = IdentityScheme()
        assert scheme.encrypt(5) == 5
        assert scheme.decrypt("x") == "x"
        assert scheme.encryption_class is EncryptionClass.PLAIN
        assert scheme.preserves_equality and scheme.preserves_order
