"""Tests for crypto primitives, the value codec and key management."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.primitives import (
    DeterministicStream,
    aes_ctr_transform,
    decode_value,
    derive_key,
    encode_value,
    generate_prime,
    is_probable_prime,
    modular_inverse,
    prf,
    prf_int,
    random_bytes,
)
from repro.exceptions import CryptoError, DecryptionError, KeyError_

KEY = b"0123456789abcdef0123456789abcdef"


class TestPrf:
    def test_deterministic(self):
        assert prf(KEY, "a", "b") == prf(KEY, "a", "b")

    def test_key_separation(self):
        assert prf(KEY, "a") != prf(b"x" * 32, "a")

    def test_length_prefixing_prevents_ambiguity(self):
        assert prf(KEY, "ab", "c") != prf(KEY, "a", "bc")

    def test_prf_int_range(self):
        value = prf_int(KEY, "x", bits=16)
        assert 0 <= value < 2**16

    def test_prf_int_large_bits(self):
        value = prf_int(KEY, "x", bits=300)
        assert 0 <= value < 2**300


class TestDeriveKey:
    def test_deterministic_and_label_separated(self):
        assert derive_key(KEY, "a") == derive_key(KEY, "a")
        assert derive_key(KEY, "a") != derive_key(KEY, "b")

    def test_length(self):
        assert len(derive_key(KEY, "a", 48)) == 48


class TestAesCtr:
    def test_round_trip(self):
        nonce = random_bytes(16)
        data = b"the quick brown fox"
        assert aes_ctr_transform(KEY, nonce, aes_ctr_transform(KEY, nonce, data)) == data

    def test_nonce_length_checked(self):
        with pytest.raises(CryptoError):
            aes_ctr_transform(KEY, b"short", b"data")


class TestDeterministicStream:
    def test_reproducible(self):
        a = DeterministicStream(KEY, "seed").read(64)
        b = DeterministicStream(KEY, "seed").read(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert DeterministicStream(KEY, "s1").read(32) != DeterministicStream(KEY, "s2").read(32)

    def test_uniform_int_in_range(self):
        stream = DeterministicStream(KEY, "seed")
        for _ in range(200):
            value = stream.uniform_int(5, 9)
            assert 5 <= value <= 9

    def test_uniform_int_single_value_range(self):
        assert DeterministicStream(KEY, "s").uniform_int(7, 7) == 7

    def test_uniform_int_empty_range_raises(self):
        with pytest.raises(CryptoError):
            DeterministicStream(KEY, "s").uniform_int(5, 4)

    def test_uniform_float_in_unit_interval(self):
        stream = DeterministicStream(KEY, "seed")
        for _ in range(50):
            assert 0.0 <= stream.uniform_float() < 1.0


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 42, -99999999999999, 3.25, -2.5, 0.0, "", "hello", "ümlauts ß"],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_type_preserved(self):
        assert isinstance(decode_value(encode_value(5)), int)
        assert isinstance(decode_value(encode_value(5.0)), float)
        assert isinstance(decode_value(encode_value(True)), bool)

    def test_distinct_types_encode_differently(self):
        assert encode_value(5) != encode_value(5.0)
        assert encode_value("5") != encode_value(5)
        assert encode_value(True) != encode_value(1)

    def test_bad_inputs(self):
        with pytest.raises(CryptoError):
            encode_value([1, 2])  # type: ignore[arg-type]
        with pytest.raises(DecryptionError):
            decode_value(b"")
        with pytest.raises(DecryptionError):
            decode_value(b"\xff\x00")

    @settings(max_examples=100, deadline=None)
    @given(value=st.one_of(st.integers(), st.text(max_size=30), st.booleans(), st.none()))
    def test_round_trip_property(self, value):
        assert decode_value(encode_value(value)) == value


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 101, 7919):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (1, 4, 100, 561, 7917):
            assert not is_probable_prime(c)

    def test_generate_prime_bits(self):
        p = generate_prime(64)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(CryptoError):
            generate_prime(4)

    def test_modular_inverse(self):
        assert (modular_inverse(3, 11) * 3) % 11 == 1
        with pytest.raises(CryptoError):
            modular_inverse(6, 9)


class TestMasterKeyAndKeyChain:
    def test_generate_is_random(self):
        assert MasterKey.generate().material != MasterKey.generate().material

    def test_passphrase_is_deterministic(self):
        assert MasterKey.from_passphrase("x") == MasterKey.from_passphrase("x")
        assert MasterKey.from_passphrase("x") != MasterKey.from_passphrase("y")

    def test_short_key_rejected(self):
        with pytest.raises(KeyError_):
            MasterKey(b"short")

    def test_keychain_path_determinism(self, keychain):
        assert keychain.key_for("a", "b") == keychain.key_for("a", "b")
        assert keychain.key_for("a", "b") != keychain.key_for("a", "c")
        assert keychain.key_for("a", "b") != keychain.key_for("a/b")

    def test_keychain_empty_path_rejected(self, keychain):
        with pytest.raises(KeyError_):
            keychain.key_for()

    def test_purpose_accessors_are_distinct(self, keychain):
        keys = {
            keychain.relation_key(),
            keychain.attribute_key(),
            keychain.constant_key("t", "a", "det"),
            keychain.constant_key("t", "a", "ope"),
            keychain.constant_key("t", "b", "det"),
            keychain.onion_key("t", "a", "EQ", "DET"),
            keychain.join_key("g"),
        }
        assert len(keys) == 7

    def test_different_masters_different_keys(self):
        chain_a = KeyChain(MasterKey.from_passphrase("a"))
        chain_b = KeyChain(MasterKey.from_passphrase("b"))
        assert chain_a.relation_key() != chain_b.relation_key()
