"""Deterministic tests of the asynchronous Paillier noise-pool refill.

``refill_async`` used to return a bare ``threading.Thread``: tests could not
wait for it deterministically, and an exception inside the refill died with
the daemon thread.  The :class:`~repro.crypto.hom.NoiseRefillHandle` fixes
both — ``join(timeout=...)`` reports completion, the error is recorded, and
:meth:`~repro.cryptdb.proxy.ProxySession.stream` re-raises a failed refill
on the *caller's* thread at the start of the next batch.
"""

from __future__ import annotations

import time

import pytest

from repro.crypto.hom import NoiseRefillHandle, PaillierNoisePool
from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import CryptDBProxy
from repro.mining.incremental import StreamingQueryLog
from repro.sql.parser import parse_query


@pytest.fixture
def cold_pool(paillier_keypair) -> PaillierNoisePool:
    """An empty pool over the shared session key (nothing precomputed)."""
    return PaillierNoisePool(paillier_keypair.public, size=8, eager=False)


class TestNoiseRefillHandle:
    def test_join_is_deterministic(self, cold_pool):
        assert len(cold_pool) == 0
        handle = cold_pool.refill_async()
        assert isinstance(handle, NoiseRefillHandle)
        assert handle.join(timeout=30.0) is True
        assert not handle.is_alive()
        assert handle.error is None
        handle.raise_if_failed()  # no-op on success
        assert len(cold_pool) == cold_pool.target_size

    def test_running_refill_is_deduplicated(self, cold_pool, monkeypatch):
        original = PaillierNoisePool._fresh_factor

        def slow_factor(self):
            time.sleep(0.01)
            return original(self)

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", slow_factor)
        first = cold_pool.refill_async()
        second = cold_pool.refill_async()
        assert second is first
        assert first.join(timeout=30.0) is True
        assert len(cold_pool) == cold_pool.target_size

    def test_failure_is_recorded_not_swallowed(self, cold_pool, monkeypatch):
        def broken_factor(self):
            raise RuntimeError("entropy source unplugged")

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", broken_factor)
        handle = cold_pool.refill_async()
        assert handle.join(timeout=30.0) is True
        assert isinstance(handle.error, RuntimeError)
        with pytest.raises(RuntimeError, match="entropy source unplugged"):
            handle.raise_if_failed()

    def test_failed_refill_does_not_block_the_next_one(self, cold_pool, monkeypatch):
        def broken_factor(self):
            raise RuntimeError("transient")

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", broken_factor)
        failed = cold_pool.refill_async()
        assert failed.join(timeout=30.0) is True
        monkeypatch.undo()
        retry = cold_pool.refill_async()
        assert retry is not failed
        assert retry.join(timeout=30.0) is True
        assert len(cold_pool) == cold_pool.target_size

    def test_single_transient_failure_is_absorbed_by_the_retry(
        self, cold_pool, monkeypatch
    ):
        """Regression: one transient fault used to poison the whole refill.

        The handle's bounded auto-retry now rides it out — the refill
        succeeds on the second attempt and records no error, so the next
        ``stream`` call that joins the handle never sees the blip.
        """
        original = PaillierNoisePool._fresh_factor
        failures = iter([RuntimeError("entropy blip")])

        def flaky_factor(self):
            error = next(failures, None)
            if error is not None:
                raise error
            return original(self)

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", flaky_factor)
        handle = cold_pool.refill_async(retries=2)
        assert handle.join(timeout=30.0) is True
        assert handle.error is None
        assert handle.attempts == 2  # first attempt faulted, second landed
        handle.raise_if_failed()  # nothing surfaces
        assert len(cold_pool) == cold_pool.target_size

    def test_exhausted_retry_budget_still_surfaces(self, cold_pool, monkeypatch):
        def broken_factor(self):
            raise RuntimeError("entropy source unplugged")

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", broken_factor)
        handle = cold_pool.refill_async(retries=1)
        assert handle.join(timeout=30.0) is True
        assert handle.attempts == 2  # the budget: 1 try + 1 retry
        with pytest.raises(RuntimeError, match="entropy source unplugged"):
            handle.raise_if_failed()

    def test_negative_retry_budget_is_rejected(self, cold_pool):
        from repro.exceptions import EncryptionError

        with pytest.raises(EncryptionError, match="negative"):
            cold_pool.refill_async(retries=-1)


class TestStreamSurfacesRefillFailure:
    @pytest.fixture
    def session(self, small_database):
        proxy = CryptDBProxy(
            KeyChain(MasterKey.from_passphrase("refill-tests")), paillier_bits=256
        )
        proxy.encrypt_database(small_database)
        with proxy.session(backend="sqlite", on_unsupported="skip") as session:
            yield session

    def test_stream_reraises_previous_refill_failure(self, session, monkeypatch):
        sink = StreamingQueryLog()
        batch = [parse_query("SELECT name FROM users WHERE age > 30")]

        def broken_factor(self):
            raise RuntimeError("refill died in the background")

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", broken_factor)
        encrypted = session.stream(batch, into=sink)  # schedules the doomed refill
        assert len(encrypted) == 1
        handle = session.last_refill
        assert handle is not None
        assert handle.join(timeout=30.0) is True
        with pytest.raises(RuntimeError, match="refill died in the background"):
            session.stream(batch, into=sink)

    def test_stream_clears_a_surfaced_failure(self, session, monkeypatch):
        sink = StreamingQueryLog()
        batch = [parse_query("SELECT name FROM users WHERE age > 30")]

        def broken_factor(self):
            raise RuntimeError("one-off failure")

        monkeypatch.setattr(PaillierNoisePool, "_fresh_factor", broken_factor)
        session.stream(batch, into=sink)
        assert session.last_refill.join(timeout=30.0) is True
        monkeypatch.undo()
        with pytest.raises(RuntimeError, match="one-off failure"):
            session.stream(batch, into=sink)
        # The failure was surfaced exactly once; streaming then resumes.
        encrypted = session.stream(batch, into=sink)
        assert len(encrypted) == 1
        assert session.last_refill.join(timeout=30.0) is True
        assert session.last_refill is None or session.last_refill.error is None
