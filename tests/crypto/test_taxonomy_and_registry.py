"""Tests for the Figure 1 taxonomy and the scheme registry."""

from __future__ import annotations

import pytest

from repro.crypto.base import EncryptionClass
from repro.crypto.det import DeterministicScheme
from repro.crypto.hom import PaillierScheme
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.crypto.registry import SchemeRegistry, default_registry
from repro.crypto.taxonomy import (
    SECURITY_LEVELS,
    EncryptionTaxonomy,
    default_taxonomy,
)
from repro.exceptions import CryptoError, TaxonomyError


class TestSecurityLevels:
    def test_figure1_rows(self):
        taxonomy = default_taxonomy()
        assert taxonomy.security_level(EncryptionClass.PROB) == 3
        assert taxonomy.security_level(EncryptionClass.HOM) == 3
        assert taxonomy.security_level(EncryptionClass.DET) == 2
        assert taxonomy.security_level(EncryptionClass.JOIN) == 2
        assert taxonomy.security_level(EncryptionClass.OPE) == 1
        assert taxonomy.security_level(EncryptionClass.JOIN_OPE) == 1

    def test_plain_is_weakest(self):
        assert SECURITY_LEVELS[EncryptionClass.PLAIN] == 0

    def test_more_secure_is_strict(self):
        taxonomy = default_taxonomy()
        assert taxonomy.more_secure(EncryptionClass.PROB, EncryptionClass.DET)
        assert not taxonomy.more_secure(EncryptionClass.PROB, EncryptionClass.HOM)
        assert not taxonomy.more_secure(EncryptionClass.OPE, EncryptionClass.DET)

    def test_at_least_as_secure(self):
        taxonomy = default_taxonomy()
        assert taxonomy.at_least_as_secure(EncryptionClass.PROB, EncryptionClass.HOM)
        assert taxonomy.at_least_as_secure(EncryptionClass.DET, EncryptionClass.OPE)
        assert not taxonomy.at_least_as_secure(EncryptionClass.OPE, EncryptionClass.DET)


class TestSubclassRelation:
    def test_figure1_edges(self):
        taxonomy = default_taxonomy()
        assert taxonomy.is_subclass(EncryptionClass.HOM, EncryptionClass.PROB)
        assert taxonomy.is_subclass(EncryptionClass.OPE, EncryptionClass.DET)
        assert taxonomy.is_subclass(EncryptionClass.JOIN, EncryptionClass.DET)
        assert taxonomy.is_subclass(EncryptionClass.JOIN_OPE, EncryptionClass.JOIN)
        assert taxonomy.is_subclass(EncryptionClass.JOIN_OPE, EncryptionClass.DET)

    def test_reflexive(self):
        assert default_taxonomy().is_subclass(EncryptionClass.DET, EncryptionClass.DET)

    def test_non_edges(self):
        taxonomy = default_taxonomy()
        assert not taxonomy.is_subclass(EncryptionClass.PROB, EncryptionClass.HOM)
        assert not taxonomy.is_subclass(EncryptionClass.DET, EncryptionClass.PROB)

    def test_superclasses_and_subclasses(self):
        taxonomy = default_taxonomy()
        assert EncryptionClass.DET in taxonomy.superclasses(EncryptionClass.JOIN_OPE)
        assert EncryptionClass.JOIN_OPE in taxonomy.subclasses(EncryptionClass.DET)

    def test_cyclic_taxonomy_rejected(self):
        with pytest.raises(TaxonomyError):
            EncryptionTaxonomy(
                subclass_edges=[
                    (EncryptionClass.HOM, EncryptionClass.PROB),
                    (EncryptionClass.PROB, EncryptionClass.HOM),
                ]
            )

    def test_unknown_class_in_edge_rejected(self):
        with pytest.raises(TaxonomyError):
            EncryptionTaxonomy(
                levels={EncryptionClass.PROB: 3},
                subclass_edges=[(EncryptionClass.HOM, EncryptionClass.PROB)],
            )


class TestSelectionPrimitives:
    def test_most_secure(self):
        taxonomy = default_taxonomy()
        assert set(taxonomy.most_secure([EncryptionClass.DET, EncryptionClass.OPE])) == {
            EncryptionClass.DET
        }
        assert set(
            taxonomy.most_secure([EncryptionClass.PROB, EncryptionClass.HOM, EncryptionClass.DET])
        ) == {EncryptionClass.PROB, EncryptionClass.HOM}

    def test_most_secure_empty_rejected(self):
        with pytest.raises(TaxonomyError):
            default_taxonomy().most_secure([])

    def test_revealed_capabilities_subset_order(self):
        taxonomy = default_taxonomy()
        assert taxonomy.reveals_strictly_less(EncryptionClass.PROB, EncryptionClass.HOM)
        assert taxonomy.reveals_strictly_less(EncryptionClass.DET, EncryptionClass.OPE)
        assert taxonomy.reveals_strictly_less(EncryptionClass.PROB, EncryptionClass.OPE)
        assert not taxonomy.reveals_strictly_less(EncryptionClass.HOM, EncryptionClass.PROB)
        assert not taxonomy.reveals_strictly_less(EncryptionClass.DET, EncryptionClass.DET)
        # DET and HOM are incomparable: neither level nor capabilities decide.
        assert not default_taxonomy().reveals_strictly_less(
            EncryptionClass.DET, EncryptionClass.HOM
        )

    def test_figure_rendering_mentions_all_classes(self):
        figure = default_taxonomy().to_figure()
        for encryption_class in ("PROB", "HOM", "DET", "JOIN", "OPE", "JOIN-OPE"):
            assert encryption_class in figure


class TestRegistry:
    def test_default_registry_covers_figure1(self, keychain):
        registry = default_registry(paillier_bits=256)
        for encryption_class in (
            EncryptionClass.PROB,
            EncryptionClass.DET,
            EncryptionClass.OPE,
            EncryptionClass.JOIN,
            EncryptionClass.JOIN_OPE,
            EncryptionClass.HOM,
            EncryptionClass.PLAIN,
        ):
            assert registry.supports(encryption_class)
            scheme = registry.create(encryption_class, keychain.key_for("reg-test"))
            assert scheme is not None

    def test_created_schemes_have_expected_types(self, keychain):
        registry = default_registry(paillier_bits=256)
        key = keychain.key_for("reg")
        assert isinstance(registry.create(EncryptionClass.PROB, key), ProbabilisticScheme)
        assert isinstance(registry.create(EncryptionClass.DET, key), DeterministicScheme)
        assert isinstance(registry.create(EncryptionClass.OPE, key), OrderPreservingScheme)
        assert isinstance(registry.create(EncryptionClass.HOM, key), PaillierScheme)

    def test_paillier_instance_is_cached(self, keychain):
        registry = default_registry(paillier_bits=256)
        first = registry.create(EncryptionClass.HOM, keychain.key_for("a"))
        second = registry.create(EncryptionClass.HOM, keychain.key_for("b"))
        assert first is second

    def test_create_for_derives_from_keychain(self, keychain):
        registry = default_registry(paillier_bits=256)
        a = registry.create_for(EncryptionClass.DET, keychain, "col", "a")
        b = registry.create_for(EncryptionClass.DET, keychain, "col", "b")
        assert a.encrypt("x") != b.encrypt("x")

    def test_unknown_class_raises(self, keychain):
        registry = SchemeRegistry()
        with pytest.raises(CryptoError):
            registry.create(EncryptionClass.DET, keychain.key_for("x"))

    def test_ope_domain_configurable(self, keychain):
        registry = default_registry(ope_domain=(0, 100))
        scheme = registry.create(EncryptionClass.OPE, keychain.key_for("x"))
        assert isinstance(scheme, OrderPreservingScheme)
        assert scheme.domain_max == 100
