"""Property-based equivalence tests: crypto fast paths vs reference oracles.

The crypto layer's speedups (binomial + noise-pool Paillier encryption, CRT
decryption, cached OPE descent) must be *invisible*: every fast path has a
scalar ``*_reference`` oracle — the seed implementation — and these tests
assert equivalence across random keys, messages (negative integers and
fixed-point reals included) and adversarial OPE domains.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.ope import OrderPreservingScheme


@pytest.fixture(scope="module")
def schemes(paillier_keypair, paillier_keypair_alt) -> list[PaillierScheme]:
    """Two independent random keys (session key pairs; no per-test keygen)."""
    return [PaillierScheme(paillier_keypair), PaillierScheme(paillier_keypair_alt)]


class TestPaillierDecryptEquivalence:
    """CRT decrypt ≡ L-function decrypt, on both ciphertext kinds."""

    @settings(max_examples=40, deadline=None)
    @given(message=st.integers(min_value=-(10**9), max_value=10**9))
    def test_crt_equals_l_function_on_raw_residues(self, schemes, message):
        for scheme in schemes:
            residue = message % scheme.public_key.n
            for ciphertext in (
                scheme.encrypt_raw(residue),
                scheme.encrypt_raw_reference(residue),
            ):
                assert (
                    scheme.decrypt_raw(ciphertext)
                    == scheme.decrypt_raw_reference(ciphertext)
                    == residue
                )

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.one_of(
            st.integers(min_value=-(10**9), max_value=10**9),
            st.floats(
                min_value=-(10**6), max_value=10**6, allow_nan=False, allow_infinity=False
            ),
        )
    )
    def test_round_trip_negative_and_fixed_point(self, schemes, value):
        for scheme in schemes:
            ciphertext = scheme.encrypt(value)
            decrypted = scheme.decrypt(ciphertext)
            reference = scheme._decode(scheme.decrypt_raw_reference(ciphertext))
            assert decrypted == reference
            assert decrypted == pytest.approx(value, abs=1e-6)


class TestPaillierEncryptEquivalence:
    """Binomial ``(1 + m·n)`` ≡ ``pow(g, m, n²)`` under identical blinding."""

    @settings(max_examples=40, deadline=None)
    @given(message=st.integers(min_value=0, max_value=2**128))
    def test_binomial_equals_pow_with_fixed_noise(self, schemes, message):
        for scheme in schemes:
            public = scheme.public_key
            n, n_sq = public.n, public.n_squared
            residue = message % n
            noise = scheme.noise_pool.take()
            binomial = ((1 + residue * n) * noise) % n_sq
            pow_based = (pow(public.g, residue, n_sq) * noise) % n_sq
            assert binomial == pow_based

    @settings(max_examples=25, deadline=None)
    @given(
        value=st.one_of(
            st.integers(min_value=-(10**9), max_value=10**9),
            st.floats(
                min_value=-(10**6), max_value=10**6, allow_nan=False, allow_infinity=False
            ),
        )
    )
    def test_fast_and_reference_ciphertexts_decrypt_identically(self, schemes, value):
        for scheme in schemes:
            encoded = scheme._encode(value)
            fast = scheme.encrypt(value)
            reference = scheme.encrypt_raw_reference(encoded)
            assert scheme.decrypt(fast) == scheme.decrypt(reference)
            assert scheme.decrypt_raw(reference) == scheme.decrypt_raw_reference(fast)


#: Adversarial OPE domains: tiny, asymmetric around zero, huge and offset —
#: the shapes where descent/cache bookkeeping errors would surface first.
_ADVERSARIAL_DOMAINS = [
    (0, 1),
    (-1, 1),
    (0, 2),
    (-7, 5),
    (0, 10_000),
    (-(2**31), 2**31 - 1),
    (2**40, 2**40 + 1000),
    (-(2**40), -(2**40) + 63),
]


def _ope_for(domain: tuple[int, int], label: str = "fast-paths") -> OrderPreservingScheme:
    keychain = KeyChain(MasterKey.from_passphrase(f"ope-{label}"))
    return OrderPreservingScheme(
        keychain.key_for("ope", str(domain[0]), str(domain[1])),
        domain_min=domain[0],
        domain_max=domain[1],
    )


class TestOpeCachedEqualsUncached:
    """Cached descent ≡ uncached descent: bits, monotonicity, injectivity."""

    @pytest.mark.parametrize("domain", _ADVERSARIAL_DOMAINS)
    def test_cached_matches_reference_across_domain(self, domain):
        ope = _ope_for(domain)
        lo, hi = domain
        step = max(1, (hi - lo) // 64)
        values = sorted({lo, hi, *range(lo, hi + 1, step)})
        cached = [ope.encrypt(v) for v in values]
        assert cached == [ope.encrypt_reference(v) for v in values]
        # Strict monotonicity + injectivity on the sampled (sorted) values.
        assert all(a < b for a, b in zip(cached, cached[1:]))
        assert [ope.decrypt(c) for c in cached] == values

    @pytest.mark.parametrize("domain", _ADVERSARIAL_DOMAINS)
    def test_batch_matches_reference_across_domain(self, domain):
        ope = _ope_for(domain, label="batch")
        lo, hi = domain
        step = max(1, (hi - lo) // 32)
        values = [hi, lo, *range(lo, hi + 1, step), lo, hi]  # unsorted + repeats
        assert ope.encrypt_many(values) == [ope.encrypt_reference(v) for v in values]

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_cached_order_and_equivalence_property(self, a, b):
        ope = _ope_for((-(2**31), 2**31 - 1), label="property")
        ca, cb = ope.encrypt_many([a, b])
        assert ca == ope.encrypt_reference(a)
        assert cb == ope.encrypt_reference(b)
        assert (ca < cb) == (a < b) and (ca == cb) == (a == b)

    def test_cache_statistics_track_reuse(self):
        ope = _ope_for((0, 2**20), label="stats")
        assert ope.cache_stats()["nodes"] == 0
        ope.encrypt(17)
        first = ope.cache_stats()
        assert first["misses"] == first["nodes"] > 0
        assert first["hits"] == 0
        ope.encrypt(17)  # identical descent: every node hits
        second = ope.cache_stats()
        assert second["hits"] == first["misses"]
        assert second["nodes"] == first["nodes"]
        ope.clear_cache()
        assert ope.cache_stats() == {
            "nodes": 0,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
        }

    def test_cache_eviction_bounds_memory(self):
        keychain = KeyChain(MasterKey.from_passphrase("ope-eviction"))
        ope = OrderPreservingScheme(
            keychain.key_for("bounded"), domain_min=0, domain_max=2**20, cache_max_nodes=50
        )
        reference = [ope.encrypt_reference(v) for v in range(0, 2**20, 2**13)]
        assert [ope.encrypt(v) for v in range(0, 2**20, 2**13)] == reference
        stats = ope.cache_stats()
        assert stats["evictions"] > 0
        assert stats["nodes"] <= 50
