"""Tests for Paillier homomorphic encryption."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.base import EncryptionClass
from repro.crypto.hom import PaillierCiphertext, PaillierKeyPair, PaillierScheme
from repro.exceptions import DecryptionError, EncryptionError


@pytest.fixture(scope="module")
def scheme() -> PaillierScheme:
    return PaillierScheme(PaillierKeyPair.generate(256))


class TestKeyGeneration:
    def test_modulus_size(self, paillier_keypair):
        assert paillier_keypair.public.bits >= 255

    def test_rejects_tiny_modulus(self):
        with pytest.raises(EncryptionError):
            PaillierKeyPair.generate(32)


class TestEncryptDecrypt:
    @pytest.mark.parametrize("value", [0, 1, -1, 42, -42, 123456, -99999, 3.25, -0.5])
    def test_round_trip(self, scheme, value):
        assert scheme.decrypt(scheme.encrypt(value)) == pytest.approx(value)

    def test_probabilistic(self, scheme):
        assert scheme.encrypt(5).value != scheme.encrypt(5).value

    def test_rejects_non_numeric(self, scheme):
        for bad in ("x", None, True):
            with pytest.raises(EncryptionError):
                scheme.encrypt(bad)

    def test_rejects_oversized_value(self, scheme):
        with pytest.raises(EncryptionError):
            scheme.encrypt(int(scheme.public_key.n))

    def test_decrypt_requires_matching_key(self, scheme):
        other = PaillierScheme(PaillierKeyPair.generate(256))
        ciphertext = other.encrypt(5)
        with pytest.raises(DecryptionError):
            scheme.decrypt(ciphertext)

    def test_decrypt_rejects_garbage(self, scheme):
        with pytest.raises(DecryptionError):
            scheme.decrypt("nonsense")

    def test_class_metadata(self, scheme):
        assert scheme.encryption_class is EncryptionClass.HOM
        assert scheme.supports_addition
        assert scheme.is_probabilistic


class TestHomomorphism:
    def test_ciphertext_addition(self, scheme):
        total = scheme.encrypt(5) + scheme.encrypt(7)
        assert scheme.decode_sum(total) == 12

    def test_addition_with_floats(self, scheme):
        total = scheme.encrypt(2.5) + scheme.encrypt(0.25)
        assert scheme.decode_sum(total) == pytest.approx(2.75)

    def test_addition_with_negatives(self, scheme):
        total = scheme.encrypt(10) + scheme.encrypt(-4)
        assert scheme.decode_sum(total) == 6

    def test_add_many(self, scheme):
        values = [3, -1, 10, 7, 0, 25]
        total = scheme.add(*(scheme.encrypt(v) for v in values))
        assert scheme.decode_sum(total) == sum(values)

    def test_add_requires_at_least_one(self, scheme):
        with pytest.raises(EncryptionError):
            scheme.add()

    def test_plaintext_addition_on_raw_residues(self, scheme):
        ciphertext = scheme.encrypt_raw(100) + 23
        assert scheme.decrypt_raw(ciphertext) == 123

    def test_scalar_multiplication_on_raw_residues(self, scheme):
        ciphertext = scheme.encrypt_raw(21) * 2
        assert scheme.decrypt_raw(ciphertext) == 42
        ciphertext = 3 * scheme.encrypt_raw(5)
        assert scheme.decrypt_raw(ciphertext) == 15

    def test_mixing_keys_rejected(self, scheme):
        other = PaillierScheme(PaillierKeyPair.generate(256))
        with pytest.raises(EncryptionError):
            scheme.encrypt(1) + other.encrypt(2)

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(min_value=-(10**6), max_value=10**6),
        b=st.integers(min_value=-(10**6), max_value=10**6),
    )
    def test_additive_homomorphism_property(self, scheme, a, b):
        assert scheme.decode_sum(scheme.encrypt(a) + scheme.encrypt(b)) == a + b

    @settings(max_examples=20, deadline=None)
    @given(
        value=st.integers(min_value=-(10**6), max_value=10**6),
        scalar=st.integers(min_value=0, max_value=50),
    )
    def test_scalar_multiplication_property(self, scheme, value, scalar):
        ciphertext = scheme.encrypt_raw(value % scheme.public_key.n) * scalar
        expected = (value * scalar) % scheme.public_key.n
        assert scheme.decrypt_raw(ciphertext) == expected


class TestCiphertextValue:
    def test_ciphertext_is_bound_to_public_key(self, scheme):
        ciphertext = scheme.encrypt(5)
        assert isinstance(ciphertext, PaillierCiphertext)
        assert ciphertext.public_key == scheme.public_key
        assert 0 < ciphertext.value < scheme.public_key.n_squared
