"""Tests for Paillier homomorphic encryption (fast paths included).

Key pairs are expensive to generate, so every test shares the session-scoped
``paillier_scheme``/``paillier_scheme_alt`` fixtures from ``tests/conftest.py``
instead of regenerating keys per test/module.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.base import EncryptionClass
from repro.crypto.hom import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierNoisePool,
    PaillierScheme,
)
from repro.exceptions import DecryptionError, EncryptionError


@pytest.fixture
def scheme(paillier_scheme: PaillierScheme) -> PaillierScheme:
    return paillier_scheme


class TestKeyGeneration:
    def test_modulus_size(self, paillier_keypair):
        assert paillier_keypair.public.bits >= 255

    def test_rejects_tiny_modulus(self):
        with pytest.raises(EncryptionError):
            PaillierKeyPair.generate(32)

    def test_private_key_carries_factors(self, paillier_keypair):
        private = paillier_keypair.private
        assert private.has_crt
        assert private.p * private.q == paillier_keypair.public.n


class TestEncryptDecrypt:
    @pytest.mark.parametrize("value", [0, 1, -1, 42, -42, 123456, -99999, 3.25, -0.5])
    def test_round_trip(self, scheme, value):
        assert scheme.decrypt(scheme.encrypt(value)) == pytest.approx(value)

    def test_probabilistic(self, scheme):
        assert scheme.encrypt(5).value != scheme.encrypt(5).value

    def test_rejects_non_numeric(self, scheme):
        for bad in ("x", None, True):
            with pytest.raises(EncryptionError):
                scheme.encrypt(bad)

    def test_rejects_oversized_value(self, scheme):
        with pytest.raises(EncryptionError):
            scheme.encrypt(int(scheme.public_key.n))

    def test_decrypt_requires_matching_key(self, scheme, paillier_scheme_alt):
        ciphertext = paillier_scheme_alt.encrypt(5)
        with pytest.raises(DecryptionError):
            scheme.decrypt(ciphertext)

    def test_decrypt_rejects_garbage(self, scheme):
        with pytest.raises(DecryptionError):
            scheme.decrypt("nonsense")

    def test_class_metadata(self, scheme):
        assert scheme.encryption_class is EncryptionClass.HOM
        assert scheme.supports_addition
        assert scheme.is_probabilistic


class TestFastPaths:
    """Binomial + pool encryption and CRT decryption vs the reference oracle."""

    def test_fast_and_reference_ciphertexts_interchangeable(self, scheme):
        for message in (0, 1, 12345, scheme.public_key.n - 1):
            fast = scheme.encrypt_raw(message)
            reference = scheme.encrypt_raw_reference(message)
            for ciphertext in (fast, reference):
                assert scheme.decrypt_raw(ciphertext) == message
                assert scheme.decrypt_raw_reference(ciphertext) == message

    def test_reference_decrypt_requires_matching_key(self, scheme, paillier_scheme_alt):
        with pytest.raises(DecryptionError):
            scheme.decrypt_raw_reference(paillier_scheme_alt.encrypt_raw(1))

    def test_crt_fallback_without_factors(self, paillier_keypair):
        from repro.crypto.hom import PaillierPrivateKey

        stripped = PaillierKeyPair(
            paillier_keypair.public,
            PaillierPrivateKey(paillier_keypair.private.lam, paillier_keypair.private.mu),
        )
        scheme = PaillierScheme(stripped, pool_size=2)
        assert not stripped.private.has_crt
        assert scheme.fast_path_stats()["crt_decrypt"] is False
        assert scheme.decrypt(scheme.encrypt(77)) == 77

    def test_encrypt_many_round_trip(self, scheme):
        values = [0, 1, -5, 123456, -99999, 17, 17]
        ciphertexts = scheme.encrypt_many(values)
        assert scheme.decrypt_many(ciphertexts) == values
        # Probabilistic: equal plaintexts must NOT share ciphertexts.
        assert ciphertexts[-1].value != ciphertexts[-2].value

    def test_encrypt_many_rejects_non_numeric(self, scheme):
        with pytest.raises(EncryptionError):
            scheme.encrypt_many([1, "x", 2])

    def test_decrypt_many_deduplicates_repeated_ciphertexts(self, scheme):
        ciphertext = scheme.encrypt(99)
        assert scheme.decrypt_many([ciphertext, ciphertext, ciphertext]) == [99, 99, 99]

    def test_decrypt_many_rejects_garbage(self, scheme):
        with pytest.raises(DecryptionError):
            scheme.decrypt_many([scheme.encrypt(1), "nonsense"])

    def test_decrypt_many_dedup_does_not_bypass_key_check(self, scheme, paillier_scheme_alt):
        ciphertext = scheme.encrypt(5)
        foreign = PaillierCiphertext(ciphertext.value, paillier_scheme_alt.public_key)
        with pytest.raises(DecryptionError):
            scheme.decrypt_many([ciphertext, foreign])


class TestNoisePool:
    def test_eager_fill_and_take(self, paillier_keypair):
        pool = PaillierNoisePool(paillier_keypair.public, size=4)
        assert len(pool) == 4
        factors = {pool.take() for _ in range(4)}
        assert len(factors) == 4  # every blinding factor is served once
        assert len(pool) == 0

    def test_on_demand_fallback_when_empty(self, paillier_keypair):
        pool = PaillierNoisePool(paillier_keypair.public, size=0)
        factor = pool.take()
        n_sq = paillier_keypair.public.n_squared
        assert 0 < factor < n_sq
        assert pool.stats()["served_on_demand"] == 1

    def test_ensure_and_refill(self, paillier_keypair):
        pool = PaillierNoisePool(paillier_keypair.public, size=3, eager=False)
        pool.ensure(5)
        assert len(pool) == 5
        for _ in range(5):
            pool.take()
        pool.refill()
        assert len(pool) == 3

    def test_background_refill(self, paillier_keypair):
        pool = PaillierNoisePool(paillier_keypair.public, size=8, eager=False)
        thread = pool.refill_async()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert len(pool) == 8

    def test_scheme_precompute_tops_up_pool(self, paillier_keypair):
        scheme = PaillierScheme(paillier_keypair, pool_size=0, eager_pool=False)
        scheme.precompute(6)
        assert scheme.fast_path_stats()["noise_pool"]["pooled"] == 6

    def test_rejects_negative_size(self, paillier_keypair):
        with pytest.raises(EncryptionError):
            PaillierNoisePool(paillier_keypair.public, size=-1)


class TestHomomorphism:
    def test_ciphertext_addition(self, scheme):
        total = scheme.encrypt(5) + scheme.encrypt(7)
        assert scheme.decode_sum(total) == 12

    def test_addition_with_floats(self, scheme):
        total = scheme.encrypt(2.5) + scheme.encrypt(0.25)
        assert scheme.decode_sum(total) == pytest.approx(2.75)

    def test_addition_with_negatives(self, scheme):
        total = scheme.encrypt(10) + scheme.encrypt(-4)
        assert scheme.decode_sum(total) == 6

    def test_add_many(self, scheme):
        values = [3, -1, 10, 7, 0, 25]
        total = scheme.add(*(scheme.encrypt(v) for v in values))
        assert scheme.decode_sum(total) == sum(values)

    def test_add_requires_at_least_one(self, scheme):
        with pytest.raises(EncryptionError):
            scheme.add()

    def test_plaintext_addition_on_raw_residues(self, scheme):
        ciphertext = scheme.encrypt_raw(100) + 23
        assert scheme.decrypt_raw(ciphertext) == 123

    def test_scalar_multiplication_on_raw_residues(self, scheme):
        ciphertext = scheme.encrypt_raw(21) * 2
        assert scheme.decrypt_raw(ciphertext) == 42
        ciphertext = 3 * scheme.encrypt_raw(5)
        assert scheme.decrypt_raw(ciphertext) == 15

    def test_mixing_keys_rejected(self, scheme, paillier_scheme_alt):
        with pytest.raises(EncryptionError):
            scheme.encrypt(1) + paillier_scheme_alt.encrypt(2)

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(min_value=-(10**6), max_value=10**6),
        b=st.integers(min_value=-(10**6), max_value=10**6),
    )
    def test_additive_homomorphism_property(self, scheme, a, b):
        assert scheme.decode_sum(scheme.encrypt(a) + scheme.encrypt(b)) == a + b

    @settings(max_examples=20, deadline=None)
    @given(
        value=st.integers(min_value=-(10**6), max_value=10**6),
        scalar=st.integers(min_value=0, max_value=50),
    )
    def test_scalar_multiplication_property(self, scheme, value, scalar):
        ciphertext = scheme.encrypt_raw(value % scheme.public_key.n) * scalar
        expected = (value * scalar) % scheme.public_key.n
        assert scheme.decrypt_raw(ciphertext) == expected


class TestCiphertextValue:
    def test_ciphertext_is_bound_to_public_key(self, scheme):
        ciphertext = scheme.encrypt(5)
        assert isinstance(ciphertext, PaillierCiphertext)
        assert ciphertext.public_key == scheme.public_key
        assert 0 < ciphertext.value < scheme.public_key.n_squared
