"""Tests for order-preserving encryption (including property-based checks)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyChain, MasterKey
from repro.crypto.ope import OrderPreservingScheme
from repro.exceptions import DecryptionError, EncryptionError, KeyError_


@pytest.fixture
def small_ope(keychain) -> OrderPreservingScheme:
    return OrderPreservingScheme(keychain.key_for("ope"), domain_min=0, domain_max=10_000)


@pytest.fixture
def signed_ope(keychain) -> OrderPreservingScheme:
    return OrderPreservingScheme(keychain.key_for("ope-signed"))


class TestBasics:
    def test_round_trip(self, small_ope):
        for value in (0, 1, 2, 77, 5000, 9999, 10_000):
            assert small_ope.decrypt(small_ope.encrypt(value)) == value

    def test_deterministic(self, small_ope):
        assert small_ope.encrypt(123) == small_ope.encrypt(123)

    def test_strictly_monotone_on_sample(self, small_ope):
        values = [0, 1, 2, 3, 10, 57, 58, 100, 4999, 5000, 9999, 10_000]
        ciphertexts = [small_ope.encrypt(v) for v in values]
        assert ciphertexts == sorted(ciphertexts)
        assert len(set(ciphertexts)) == len(values)

    def test_ciphertexts_within_range(self, small_ope):
        for value in (0, 5000, 10_000):
            assert 0 <= small_ope.encrypt(value) < small_ope.range_size

    def test_negative_domain(self, signed_ope):
        assert signed_ope.encrypt(-100) < signed_ope.encrypt(0) < signed_ope.encrypt(100)
        assert signed_ope.decrypt(signed_ope.encrypt(-12345)) == -12345

    def test_key_separation(self, keychain):
        a = OrderPreservingScheme(keychain.key_for("ope-1"), domain_min=0, domain_max=1000)
        b = OrderPreservingScheme(keychain.key_for("ope-2"), domain_min=0, domain_max=1000)
        assert [a.encrypt(v) for v in range(10)] != [b.encrypt(v) for v in range(10)]

    def test_batch_round_trip_with_repeats(self, small_ope):
        values = [9_999, 0, 42, 42, 5_000, 0]
        ciphertexts = small_ope.encrypt_many(values)
        assert ciphertexts == [small_ope.encrypt_reference(v) for v in values]
        assert small_ope.decrypt_many(ciphertexts) == values

    def test_node_cache_shared_between_encrypt_and_decrypt(self, small_ope):
        ciphertext = small_ope.encrypt(1234)
        nodes_after_encrypt = small_ope.cache_stats()["nodes"]
        assert small_ope.decrypt(ciphertext) == 1234
        stats = small_ope.cache_stats()
        assert stats["nodes"] == nodes_after_encrypt  # decrypt walked cached nodes
        assert stats["hits"] >= nodes_after_encrypt


class TestValidation:
    def test_rejects_non_integers(self, small_ope):
        with pytest.raises(EncryptionError):
            small_ope.encrypt(2.5)
        with pytest.raises(EncryptionError):
            small_ope.encrypt("5")
        with pytest.raises(EncryptionError):
            small_ope.encrypt(True)

    def test_rejects_out_of_domain(self, small_ope):
        with pytest.raises(EncryptionError):
            small_ope.encrypt(10_001)
        with pytest.raises(EncryptionError):
            small_ope.encrypt(-1)

    def test_rejects_bad_domain(self, keychain):
        with pytest.raises(EncryptionError):
            OrderPreservingScheme(keychain.key_for("x"), domain_min=5, domain_max=5)
        with pytest.raises(EncryptionError):
            OrderPreservingScheme(keychain.key_for("x"), domain_min=0, domain_max=10, expansion_bits=0)

    def test_short_key_rejected(self):
        with pytest.raises(KeyError_):
            OrderPreservingScheme(b"short")

    def test_decrypt_rejects_foreign_ciphertext(self, small_ope):
        with pytest.raises(DecryptionError):
            small_ope.decrypt(small_ope.range_size + 5)
        with pytest.raises(DecryptionError):
            small_ope.decrypt("not an int")
        # A ciphertext value that was never produced by encrypt fails the
        # leaf check rather than silently decrypting.
        valid = small_ope.encrypt(500)
        with pytest.raises(DecryptionError):
            small_ope.decrypt(valid + 1 if valid + 1 != small_ope.encrypt(501) else valid + 2)


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=10_000),
        b=st.integers(min_value=0, max_value=10_000),
    )
    def test_order_preserved_property(self, small_ope, a, b):
        ca, cb = small_ope.encrypt(a), small_ope.encrypt(b)
        if a < b:
            assert ca < cb
        elif a > b:
            assert ca > cb
        else:
            assert ca == cb

    @settings(max_examples=60, deadline=None)
    @given(value=st.integers(min_value=0, max_value=10_000))
    def test_decrypt_inverts_encrypt_property(self, small_ope, value):
        assert small_ope.decrypt(small_ope.encrypt(value)) == value

    @settings(max_examples=40, deadline=None)
    @given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_full_default_domain_round_trip(self, signed_ope, value):
        assert signed_ope.decrypt(signed_ope.encrypt(value)) == value

    def test_same_key_same_mapping_across_instances(self):
        keychain = KeyChain(MasterKey.from_passphrase("ope-shared"))
        a = OrderPreservingScheme(keychain.key_for("shared"), domain_min=0, domain_max=500)
        b = OrderPreservingScheme(keychain.key_for("shared"), domain_min=0, domain_max=500)
        assert [a.encrypt(v) for v in range(0, 500, 37)] == [b.encrypt(v) for v in range(0, 500, 37)]
