"""Tests for the SELECT executor."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.executor import QueryExecutor, projection_columns
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import ExecutionError
from repro.sql.parser import parse_query


@pytest.fixture
def executor(small_database) -> QueryExecutor:
    return QueryExecutor(small_database)


def run(executor: QueryExecutor, sql: str):
    return executor.execute(parse_query(sql))


class TestProjection:
    def test_simple_projection(self, executor):
        result = run(executor, "SELECT name FROM users")
        assert result.columns == ("name",)
        assert len(result) == 12

    def test_star_projection(self, executor):
        result = run(executor, "SELECT * FROM users")
        assert set(result.columns) == {"uid", "name", "city", "age", "salary"}
        assert len(result) == 12

    def test_qualified_star(self, executor):
        result = run(executor, "SELECT users.* FROM users WHERE uid = 1")
        assert len(result) == 1
        assert len(result.columns) == 5

    def test_alias_names_result_column(self, executor):
        result = run(executor, "SELECT name AS who FROM users")
        assert result.columns == ("who",)

    def test_expression_projection(self, executor):
        result = run(executor, "SELECT age + 1 FROM users WHERE uid = 1")
        assert result.rows[0][0] == 19

    def test_distinct(self, executor):
        result = run(executor, "SELECT DISTINCT city FROM users")
        assert len(result) == 3

    def test_tuple_set(self, executor):
        result = run(executor, "SELECT city FROM users")
        assert ("Berlin",) in result.tuple_set()

    def test_as_dicts(self, executor):
        rows = run(executor, "SELECT uid, name FROM users WHERE uid = 2").as_dicts()
        assert rows == [{"uid": 2, "name": "user1"}]


class TestFilters:
    def test_equality_filter(self, executor):
        result = run(executor, "SELECT uid FROM users WHERE city = 'Paris'")
        assert len(result) == 4

    def test_range_filter(self, executor):
        result = run(executor, "SELECT uid FROM users WHERE age > 50")
        ages = run(executor, "SELECT age FROM users WHERE age > 50")
        assert all(age > 50 for (age,) in ages.rows)
        assert len(result) == len(ages)

    def test_between_filter(self, executor):
        result = run(executor, "SELECT uid FROM users WHERE age BETWEEN 18 AND 28")
        assert len(result) > 0

    def test_in_filter(self, executor):
        result = run(executor, "SELECT uid FROM users WHERE uid IN (1, 2, 3)")
        assert sorted(row[0] for row in result.rows) == [1, 2, 3]

    def test_compound_filter(self, executor):
        result = run(
            executor, "SELECT uid FROM users WHERE city = 'Berlin' AND age < 40"
        )
        for (uid,) in result.rows:
            check = run(
                executor, f"SELECT city, age FROM users WHERE uid = {uid}"
            ).rows[0]
            assert check[0] == "Berlin" and check[1] < 40

    def test_like_filter(self, executor):
        result = run(executor, "SELECT name FROM users WHERE name LIKE 'user1%'")
        assert {row[0] for row in result.rows} == {"user1", "user10", "user11"}

    def test_limit(self, executor):
        assert len(run(executor, "SELECT uid FROM users LIMIT 3")) == 3


class TestJoins:
    def test_inner_join(self, executor):
        result = run(
            executor,
            "SELECT name, balance FROM users JOIN accounts ON uid = owner_id",
        )
        assert len(result) == 20  # every account matches exactly one user

    def test_join_with_filter(self, executor):
        result = run(
            executor,
            "SELECT name FROM users JOIN accounts ON uid = owner_id WHERE balance < 0",
        )
        assert len(result) > 0

    def test_left_join_keeps_unmatched(self, executor):
        result = run(
            executor,
            "SELECT name, acc_id FROM users LEFT JOIN accounts "
            "ON uid = owner_id AND balance > 100000",
        )
        # no account has balance > 100000, so every user appears once with NULL
        assert len(result) == 12
        assert all(row[1] is None for row in result.rows)

    def test_right_join(self, executor):
        result = run(
            executor,
            "SELECT acc_id, name FROM users RIGHT JOIN accounts ON uid = owner_id",
        )
        assert len(result) == 20

    def test_cross_join_cardinality(self, executor):
        result = run(executor, "SELECT uid, acc_id FROM users CROSS JOIN accounts")
        assert len(result) == 12 * 20

    def test_aliased_join(self, executor):
        result = run(
            executor,
            "SELECT u.name FROM users AS u JOIN accounts AS a ON u.uid = a.owner_id "
            "WHERE a.balance > 0",
        )
        assert len(result) > 0

    def test_duplicate_alias_rejected(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT uid FROM users JOIN users ON uid = uid")


class TestAggregates:
    def test_count_star(self, executor):
        assert run(executor, "SELECT COUNT(*) FROM users").rows[0][0] == 12

    def test_count_with_filter(self, executor):
        count = run(executor, "SELECT COUNT(*) FROM users WHERE city = 'Rome'").rows[0][0]
        assert count == 2

    def test_sum_and_avg(self, executor):
        total = run(executor, "SELECT SUM(age) FROM users").rows[0][0]
        average = run(executor, "SELECT AVG(age) FROM users").rows[0][0]
        assert total == sum(18 + (i * 5) % 60 for i in range(12))
        assert average == pytest.approx(total / 12)

    def test_min_max(self, executor):
        assert run(executor, "SELECT MIN(uid), MAX(uid) FROM users").rows[0] == (1, 12)

    def test_aggregate_over_empty_group(self, executor):
        row = run(executor, "SELECT COUNT(*), SUM(age), MIN(age) FROM users WHERE age > 999").rows[0]
        assert row == (0, None, None)

    def test_group_by(self, executor):
        result = run(executor, "SELECT city, COUNT(*) FROM users GROUP BY city")
        counts = dict(result.rows)
        assert counts == {"Berlin": 6, "Paris": 4, "Rome": 2}

    def test_group_by_with_having(self, executor):
        result = run(
            executor,
            "SELECT city, COUNT(*) FROM users GROUP BY city HAVING COUNT(*) > 3",
        )
        assert {row[0] for row in result.rows} == {"Berlin", "Paris"}

    def test_group_key_must_be_selected_or_grouped(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT name, COUNT(*) FROM users GROUP BY city")

    def test_aggregate_arithmetic(self, executor):
        value = run(executor, "SELECT SUM(age) / COUNT(*) FROM users").rows[0][0]
        assert value == pytest.approx(sum(18 + (i * 5) % 60 for i in range(12)) / 12)

    def test_count_distinct(self, executor):
        assert run(executor, "SELECT COUNT(DISTINCT city) FROM users").rows[0][0] == 3


class TestOrderBy:
    def test_order_ascending(self, executor):
        result = run(executor, "SELECT age FROM users ORDER BY age ASC")
        ages = [row[0] for row in result.rows]
        assert ages == sorted(ages)

    def test_order_descending(self, executor):
        result = run(executor, "SELECT age FROM users ORDER BY age DESC")
        ages = [row[0] for row in result.rows]
        assert ages == sorted(ages, reverse=True)

    def test_order_by_alias(self, executor):
        result = run(executor, "SELECT age AS years FROM users ORDER BY years ASC")
        ages = [row[0] for row in result.rows]
        assert ages == sorted(ages)

    def test_order_by_aggregate(self, executor):
        result = run(
            executor,
            "SELECT city, COUNT(*) FROM users GROUP BY city ORDER BY COUNT(*) DESC",
        )
        counts = [row[1] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_order_by_unprojected_column(self, executor):
        result = run(executor, "SELECT name FROM users ORDER BY salary DESC LIMIT 1")
        assert result.rows == (("user11",),)  # the highest-salary user

    def test_order_by_unprojected_column_with_distinct_rejected(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT DISTINCT city FROM users ORDER BY salary ASC")

    def test_order_by_unprojected_after_group_by_rejected(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT city, COUNT(*) FROM users GROUP BY city ORDER BY salary ASC")

    def test_order_then_limit(self, executor):
        result = run(executor, "SELECT age FROM users ORDER BY age DESC LIMIT 2")
        all_ages = sorted(
            (row[0] for row in run(executor, "SELECT age FROM users").rows), reverse=True
        )
        assert [row[0] for row in result.rows] == all_ages[:2]


class TestErrors:
    def test_unknown_table(self, executor):
        with pytest.raises(Exception):
            run(executor, "SELECT a FROM missing")

    def test_unknown_column(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT nonexistent FROM users")

    def test_star_mixed_with_aggregates_rejected(self, executor):
        with pytest.raises(ExecutionError):
            run(executor, "SELECT *, COUNT(*) FROM users GROUP BY uid")


@pytest.fixture
def nullable_executor() -> QueryExecutor:
    """An executor over a table with NULLs in every column type."""
    database = Database("nullable")
    database.create_table(
        TableSchema(
            "items",
            [
                Column("iid", ColumnType.INTEGER),
                Column("label", ColumnType.TEXT),
                Column("weight", ColumnType.REAL),
            ],
        )
    )
    rows = [
        (1, "Widget", 2.5),
        (2, "widget", None),
        (3, None, 1.0),
        (4, "gadget_pro", 2.5),
        (5, "Gizmo", None),
    ]
    for iid, label, weight in rows:
        database.insert("items", {"iid": iid, "label": label, "weight": weight})
    return QueryExecutor(database)


class TestSqlSurfaceSemantics:
    """Pinned interpreter semantics for the surface the backends must share."""

    def test_is_null(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE weight IS NULL")
        assert result.rows == ((2,), (5,))

    def test_is_not_null(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE label IS NOT NULL")
        assert result.rows == ((1,), (2,), (4,), (5,))

    def test_like_is_case_sensitive(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE label LIKE 'W%'")
        assert result.rows == ((1,),)

    def test_like_underscore_matches_single_character(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE label LIKE '_idget'")
        assert result.rows == ((1,), (2,))

    def test_like_over_null_filters_row(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE label LIKE '%'")
        assert result.rows == ((1,), (2,), (4,), (5,))

    def test_not_like(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items WHERE label NOT LIKE '%i%'")
        assert result.rows == ((4,),)

    def test_distinct_keeps_one_null(self, nullable_executor):
        result = run(nullable_executor, "SELECT DISTINCT weight FROM items")
        assert sorted(result.rows, key=repr) == [(1.0,), (2.5,), (None,)]

    def test_order_by_nulls_last_ascending(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid, weight FROM items ORDER BY weight ASC")
        assert [row[1] for row in result.rows] == [1.0, 2.5, 2.5, None, None]

    def test_order_by_nulls_last_descending(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid, weight FROM items ORDER BY weight DESC")
        assert [row[1] for row in result.rows] == [2.5, 2.5, 1.0, None, None]

    def test_limit_zero(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items LIMIT 0")
        assert result.rows == ()
        assert result.columns == ("iid",)

    def test_limit_beyond_row_count(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid FROM items LIMIT 100")
        assert len(result) == 5

    def test_true_division(self, nullable_executor):
        result = run(nullable_executor, "SELECT iid / 2 FROM items WHERE iid = 5")
        assert result.rows == ((2.5,),)

    def test_null_propagates_through_arithmetic(self, nullable_executor):
        result = run(nullable_executor, "SELECT weight + 1 FROM items WHERE iid = 2")
        assert result.rows == ((None,),)

    def test_count_distinct_skips_nulls(self, nullable_executor):
        result = run(nullable_executor, "SELECT COUNT(DISTINCT weight) FROM items")
        assert result.rows == ((2,),)

    def test_aggregates_over_empty_group(self, nullable_executor):
        result = run(
            nullable_executor, "SELECT COUNT(*), SUM(weight), MIN(label) FROM items WHERE iid > 99"
        )
        assert result.rows == ((0, None, None),)


class TestProjectionColumns:
    """The shared AST-level column-naming rule used by all backends."""

    def test_star_expands_in_schema_order(self, small_database):
        query = parse_query("SELECT * FROM users")
        assert projection_columns(query, small_database) == (
            "uid", "name", "city", "age", "salary",
        )

    def test_alias_and_expression_names(self, small_database):
        query = parse_query("SELECT uid AS id, age + 1, COUNT(*) FROM users GROUP BY uid, age")
        assert projection_columns(query, small_database) == ("id", "age + 1", "COUNT(*)")

    def test_qualified_star_mixed_with_columns(self, small_database):
        query = parse_query("SELECT u.*, balance FROM users AS u JOIN accounts ON uid = owner_id")
        columns = projection_columns(query, small_database)
        assert columns == ("uid", "name", "city", "age", "salary", "balance")

    def test_bare_star_mixed_with_columns_rejected(self, small_database):
        query = parse_query("SELECT *, uid FROM users")
        with pytest.raises(ExecutionError):
            projection_columns(query, small_database)

    def test_unknown_star_qualifier_rejected(self, small_database):
        query = parse_query("SELECT missing.* FROM users")
        with pytest.raises(ExecutionError):
            projection_columns(query, small_database)
