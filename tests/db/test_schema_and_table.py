"""Tests for schemas, tables and the database catalog."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Column, ColumnType, DatabaseSchema, TableSchema
from repro.db.table import Row, Table
from repro.exceptions import SchemaError


class TestColumnType:
    def test_numeric_flag(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.REAL.is_numeric
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.BOOLEAN.is_numeric

    def test_integer_rejects_bool_and_str(self):
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(True)
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate("5")

    def test_real_accepts_int_and_float(self):
        ColumnType.REAL.validate(5)
        ColumnType.REAL.validate(5.5)

    def test_text_rejects_numbers(self):
        with pytest.raises(SchemaError):
            ColumnType.TEXT.validate(5)

    def test_null_is_always_valid_at_type_level(self):
        for column_type in ColumnType:
            column_type.validate(None)


class TestColumn:
    def test_not_nullable_rejects_none(self):
        column = Column("a", ColumnType.INTEGER, nullable=False)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_nullable_accepts_none(self):
        Column("a", ColumnType.INTEGER).validate(None)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INTEGER), Column("a", ColumnType.TEXT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_column_lookup(self):
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER)])
        assert schema.column("a").type is ColumnType.INTEGER
        assert schema.has_column("a")
        assert not schema.has_column("b")
        with pytest.raises(SchemaError):
            schema.column("b")

    def test_validate_row_missing_and_extra(self):
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1})
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "b": "x", "c": 3})
        schema.validate_row({"a": 1, "b": "x"})

    def test_rename(self):
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)])
        renamed = schema.rename("enc_t", {"a": "enc_a"})
        assert renamed.name == "enc_t"
        assert renamed.column_names == ("enc_a", "b")


class TestRow:
    def test_rows_are_hashable_and_comparable(self):
        row1 = Row({"a": 1, "b": "x"})
        row2 = Row({"b": "x", "a": 1})
        assert row1 == row2
        assert hash(row1) == hash(row2)
        assert len({row1, row2}) == 1

    def test_row_equals_plain_mapping(self):
        assert Row({"a": 1}) == {"a": 1}

    def test_project_and_values_tuple(self):
        row = Row({"a": 1, "b": 2, "c": 3})
        assert row.project(["a", "c"]) == Row({"a": 1, "c": 3})
        assert row.values_tuple(["c", "a"]) == (3, 1)

    def test_as_dict_is_a_copy(self):
        row = Row({"a": 1})
        copy = row.as_dict()
        copy["a"] = 99
        assert row["a"] == 1


class TestTable:
    def make_table(self) -> Table:
        schema = TableSchema(
            "t", [Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)]
        )
        return Table(schema)

    def test_insert_validates(self):
        table = self.make_table()
        table.insert({"a": 1, "b": "x"})
        with pytest.raises(SchemaError):
            table.insert({"a": "wrong", "b": "x"})
        assert len(table) == 1

    def test_insert_many(self):
        table = self.make_table()
        table.insert_many([{"a": i, "b": "x"} for i in range(5)])
        assert len(table) == 5

    def test_column_values(self):
        table = self.make_table()
        table.insert_many([{"a": i, "b": "x"} for i in range(3)])
        assert table.column_values("a") == [0, 1, 2]
        with pytest.raises(SchemaError):
            table.column_values("missing")


class TestDatabase:
    def test_create_and_lookup(self):
        database = Database("db")
        database.create_table(TableSchema("t", [Column("a", ColumnType.INTEGER)]))
        assert database.has_table("t")
        assert database.table("t").name == "t"
        with pytest.raises(SchemaError):
            database.table("missing")

    def test_duplicate_table_rejected(self):
        database = Database("db")
        schema = TableSchema("t", [Column("a", ColumnType.INTEGER)])
        database.create_table(schema)
        with pytest.raises(SchemaError):
            database.create_table(schema)

    def test_insert_and_total_rows(self):
        database = Database("db")
        database.create_table(TableSchema("t", [Column("a", ColumnType.INTEGER)]))
        database.insert_many("t", [{"a": i} for i in range(4)])
        database.insert("t", {"a": 10})
        assert database.total_rows() == 5

    def test_schema_property(self, small_database):
        schema = small_database.schema
        assert isinstance(schema, DatabaseSchema)
        assert set(schema.table_names) == {"users", "accounts"}
        assert schema.table("users").has_column("age")
