"""Differential tests: every execution backend must agree with the interpreter.

The in-memory interpreter is the semantics oracle; the SQLite backend runs
the same queries — hand-written SQL-surface cases, generated plain workloads
and rewritten encrypted workloads — and :func:`repro.db.differential.
result_difference` must find no deviation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import CryptDBProxy
from repro.db import (
    Column,
    ColumnType,
    Database,
    TableSchema,
    available_backends,
    create_backend,
    register_backend,
)
from repro.db.differential import result_difference
from repro.db.sqlite_backend import decode_sql_value, encode_sql_value
from repro.exceptions import ExecutionError
from repro.sql.parser import parse_query
from repro.workloads.generator import QueryLogGenerator, WorkloadMix


@pytest.fixture(scope="module")
def surface_database() -> Database:
    """A small database with NULLs, booleans, reals and text edge cases."""
    database = Database("surface")
    database.create_table(
        TableSchema(
            "people",
            [
                Column("pid", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("age", ColumnType.INTEGER),
                Column("score", ColumnType.REAL),
                Column("active", ColumnType.BOOLEAN),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "visits",
            [
                Column("vid", ColumnType.INTEGER),
                Column("person_id", ColumnType.INTEGER),
                Column("place", ColumnType.TEXT),
            ],
        )
    )
    rows = [
        (1, "Alice", 30, 8.5, True),
        (2, "alice", None, 7.0, False),
        (3, "Bob", 25, None, True),
        (4, "carol_x", 40, 9.25, None),
        (5, None, 25, 6.0, False),
        (6, "Dave", 61, 8.5, True),
        (7, "Eve", None, None, None),
    ]
    for pid, name, age, score, active in rows:
        database.insert(
            "people", {"pid": pid, "name": name, "age": age, "score": score, "active": active}
        )
    visits = [(1, 1, "Rome"), (2, 1, "Paris"), (3, 3, "Rome"), (4, 9, "Oslo"), (5, 5, None)]
    for vid, person_id, place in visits:
        database.insert("visits", {"vid": vid, "person_id": person_id, "place": place})
    return database


@pytest.fixture(scope="module")
def surface_backends(surface_database):
    memory = create_backend("memory", surface_database)
    sqlite = create_backend("sqlite", surface_database)
    yield memory, sqlite
    sqlite.close()


def assert_backends_agree(backends, sql: str) -> None:
    memory, sqlite = backends
    query = parse_query(sql)
    reference = memory.execute(query)
    candidate = sqlite.execute(query)
    unlimited = None
    if query.limit is not None:
        unlimited = memory.execute(dataclasses.replace(query, limit=None))
    difference = result_difference(
        query, reference, candidate, unlimited_reference=unlimited
    )
    assert difference is None, f"{sql}\n{difference}"


SURFACE_QUERIES = [
    # projections, stars, aliases
    "SELECT * FROM people",
    "SELECT p.*, vid FROM people AS p JOIN visits ON pid = person_id",
    "SELECT name AS who, age FROM people",
    # IS NULL / IS NOT NULL
    "SELECT pid FROM people WHERE age IS NULL",
    "SELECT pid FROM people WHERE score IS NOT NULL AND active IS NOT NULL",
    # LIKE: case sensitivity, '_' wildcard, literal underscore text
    "SELECT name FROM people WHERE name LIKE 'A%'",
    "SELECT name FROM people WHERE name LIKE '_lice'",
    "SELECT name FROM people WHERE name NOT LIKE '%a%'",
    "SELECT name FROM people WHERE name LIKE 'carol__'",
    # DISTINCT, incl. NULLs and booleans
    "SELECT DISTINCT score FROM people",
    "SELECT DISTINCT active FROM people",
    "SELECT DISTINCT age, active FROM people",
    # ORDER BY with NULLs, both directions, multiple keys, unprojected keys,
    # and expressions containing literals (placeholder/parameter sync)
    "SELECT name, age FROM people ORDER BY age ASC",
    "SELECT name, age FROM people ORDER BY age DESC",
    "SELECT name FROM people ORDER BY score DESC, pid ASC",
    "SELECT pid, score FROM people ORDER BY score ASC, age DESC",
    "SELECT pid, age FROM people ORDER BY age + 1 ASC",
    "SELECT name FROM people ORDER BY age % 3 ASC, pid ASC",
    # LIMIT with and without ORDER BY, LIMIT 0, LIMIT past the end
    "SELECT pid FROM people LIMIT 3",
    "SELECT pid FROM people ORDER BY pid DESC LIMIT 2",
    "SELECT pid FROM people LIMIT 0",
    "SELECT pid FROM people LIMIT 99",
    "SELECT DISTINCT active FROM people LIMIT 2",
    "SELECT pid FROM people ORDER BY age DESC, pid ASC",
    # arithmetic: true division, modulo, NULL propagation, unary minus
    "SELECT pid, age / 2 FROM people",
    "SELECT pid, age % 7 FROM people",
    "SELECT pid, -age FROM people WHERE age IS NOT NULL",
    "SELECT pid FROM people WHERE age + 10 > 40",
    # three-valued logic
    "SELECT pid FROM people WHERE NOT age > 30",
    "SELECT pid FROM people WHERE age > 20 OR score > 8",
    "SELECT pid FROM people WHERE age > 20 AND score > 8",
    # IN / BETWEEN with NULL operands in the data
    "SELECT pid FROM people WHERE age IN (25, 61)",
    "SELECT pid FROM people WHERE age NOT IN (25, 61)",
    "SELECT pid FROM people WHERE age BETWEEN 25 AND 40",
    "SELECT pid FROM people WHERE age NOT BETWEEN 25 AND 40",
    # aggregates and grouping
    "SELECT COUNT(*), COUNT(age), COUNT(DISTINCT age) FROM people",
    "SELECT SUM(age), AVG(score), MIN(name), MAX(score) FROM people",
    "SELECT active, COUNT(*) FROM people GROUP BY active",
    "SELECT active, AVG(age) FROM people GROUP BY active HAVING COUNT(*) > 1",
    "SELECT age, COUNT(*) AS n FROM people GROUP BY age ORDER BY n DESC, age ASC",
    "SELECT SUM(age) / COUNT(*) FROM people",
    "SELECT MIN(active), MAX(active) FROM people",
    # joins: inner, left, right, cross, self-join with aliases
    "SELECT name, place FROM people JOIN visits ON pid = person_id",
    "SELECT name, place FROM people LEFT JOIN visits ON pid = person_id",
    "SELECT name, place FROM people RIGHT JOIN visits ON pid = person_id",
    "SELECT COUNT(*) FROM people CROSS JOIN visits",
    "SELECT a.name, b.name FROM people AS a JOIN people AS b ON a.age = b.age WHERE a.pid < b.pid",
    # empty results keep their columns
    "SELECT name, age FROM people WHERE age > 1000",
    "SELECT age, COUNT(*) FROM people WHERE age > 1000 GROUP BY age",
    "SELECT COUNT(*), SUM(age) FROM people WHERE age > 1000",
]


class TestSqlSurface:
    @pytest.mark.parametrize("sql", SURFACE_QUERIES)
    def test_backends_agree(self, surface_backends, sql):
        assert_backends_agree(surface_backends, sql)

    def test_division_by_zero_raises_on_both(self, surface_backends):
        query = parse_query("SELECT age / 0 FROM people WHERE age IS NOT NULL")
        for backend in surface_backends:
            with pytest.raises(ExecutionError):
                backend.execute(query)

    def test_modulo_by_zero_raises_on_both(self, surface_backends):
        query = parse_query("SELECT age % 0 FROM people WHERE age IS NOT NULL")
        for backend in surface_backends:
            with pytest.raises(ExecutionError):
                backend.execute(query)

    def test_duplicate_alias_rejected_on_both(self, surface_backends):
        query = parse_query("SELECT 1 FROM people AS p JOIN visits AS p ON pid = person_id")
        for backend in surface_backends:
            with pytest.raises(ExecutionError):
                backend.execute(query)

    def test_ungrouped_select_item_rejected_on_both(self, surface_backends):
        # SQLite alone would return an engine-arbitrary name per group.
        query = parse_query("SELECT name, COUNT(*) FROM people GROUP BY age")
        for backend in surface_backends:
            with pytest.raises(ExecutionError):
                backend.execute(query)

    def test_star_with_group_by_rejected_on_both(self, surface_backends):
        query = parse_query("SELECT * FROM people GROUP BY age")
        for backend in surface_backends:
            with pytest.raises(ExecutionError):
                backend.execute(query)

    def test_boolean_values_round_trip(self, surface_backends):
        memory, sqlite = surface_backends
        query = parse_query("SELECT active FROM people WHERE pid = 1")
        assert sqlite.execute(query).rows == ((True,),)
        assert sqlite.execute(query).rows == memory.execute(query).rows


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("mix_name", ["mixed", "spj", "analytical"])
    def test_plain_workloads_agree(self, webshop, webshop_database, mix_name):
        mix = {
            "mixed": WorkloadMix(),
            "spj": WorkloadMix.spj_only(),
            "analytical": WorkloadMix.analytical(),
        }[mix_name]
        log = QueryLogGenerator(webshop, mix, seed=13).generate(40)
        memory = create_backend("memory", webshop_database)
        with create_backend("sqlite", webshop_database) as sqlite:
            for query in log.queries:
                reference = memory.execute(query)
                candidate = sqlite.execute(query)
                difference = result_difference(query, reference, candidate)
                assert difference is None, f"{query}\n{difference}"

    def test_encrypted_workload_agrees(self, webshop, webshop_database):
        log = QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=17).generate(25)
        proxy = CryptDBProxy(
            KeyChain(MasterKey.from_passphrase("differential")),
            join_groups=webshop.join_groups(),
            paillier_bits=256,
            shared_det_key=True,
        )
        proxy.encrypt_database(webshop_database)
        with proxy.session(backend="memory") as memory_session:
            with proxy.session(backend="sqlite") as sqlite_session:
                for query in log.queries:
                    reference = memory_session.execute(query)
                    candidate = sqlite_session.execute(query)
                    assert reference is not None and candidate is not None
                    assert reference.encrypted_query == candidate.encrypted_query
                    difference = result_difference(
                        reference.encrypted_query, reference.result, candidate.result
                    )
                    assert difference is None, f"{query}\n{difference}"

    def test_encrypted_analytical_workload_agrees(self, webshop, webshop_database):
        """HOMSUM and grouped aggregates agree across backends (big-int path)."""
        log = QueryLogGenerator(webshop, WorkloadMix.analytical(), seed=19).generate(30)
        proxy = CryptDBProxy(
            KeyChain(MasterKey.from_passphrase("differential-agg")),
            join_groups=webshop.join_groups(),
            paillier_bits=256,
        )
        proxy.encrypt_database(webshop_database)
        with proxy.session(backend="memory", on_unsupported="skip") as memory_session:
            with proxy.session(backend="sqlite", on_unsupported="skip") as sqlite_session:
                memory_results = memory_session.run(log.queries)
                sqlite_results = sqlite_session.run(log.queries)
        assert memory_session.skipped == sqlite_session.skipped
        assert len(memory_results) == len(sqlite_results)
        for reference, candidate in zip(memory_results, sqlite_results):
            difference = result_difference(
                reference.encrypted_query, reference.result, candidate.result
            )
            assert difference is None, f"{reference.plain_query}\n{difference}"


class TestResultDifferenceOracle:
    def test_order_violation_detected(self):
        from repro.db.executor import ResultSet

        query = parse_query("SELECT pid FROM people ORDER BY pid ASC")
        reference = ResultSet(("pid",), ((1,), (2,)))
        shuffled = ResultSet(("pid",), ((2,), (1,)))
        assert result_difference(query, reference, shuffled) is not None

    def test_type_drift_detected(self):
        from repro.db.executor import ResultSet

        query = parse_query("SELECT pid FROM people")
        assert (
            result_difference(
                query, ResultSet(("pid",), ((1,),)), ResultSet(("pid",), ((1.0,),))
            )
            is not None
        )

    def test_keys_below_an_unprojected_key_are_not_checked(self):
        from repro.db.executor import ResultSet

        # Primary key `age` is unprojected, so the secondary `pid` ordering
        # inside age groups cannot be validated from the result alone.
        query = parse_query("SELECT pid FROM people ORDER BY age DESC, pid ASC")
        reference = ResultSet(("pid",), ((2,), (1,)))
        candidate = ResultSet(("pid",), ((1,), (2,)))
        assert result_difference(query, reference, candidate) is None


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "memory" in names and "sqlite" in names

    def test_unknown_backend_rejected(self, surface_database):
        with pytest.raises(ExecutionError):
            create_backend("no-such-engine", surface_database)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExecutionError):
            register_backend("memory", lambda database: None)  # type: ignore[arg-type]

    def test_backend_names_match_instances(self, surface_database):
        memory = create_backend("memory", surface_database)
        with create_backend("sqlite", surface_database) as sqlite:
            assert memory.name == "memory"
            assert sqlite.name == "sqlite"


class TestBigIntCodec:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 2**1024 + 12345, -(2**512)],
    )
    def test_round_trip(self, value):
        assert decode_sql_value(encode_sql_value(value)) == value

    def test_in_range_integers_unchanged(self):
        assert encode_sql_value(42) == 42
        assert encode_sql_value("det:abc") == "det:abc"
        assert encode_sql_value(None) is None
        assert encode_sql_value(True) is True

    def test_big_integers_survive_sqlite_storage(self):
        database = Database("big")
        database.create_table(TableSchema("t", [Column("c", ColumnType.INTEGER)]))
        huge = 3**400
        database.insert("t", {"c": huge})
        with create_backend("sqlite", database) as backend:
            result = backend.execute(parse_query("SELECT c FROM t"))
        assert result.rows == ((huge,),)
