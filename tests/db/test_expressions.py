"""Tests for row-wise expression evaluation (including NULL semantics)."""

from __future__ import annotations

import pytest

from repro.db.expressions import (
    RowScope,
    compare_values,
    evaluate,
    evaluate_predicate,
    values_equal,
)
from repro.exceptions import ExecutionError
from repro.sql.parser import parse_expression


def scope(**values) -> RowScope:
    return RowScope({"t": values})


def run(expression: str, **values):
    return evaluate(parse_expression(expression), scope(**values))


class TestScopes:
    def test_qualified_resolution(self):
        s = RowScope({"t": {"a": 1}, "s": {"a": 2}})
        assert evaluate(parse_expression("t.a"), s) == 1
        assert evaluate(parse_expression("s.a"), s) == 2

    def test_ambiguous_unqualified_raises(self):
        s = RowScope({"t": {"a": 1}, "s": {"a": 2}})
        with pytest.raises(ExecutionError):
            evaluate(parse_expression("a"), s)

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            run("missing", a=1)

    def test_unknown_table_raises(self):
        with pytest.raises(ExecutionError):
            run("x.a", a=1)


class TestComparisons:
    def test_numeric_comparisons(self):
        assert run("a > 5", a=6) is True
        assert run("a > 5", a=5) is False
        assert run("a <= 5", a=5) is True
        assert run("a <> 5", a=4) is True

    def test_string_equality_and_order(self):
        assert run("a = 'x'", a="x") is True
        assert run("a < 'b'", a="a") is True

    def test_mixed_type_equality_is_false(self):
        assert run("a = 'x'", a=5) is False
        assert run("a = 5", a="5") is False

    def test_int_float_equality(self):
        assert run("a = 5", a=5.0) is True

    def test_mixed_type_ordering_raises(self):
        with pytest.raises(ExecutionError):
            run("a > 'x'", a=5)

    def test_null_comparisons_are_unknown(self):
        assert run("a > 5", a=None) is None
        assert run("a = 5", a=None) is None


class TestLogic:
    def test_and_or_not(self):
        assert run("a > 1 AND a < 5", a=3) is True
        assert run("a > 1 OR a > 100", a=3) is True
        assert run("NOT a > 1", a=3) is False

    def test_three_valued_and(self):
        # unknown AND false = false; unknown AND true = unknown
        assert run("a > 5 AND b = 1", a=None, b=2) is False
        assert run("a > 5 AND b = 1", a=None, b=1) is None

    def test_three_valued_or(self):
        assert run("a > 5 OR b = 1", a=None, b=1) is True
        assert run("a > 5 OR b = 1", a=None, b=2) is None

    def test_not_of_unknown(self):
        assert run("NOT a > 5", a=None) is None

    def test_predicate_treats_unknown_as_false(self):
        assert evaluate_predicate(parse_expression("a > 5"), scope(a=None)) is False
        assert evaluate_predicate(parse_expression("a > 5"), scope(a=7)) is True


class TestPredicates:
    def test_between(self):
        assert run("a BETWEEN 1 AND 5", a=3) is True
        assert run("a BETWEEN 1 AND 5", a=6) is False
        assert run("a NOT BETWEEN 1 AND 5", a=6) is True
        assert run("a BETWEEN 1 AND 5", a=None) is None

    def test_in(self):
        assert run("a IN (1, 2, 3)", a=2) is True
        assert run("a IN (1, 2, 3)", a=9) is False
        assert run("a NOT IN (1, 2, 3)", a=9) is True

    def test_in_with_null_member_is_unknown_when_no_match(self):
        assert run("a IN (1, NULL)", a=5) is None
        assert run("a IN (1, NULL)", a=1) is True

    def test_like(self):
        assert run("a LIKE 'ab%'", a="abcdef") is True
        assert run("a LIKE 'ab%'", a="xabc") is False
        assert run("a LIKE '_b'", a="ab") is True
        assert run("a LIKE '_b'", a="aab") is False
        assert run("a NOT LIKE 'ab%'", a="xy") is True

    def test_like_escapes_regex_metacharacters(self):
        assert run("a LIKE 'a.c'", a="a.c") is True
        assert run("a LIKE 'a.c'", a="abc") is False

    def test_like_requires_strings(self):
        with pytest.raises(ExecutionError):
            run("a LIKE 'x%'", a=5)

    def test_is_null(self):
        assert run("a IS NULL", a=None) is True
        assert run("a IS NULL", a=1) is False
        assert run("a IS NOT NULL", a=1) is True


class TestArithmetic:
    def test_basic_arithmetic(self):
        assert run("a + 2 * 3", a=1) == 7
        assert run("(a + 2) * 3", a=1) == 9
        assert run("a % 3", a=7) == 1
        assert run("-a", a=4) == -4

    def test_division(self):
        assert run("a / 2", a=5) == 2.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run("a / 0", a=5)
        with pytest.raises(ExecutionError):
            run("a % 0", a=5)

    def test_null_propagates(self):
        assert run("a + 1", a=None) is None

    def test_non_numeric_arithmetic_raises(self):
        with pytest.raises(ExecutionError):
            run("a + 1", a="x")


class TestHelpers:
    def test_compare_values(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0
        assert compare_values(None, 1) is None

    def test_values_equal(self):
        assert values_equal(1, 1.0) is True
        assert values_equal("a", "a") is True
        assert values_equal(1, "1") is False
        assert values_equal(None, 1) is None
        assert values_equal(True, 1) is False
