"""Shared fixtures for the test suite.

Fixtures are deterministic (passphrase-derived keys, seeded generators) so
the suite is reproducible, and expensive objects (Paillier key pairs,
populated databases) are session-scoped.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.core.domains import Domain, DomainCatalog

# Function-scoped fixtures used inside @given tests are deterministic and
# cheap to build here (passphrase-derived keys), so the corresponding health
# check would only produce noise; deadlines are disabled because crypto
# operations have high variance on shared CI machines.
hypothesis_settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)
hypothesis_settings.load_profile("repro")
import os

from repro.core.dpe import LogContext
from repro.crypto.hom import PaillierKeyPair, PaillierScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, TableSchema
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import populate_database, skyserver_profile, webshop_profile


@pytest.fixture
def keychain() -> KeyChain:
    """A deterministic keychain (fresh object per test, same keys)."""
    return KeyChain(MasterKey.from_passphrase("test-suite"))


@pytest.fixture(scope="session")
def paillier_keypair() -> PaillierKeyPair:
    """A small (fast) Paillier key pair shared across the session."""
    return PaillierKeyPair.generate(256)


@pytest.fixture(scope="session")
def paillier_keypair_alt() -> PaillierKeyPair:
    """A second session-scoped key pair for wrong-key/cross-key tests.

    Key generation is the most expensive fixture in the crypto suite; every
    test needing "some other key" shares this one instead of regenerating.
    """
    return PaillierKeyPair.generate(256)


@pytest.fixture(scope="session")
def paillier_scheme(paillier_keypair: PaillierKeyPair) -> PaillierScheme:
    """A Paillier scheme over the shared key pair (session-scoped)."""
    return PaillierScheme(paillier_keypair)


@pytest.fixture(scope="session")
def paillier_scheme_alt(paillier_keypair_alt: PaillierKeyPair) -> PaillierScheme:
    """A Paillier scheme over the alternate key pair (session-scoped)."""
    return PaillierScheme(paillier_keypair_alt)


@pytest.fixture
def sample_statements() -> list[str]:
    """A hand-written query log exercising every supported query shape."""
    return [
        "SELECT name FROM users WHERE age > 30",
        "SELECT name, city FROM users WHERE age > 30 AND city = 'Berlin'",
        "SELECT city FROM users WHERE age BETWEEN 20 AND 40",
        "SELECT name FROM users WHERE city IN ('Berlin', 'Paris', 'Rome')",
        "SELECT DISTINCT city FROM users WHERE salary >= 50000 ORDER BY city ASC",
        "SELECT city, COUNT(*) FROM users WHERE age > 18 GROUP BY city",
        "SELECT AVG(salary) FROM users WHERE age > 25",
        "SELECT name FROM users JOIN accounts ON uid = owner_id WHERE balance < 0",
        "SELECT name FROM users WHERE NOT age < 18",
        "SELECT name FROM users WHERE age > 30 OR city = 'Paris' LIMIT 10",
    ]


@pytest.fixture
def sample_log(sample_statements: list[str]) -> QueryLog:
    """The hand-written statements as a parsed query log."""
    return QueryLog.from_sql(sample_statements)


@pytest.fixture
def sample_context(sample_log: QueryLog) -> LogContext:
    """A log-only context over the hand-written log."""
    return LogContext(log=sample_log)


@pytest.fixture
def users_domains() -> DomainCatalog:
    """Domains for the attributes used by the hand-written log."""
    return DomainCatalog(
        [
            Domain("age", minimum=0, maximum=120),
            Domain("salary", minimum=0, maximum=500000),
            Domain("balance", minimum=-10000.0, maximum=10000.0),
            Domain("uid", minimum=1, maximum=1000),
            Domain("owner_id", minimum=1, maximum=1000),
            Domain("name", values=frozenset({"Alice", "Bob", "Carol"})),
            Domain("city", values=frozenset({"Berlin", "Paris", "Rome"})),
        ]
    )


@pytest.fixture
def small_database() -> Database:
    """A small hand-built users/accounts database."""
    database = Database("testdb")
    database.create_table(
        TableSchema(
            "users",
            [
                Column("uid", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("city", ColumnType.TEXT),
                Column("age", ColumnType.INTEGER),
                Column("salary", ColumnType.REAL),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "accounts",
            [
                Column("acc_id", ColumnType.INTEGER),
                Column("owner_id", ColumnType.INTEGER),
                Column("balance", ColumnType.REAL),
            ],
        )
    )
    cities = ["Berlin", "Paris", "Rome", "Berlin", "Berlin", "Paris"]
    for i in range(12):
        database.insert(
            "users",
            {
                "uid": i + 1,
                "name": f"user{i}",
                "city": cities[i % len(cities)],
                "age": 18 + (i * 5) % 60,
                "salary": 30000.0 + i * 2500,
            },
        )
    for i in range(20):
        database.insert(
            "accounts",
            {"acc_id": i + 1, "owner_id": (i % 12) + 1, "balance": -500.0 + i * 120.5},
        )
    return database


@pytest.fixture(scope="session")
def webshop():
    """The webshop workload profile (session-scoped)."""
    return webshop_profile(customer_rows=30, order_rows=60, product_rows=15)


@pytest.fixture(scope="session")
def webshop_database(webshop):
    """A populated webshop database (session-scoped)."""
    return populate_database(webshop, seed=1)


@pytest.fixture(scope="session")
def webshop_log(webshop) -> QueryLog:
    """A mixed synthetic log over the webshop profile (session-scoped)."""
    return QueryLogGenerator(webshop, WorkloadMix(), seed=1).generate(30)


@pytest.fixture(scope="session")
def skyserver():
    """The SkyServer-like workload profile (session-scoped)."""
    return skyserver_profile(photo_rows=60, spec_rows=25)


@pytest.fixture(autouse=True, scope="session")
def lock_witness():
    """Watch the annotated thread-shared classes when ``LOCK_WITNESS=1``.

    Under the CI thread-stress job this turns the whole session into a
    race/deadlock detector: every ``# guarded-by``-annotated attribute of
    the five hot classes is checked live for lock-held access, every lock
    nesting is recorded, and the session fails at teardown on any guarded
    access outside its lock or any lock-order cycle.  Off by default —
    instrumentation slows the hot paths, so the plain suite runs bare.
    """
    if not os.environ.get("LOCK_WITNESS"):
        yield None
        return
    from repro.analysis.staticcheck.witness import LockWitness
    from repro.crypto.hom import PaillierNoisePool
    from repro.crypto.ope import OrderPreservingScheme
    from repro.mining.incremental import StreamingQueryLog
    from repro.server.admission import AdmissionQueue
    from repro.server.tenant import TenantHandle

    witness = LockWitness()
    uninstall = witness.watch_classes(
        [
            OrderPreservingScheme,
            PaillierNoisePool,
            StreamingQueryLog,
            AdmissionQueue,
            TenantHandle,
        ]
    )
    try:
        yield witness
    finally:
        uninstall()
        witness.check()
