"""Hash-chain commitments stay consistent under multi-tenant stream hammering.

The race surface: every tenant's streamed batches append to its sink's
hash chain and re-sign a checkpoint on the shared default session, while
the server's worker pool interleaves batches of *all* tenants.  The chain
must record exactly the entries that entered each tenant's sink, in order;
the last signed checkpoint must be whole (never a torn length/head pair)
and must verify against the final chain state.

CI's thread-stress job runs this file (with the rest of ``tests/server``)
five times back to back.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BackendConfig,
    CryptoConfig,
    ServiceConfig,
    StreamingQueryLog,
    TamperDetected,
    WorkloadConfig,
)
from repro.attacks import tamper

TENANTS = 3
BATCHES = 8
BATCH_SIZE = 3


def authenticated_config(name: str) -> ServiceConfig:
    return ServiceConfig(
        crypto=CryptoConfig(passphrase=name, paillier_bits=256, authenticate=True),
        backend=BackendConfig(name="sqlite"),
        workload=WorkloadConfig(size=BATCHES * BATCH_SIZE, seed=5),
    )


def test_per_tenant_chains_survive_concurrent_streaming(server):
    sinks = {}
    for index in range(TENANTS):
        name = f"chained-{index}"
        server.add_tenant(name, authenticated_config(name))
        sinks[name] = StreamingQueryLog()

    # Interleave every tenant's batches through the shared worker pool.
    futures = []
    for name in sinks:
        queries = server.tenant(name).service.generate_workload().queries
        for start in range(0, len(queries), BATCH_SIZE):
            batch = queries[start : start + BATCH_SIZE]
            futures.append((name, len(batch), server.stream(name, batch, into=sinks[name])))
    streamed = {name: 0 for name in sinks}
    for name, size, future in futures:
        assert len(future.result()) == size
        streamed[name] += size

    for name, sink in sinks.items():
        handle = server.tenant(name)
        session = handle.session()
        # The chain covers exactly this tenant's entries, in full.
        assert sink.chain_length == streamed[name] == BATCHES * BATCH_SIZE
        # The last checkpoint is whole and verifies against the chain:
        # a torn length/head pair would fail its own signature, a
        # checkpoint from another tenant's key would too.
        checkpoint = session.last_checkpoint
        assert checkpoint is not None
        assert checkpoint.length == sink.chain_length
        assert checkpoint.head == sink.chain_head
        verified = session.verify_stream(sinks[name])
        assert verified == checkpoint

        # The tenant's metrics surface the same checkpoint.
        integrity = handle.stats().integrity
        assert integrity["authenticated"] is True
        assert integrity["checkpoint_length"] == checkpoint.length
        assert integrity["checkpoint_head"] == checkpoint.head

    # Chains are per-tenant: one tenant's checkpoint never verifies a
    # different tenant's sink (different checkpoint keys).
    first, second = "chained-0", "chained-1"
    with pytest.raises(TamperDetected):
        server.tenant(first).session().verify_stream(sinks[second])


def test_rollback_detected_after_concurrent_streaming(server):
    name = "chained-rollback"
    server.add_tenant(name, authenticated_config(name))
    sink = StreamingQueryLog()
    queries = server.tenant(name).service.generate_workload().queries
    futures = [
        server.stream(name, queries[start : start + BATCH_SIZE], into=sink)
        for start in range(0, len(queries), BATCH_SIZE)
    ]
    for future in futures:
        future.result()
    session = server.tenant(name).session()
    session.verify_stream(sink)  # clean chain verifies
    tamper.rollback_log(sink, sink.chain_length - 2)
    with pytest.raises(TamperDetected):
        session.verify_stream(sink)
