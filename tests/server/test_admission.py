"""Admission control, backpressure and server lifecycle.

The bounded queue is the server's overload story: a full queue either
blocks the producer (backpressure) or raises
:class:`~repro.api.ServerOverloaded` (explicit rejection), and its counters
must stay exact under concurrent producers and workers.  The lifecycle half
covers what :meth:`~repro.api.MiningServer.close` promises: workers joined,
undrained futures cancelled, tenants closed, everything idempotent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import (
    ConfigError,
    MiningServer,
    ServerConfig,
    ServerError,
    ServerOverloaded,
    WorkloadResult,
)
from repro.server import AdmissionQueue


class BlockingSink:
    """A stream sink that parks the worker until the test releases it."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.batches: list[list[object]] = []

    def append(self, batch) -> None:
        """Record the batch once the test allows the worker to proceed."""
        assert self.release.wait(timeout=30.0), "test never released the sink"
        self.batches.append(list(batch))


class TestAdmissionQueue:
    def test_bound_must_be_positive(self):
        with pytest.raises(ServerOverloaded):
            AdmissionQueue(0)

    def test_submit_take_and_outcome_counters(self):
        queue: AdmissionQueue[str] = AdmissionQueue(4)
        queue.submit("a")
        queue.submit("b")
        assert queue.take() == "a"
        queue.mark_completed()
        assert queue.take() == "b"
        queue.mark_failed()
        stats = queue.stats()
        assert stats.submitted == 2
        assert stats.completed == 1
        assert stats.failed == 1
        assert stats.rejected == 0
        assert stats.pending == 0
        assert stats.high_water == 2

    def test_full_queue_rejects_without_wait(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1, wait=False)
        with pytest.raises(ServerOverloaded, match="full"):
            queue.submit(2, wait=False)
        assert queue.stats().rejected == 1

    def test_full_queue_blocks_then_times_out(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1)
        start = time.perf_counter()
        with pytest.raises(ServerOverloaded, match="stayed full"):
            queue.submit(2, wait=True, timeout=0.05)
        assert time.perf_counter() - start >= 0.05
        assert queue.stats().rejected == 1

    def test_backpressure_unblocks_when_a_slot_frees(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        queue.submit(1)

        def drain_later():
            time.sleep(0.05)
            queue.take()
            queue.mark_completed()

        drainer = threading.Thread(target=drain_later)
        drainer.start()
        queue.submit(2, wait=True, timeout=5.0)  # blocks until the drain
        drainer.join()
        assert queue.stats().submitted == 2
        assert queue.stats().rejected == 0

    def test_take_times_out_with_none(self):
        queue: AdmissionQueue[int] = AdmissionQueue(1)
        assert queue.take(timeout=0.01) is None


class TestServerAdmission:
    def test_rejects_non_config(self):
        with pytest.raises(ConfigError):
            MiningServer({"workers": 4})  # type: ignore[arg-type]

    def test_duplicate_and_unknown_tenants_fail_loudly(self, server, make_tenant_config):
        server.add_tenant("alpha", make_tenant_config("alpha"))
        with pytest.raises(ServerError, match="already registered"):
            server.add_tenant("alpha", make_tenant_config("alpha"))
        with pytest.raises(ServerError, match="unknown tenant"):
            server.tenant("beta")
        assert server.tenants() == ("alpha",)

    def test_full_server_queue_rejects_and_recovers(self, make_tenant_config):
        with MiningServer(ServerConfig(workers=1, max_pending=1)) as server:
            handle = server.add_tenant("solo", make_tenant_config("solo", size=4))
            workload = handle.service.generate_workload()
            sink = BlockingSink()
            # Park the single worker on a stream, then fill the queue.
            parked = server.stream("solo", workload, into=sink)
            deadline = time.perf_counter() + 30.0
            while not parked.running() and time.perf_counter() < deadline:
                time.sleep(0.005)
            assert parked.running(), "worker never picked up the parked stream"
            queued = server.submit("solo", workload, wait=False)
            with pytest.raises(ServerOverloaded):
                server.submit("solo", workload, wait=False)
            with pytest.raises(ServerOverloaded):
                server.submit("solo", workload, timeout=0.05)
            sink.release.set()
            assert len(parked.result(timeout=30.0)) > 0
            assert isinstance(queued.result(timeout=30.0), WorkloadResult)
            stats = server.stats().queue
            assert stats.rejected == 2
            assert stats.completed == 2
            assert stats.high_water == 1

    def test_close_cancels_undrained_tasks(self, make_tenant_config):
        server = MiningServer(ServerConfig(workers=1, max_pending=4))
        handle = server.add_tenant("solo", make_tenant_config("solo", size=4))
        workload = handle.service.generate_workload()
        sink = BlockingSink()
        parked = server.stream("solo", workload, into=sink)
        deadline = time.perf_counter() + 30.0
        while not parked.running() and time.perf_counter() < deadline:
            time.sleep(0.005)
        queued = server.submit("solo", workload)

        closer = threading.Thread(target=server.close)
        closer.start()
        deadline = time.perf_counter() + 30.0
        while server.is_running and time.perf_counter() < deadline:
            time.sleep(0.005)
        sink.release.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        assert isinstance(parked.result(timeout=30.0), tuple)  # ran to completion
        assert queued.cancelled()
        with pytest.raises(ServerError, match="closed"):
            server.submit("solo", workload)
        with pytest.raises(ServerError, match="closed"):
            server.add_tenant("late", make_tenant_config("late"))
        with pytest.raises(ServerError, match="closed"):
            handle.session()
        server.close()  # idempotent

    def test_lifecycle_flags_and_metrics_shape(self, server, make_tenant_config):
        assert not server.is_running
        server.start()
        assert server.is_running
        server.start()  # idempotent
        handle = server.add_tenant("alpha", make_tenant_config("alpha", size=4))
        result = server.run_workload("alpha", handle.service.generate_workload())
        assert isinstance(result, WorkloadResult)

        metrics = server.metrics()
        assert metrics["workers"] == 4
        assert metrics["queue"]["submitted"] == 1
        tenant_metrics = metrics["tenants"]["alpha"]
        assert tenant_metrics["queries_served"] == result.queries_served
        assert tenant_metrics["workloads_completed"] == 1
        assert tenant_metrics["key_fingerprint"] == handle.key_fingerprint
        assert "noise_pool" in str(tenant_metrics["crypto"]) or tenant_metrics["crypto"]

        stats = server.stats()
        assert stats.for_tenant("alpha").tenant == "alpha"
        with pytest.raises(ServerError, match="no stats"):
            stats.for_tenant("ghost")

    def test_failed_workload_counts_and_surfaces(self, server, make_tenant_config):
        server.add_tenant("alpha", make_tenant_config("alpha", size=4))
        future = server.submit("alpha", ["THIS IS NOT SQL ;;;"])
        with pytest.raises(Exception):
            future.result(timeout=30.0)
        stats = server.stats()
        assert stats.queue.failed == 1
        assert stats.for_tenant("alpha").failures == 1
