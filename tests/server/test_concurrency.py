"""Barrier-synchronized race tests: concurrent == single-threaded, bit for bit.

Every test runs a single-threaded reference first, then hammers the same
tenants from barrier-started threads with a shrunken switch interval, and
asserts the concurrent results are *identical* — every
:class:`~repro.api.EncryptedResult` row (plain query, encrypted query,
result set), every skip, and the DBSCAN labels mined from the encrypted
logs.  A data race in the session, the OPE cache, the noise pool or the
sqlite backend shows up here as a changed ciphertext or a lost counter
update, not as a flake.
"""

from __future__ import annotations

import sys
import threading

import numpy as np
import pytest

from repro.api import (
    IncrementalDistanceMatrix,
    LogContext,
    QueryLog,
    StreamingQueryLog,
    TokenDistance,
    WorkloadResult,
    dbscan,
    render_query,
)

#: Concurrent callers per hammering test.
THREADS = 4
#: Mining parameters shared by the incremental matrix and the batch oracle.
PARAMETERS = dict(knn_k=3, outlier_p=0.85, outlier_d=0.88, dbscan_eps=0.6, dbscan_min_points=3)


@pytest.fixture(autouse=True)
def fast_switching():
    """Amplify races by forcing frequent thread switches."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def _assert_same_result(reference: WorkloadResult, observed: WorkloadResult, label: str):
    """Bit-for-bit equality of two served workloads."""
    assert len(reference.results) == len(observed.results), label
    for expected, actual in zip(reference.results, observed.results):
        assert render_query(expected.plain_query) == render_query(actual.plain_query), label
        assert render_query(expected.encrypted_query) == render_query(
            actual.encrypted_query
        ), label
        assert expected.result == actual.result, label
    assert [
        (render_query(query), reason) for query, reason in reference.skipped
    ] == [(render_query(query), reason) for query, reason in observed.skipped], label


def _in_threads(count: int, work):
    """Run ``work(index)`` in ``count`` barrier-started threads, re-raising."""
    barrier = threading.Barrier(count)
    failures = []

    def body(index):
        barrier.wait()
        try:
            work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            failures.append(error)

    threads = [threading.Thread(target=body, args=(index,)) for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestOneTenantManyThreads:
    def test_threads_hammering_one_session_match_reference(self, server, make_tenant_config):
        handle = server.add_tenant("solo", make_tenant_config("solo", size=10))
        workload = handle.service.generate_workload()
        handle.run_workload(workload)  # warm-up: onion adjustments settle
        reference = handle.run_workload(workload)
        reference_labels = handle.service.mine(reference.encrypted_log()).labels

        observed: list[WorkloadResult] = [None] * THREADS  # type: ignore[list-item]

        def work(index):
            observed[index] = server.run_workload("solo", workload)

        _in_threads(THREADS, work)
        for index, result in enumerate(observed):
            _assert_same_result(reference, result, f"thread {index}")
            assert handle.service.mine(result.encrypted_log()).labels == reference_labels

        stats = server.stats().for_tenant("solo")
        expected_runs = 2 + THREADS
        assert stats.workloads_completed == expected_runs
        assert stats.queries_served == expected_runs * reference.queries_served
        assert stats.queries_skipped == expected_runs * reference.queries_skipped
        assert stats.failures == 0


class TestManyTenantsSharedServer:
    def test_tenants_hammering_shared_server_match_references(
        self, server, make_tenant_config
    ):
        names = [f"tenant-{index}" for index in range(THREADS)]
        workloads, references, labels = {}, {}, {}
        for seed, name in enumerate(names, start=1):
            handle = server.add_tenant(name, make_tenant_config(name, size=8, seed=seed))
            workloads[name] = handle.service.generate_workload()
            handle.run_workload(workloads[name])  # warm-up
            references[name] = handle.run_workload(workloads[name])
            labels[name] = handle.service.mine(references[name].encrypted_log()).labels

        rounds = 2
        results: dict[str, list[WorkloadResult]] = {name: [] for name in names}

        def work(index):
            name = names[index]
            for _ in range(rounds):
                results[name].append(server.run_workload(name, workloads[name]))

        _in_threads(THREADS, work)
        for name in names:
            handle = server.tenant(name)
            for round_index, result in enumerate(results[name]):
                _assert_same_result(references[name], result, f"{name} round {round_index}")
                assert handle.service.mine(result.encrypted_log()).labels == labels[name]
        queue = server.stats().queue
        assert queue.submitted == len(names) * rounds
        assert queue.completed == len(names) * rounds
        assert queue.failed == 0


class TestConcurrentStreaming:
    def test_concurrent_stream_equals_batch_recompute(self, server, make_tenant_config):
        handle = server.add_tenant("streamer", make_tenant_config("streamer", size=12))
        workload = [entry.query for entry in handle.service.generate_workload()]
        handle.run_workload(workload)  # warm-up so streamed rewrites are stable
        batches = [workload[index::THREADS] for index in range(THREADS)]

        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)

        def work(index):
            server.stream("streamer", batches[index], into=incremental).result(timeout=60.0)

        _in_threads(THREADS, work)
        assert incremental.n_items == sum(len(batch) for batch in batches)

        # Batch oracle over the stream as it ended up ordered.
        oracle = TokenDistance().condensed_distance_matrix(
            LogContext(log=QueryLog(list(stream)))
        )
        assert np.array_equal(incremental.condensed().values, oracle.values)
        assert (
            incremental.dbscan().labels
            == dbscan(
                oracle,
                eps=PARAMETERS["dbscan_eps"],
                min_points=PARAMETERS["dbscan_min_points"],
            ).labels
        )

        stats = server.stats().for_tenant("streamer")
        assert stats.batches_streamed == THREADS
