"""Concurrent window eviction under server streaming: no tearing, exact end state.

The race surface this hammers: ``MiningServer.stream`` feeds encrypted
batches into an :class:`ApproxStreamMiner` from several worker threads
while reader threads mine the same window concurrently — so appends,
geometric evictions, pivot-table swap-deletes and range queries all
interleave.  The window's lock discipline must keep every intermediate
mining result well-formed (labels positional over the live set at *some*
consistent point) and the final state bit-for-bit equal to the exact
pipeline over the surviving entries.

CI's thread-stress job runs this file (with the rest of ``tests/server``)
five times back to back.
"""

from __future__ import annotations

import threading

from repro.api import (
    BackendConfig,
    CryptoConfig,
    LogContext,
    MiningConfig,
    QueryLog,
    TokenDistance,
    WorkloadConfig,
    ServiceConfig,
    dbscan,
    distance_based_outliers,
)

WINDOW = 16
BATCHES = 10
BATCH_SIZE = 4


def test_concurrent_streaming_and_eviction_stay_consistent(server):
    config = ServiceConfig(
        crypto=CryptoConfig(passphrase="stress", paillier_bits=256),
        backend=BackendConfig(name="sqlite"),
        workload=WorkloadConfig(size=BATCHES * BATCH_SIZE, seed=3),
        mining=MiningConfig(
            measure="token", approx=True, window=WINDOW, window_decay=0.4,
            pivots=4, seed=7,
        ),
    )
    handle = server.add_tenant("stress", config)
    miner = handle.service.approx_miner()
    window = miner.window_log
    workload = handle.service.generate_workload()
    queries = workload.queries
    batches = [
        queries[start : start + BATCH_SIZE]
        for start in range(0, len(queries), BATCH_SIZE)
    ]

    # Seed the window synchronously so readers never see an empty index.
    first = server.stream("stress", batches[0], into=miner).result()
    assert len(first) > 0

    errors: list[BaseException] = []
    done = threading.Event()

    def read_loop() -> None:
        while not done.is_set():
            try:
                clusters, _ = miner.dbscan()
                outliers, _ = miner.outliers()
                # A consistent snapshot: both artefacts are positional over
                # some live set of at most WINDOW items.
                assert 0 < len(clusters.labels) <= WINDOW
                assert 0 < len(outliers.fraction_far) <= WINDOW
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)
                return

    readers = [threading.Thread(target=read_loop) for _ in range(2)]
    for reader in readers:
        reader.start()
    try:
        futures = [
            server.stream("stress", batch, into=miner) for batch in batches[1:]
        ]
        streamed = len(first) + sum(len(future.result()) for future in futures)
    finally:
        done.set()
        for reader in readers:
            reader.join()
    assert not errors, errors[:1]

    # Accounting: every encrypted query entered the window exactly once.
    assert window.total_appended == streamed
    assert miner.n_items == min(streamed, WINDOW)
    assert window.evictions == max(streamed - WINDOW, 0)

    # The final artefacts equal the exact pipeline over the live entries.
    with window.lock:
        live_entries = list(window)
    matrix = TokenDistance().condensed_distance_matrix(
        LogContext(log=QueryLog(live_entries))
    )
    exact_clusters = dbscan(matrix, eps=0.5, min_points=3)
    exact_outliers = distance_based_outliers(matrix, p=0.95, d=0.9)
    approx_clusters, stats = miner.dbscan()
    approx_outliers, _ = miner.outliers()
    assert stats.certified_complete
    assert approx_clusters == exact_clusters
    assert approx_outliers == exact_outliers
