"""Property tests: tenants of one server never share cryptographic state.

Isolation in the serving layer is structural — every tenant owns a full
:class:`~repro.api.EncryptedMiningService` — but structure can rot silently
(a cached scheme here, a module-level pool there).  These hypothesis tests
pin the property for any ≥3-tenant population: derived keys (fingerprints),
Paillier moduli, noise-pool blinding factors and produced ciphertexts are
pairwise disjoint, and serving one tenant never moves another tenant's
``crypto_stats()`` accounting.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MiningServer, ServerConfig, render_query
from tests.server.conftest import tenant_config

#: Distinct lowercase tenant names, three to four per drawn population.
tenant_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=3,
    max_size=4,
    unique=True,
)


def _noise_pool(handle):
    """White-box probe: the tenant's Paillier noise pool."""
    return handle.service._proxy.paillier_scheme.noise_pool


def _paillier_modulus(handle) -> int:
    """White-box probe: the tenant's Paillier modulus n."""
    return handle.service._proxy.paillier_scheme.public_key.n


@given(names=tenant_names)
@settings(max_examples=3, deadline=None)
def test_tenants_never_share_keys_factors_or_ciphertexts(names):
    with MiningServer(ServerConfig(workers=4)) as server:
        handles = {}
        for name in names:
            # Same workload seed for everyone: identical *plaintext* queries
            # make shared ciphertexts impossible to miss.
            handles[name] = server.add_tenant(name, tenant_config(f"pw-{name}", size=4, seed=1))

        fingerprints = {name: handle.key_fingerprint for name, handle in handles.items()}
        assert len(set(fingerprints.values())) == len(names)

        moduli = {name: _paillier_modulus(handle) for name, handle in handles.items()}
        assert len(set(moduli.values())) == len(names)

        factor_sets = {}
        for name, handle in handles.items():
            pool = _noise_pool(handle)
            pool.ensure(4)
            with pool._lock:  # white-box read of guarded pool state
                factor_sets[name] = set(pool._factors)
            assert factor_sets[name]
        ordered = list(names)
        for left_index, left in enumerate(ordered):
            for right in ordered[left_index + 1 :]:
                assert factor_sets[left].isdisjoint(factor_sets[right]), (left, right)

        encrypted_queries = {}
        plain_queries = {}
        for name, handle in handles.items():
            result = server.run_workload(name, handle.service.generate_workload())
            plain_queries[name] = [render_query(row.plain_query) for row in result.results]
            encrypted_queries[name] = {
                render_query(row.encrypted_query) for row in result.results
            }
            assert encrypted_queries[name]
        # Identical plaintext workloads...
        reference_plain = plain_queries[ordered[0]]
        for name in ordered[1:]:
            assert plain_queries[name] == reference_plain
        # ...but pairwise-disjoint ciphertext queries.
        for left_index, left in enumerate(ordered):
            for right in ordered[left_index + 1 :]:
                assert encrypted_queries[left].isdisjoint(encrypted_queries[right]), (
                    left,
                    right,
                )

        # The fingerprint surfaced in the metrics is the handle's.
        stats = server.stats()
        for name in names:
            assert stats.for_tenant(name).key_fingerprint == fingerprints[name]


@given(names=tenant_names)
@settings(max_examples=3, deadline=None)
def test_serving_one_tenant_leaves_other_accounting_untouched(names):
    with MiningServer(ServerConfig(workers=4)) as server:
        handles = {
            name: server.add_tenant(name, tenant_config(f"pw-{name}", size=4, seed=1))
            for name in names
        }
        active, *idle = list(names)
        before = {name: handles[name].crypto_stats() for name in idle}
        served = server.run_workload(active, handles[active].service.generate_workload())
        assert served.queries_served > 0
        for name in idle:
            assert handles[name].crypto_stats() == before[name], name
            tenant_stats = server.stats().for_tenant(name)
            assert tenant_stats.queries_served == 0
            assert tenant_stats.workloads_completed == 0
        active_stats = server.stats().for_tenant(active)
        assert active_stats.queries_served == served.queries_served
        assert active_stats.workloads_completed == 1
