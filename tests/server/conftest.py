"""Fixtures for the serving-layer test suite.

Everything here goes through the public surface (:mod:`repro.api`): the
suite exists to prove that the concurrent server produces bit-for-bit the
results of a single-threaded caller, so the fixtures build real tenants —
own passphrase-derived keychain, own 256-bit Paillier pool, own encrypted
webshop database — just small enough that the whole suite can run five
times back to back in CI's thread-stress job.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BackendConfig,
    CryptoConfig,
    MiningServer,
    ServerConfig,
    ServiceConfig,
    WorkloadConfig,
)


def tenant_config(name: str, *, size: int = 8, seed: int = 1) -> ServiceConfig:
    """A small per-tenant config: passphrase-derived keys, sqlite backend."""
    return ServiceConfig(
        crypto=CryptoConfig(passphrase=name, paillier_bits=256),
        backend=BackendConfig(name="sqlite"),
        workload=WorkloadConfig(size=size, seed=seed),
    )


@pytest.fixture
def make_tenant_config():
    """The tenant-config factory, as a fixture."""
    return tenant_config


@pytest.fixture
def server():
    """A fresh 4-worker server, closed after the test."""
    with MiningServer(ServerConfig(workers=4, max_pending=16)) as fresh:
        yield fresh
