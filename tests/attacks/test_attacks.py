"""Tests for the attack simulations (frequency, sorting, query-only)."""

from __future__ import annotations

import pytest

from repro.attacks.frequency import frequency_analysis_attack
from repro.attacks.order import sorting_attack
from repro.attacks.query_only import extract_constants, query_only_attack
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import AttackError
from repro.sql.log import QueryLog


@pytest.fixture
def skewed_plaintexts() -> list[str]:
    """A skewed value distribution (frequency analysis needs skew)."""
    return ["Berlin"] * 40 + ["Paris"] * 25 + ["Rome"] * 15 + ["Oslo"] * 5


class TestFrequencyAttack:
    def test_full_recovery_against_det_with_known_distribution(self, keychain, skewed_plaintexts):
        scheme = DeterministicScheme(keychain.key_for("freq"))
        ciphertexts = [scheme.encrypt(value) for value in skewed_plaintexts]
        result = frequency_analysis_attack(
            ciphertexts, skewed_plaintexts, ground_truth=skewed_plaintexts
        )
        assert result.recovery_rate == 1.0

    def test_prob_encryption_defeats_frequency_analysis(self, keychain, skewed_plaintexts):
        scheme = ProbabilisticScheme(keychain.key_for("freq-prob"))
        ciphertexts = [scheme.encrypt(value) for value in skewed_plaintexts]
        result = frequency_analysis_attack(
            ciphertexts, skewed_plaintexts, ground_truth=skewed_plaintexts
        )
        # every ciphertext unique -> rank matching recovers at most the most
        # common value by accident; far below the DET case
        assert result.recovery_rate < 0.6

    def test_recovery_degrades_with_wrong_auxiliary(self, keychain, skewed_plaintexts):
        scheme = DeterministicScheme(keychain.key_for("freq"))
        ciphertexts = [scheme.encrypt(value) for value in skewed_plaintexts]
        wrong_auxiliary = ["Madrid"] * 50 + ["Lisbon"] * 50
        result = frequency_analysis_attack(
            ciphertexts, wrong_auxiliary, ground_truth=skewed_plaintexts
        )
        assert result.recovery_rate == 0.0

    def test_guesses_mapping_without_ground_truth(self, keychain, skewed_plaintexts):
        scheme = DeterministicScheme(keychain.key_for("freq"))
        ciphertexts = [scheme.encrypt(value) for value in skewed_plaintexts]
        result = frequency_analysis_attack(ciphertexts, skewed_plaintexts)
        assert result.guesses[scheme.encrypt("Berlin")] == "Berlin"
        assert result.correct == 0

    def test_validation(self):
        with pytest.raises(AttackError):
            frequency_analysis_attack([], ["a"])
        with pytest.raises(AttackError):
            frequency_analysis_attack(["c"], ["a"], ground_truth=["a", "b"])


class TestSortingAttack:
    def test_high_recovery_with_exact_auxiliary(self, keychain):
        values = list(range(0, 200, 2))
        ope = OrderPreservingScheme(keychain.key_for("sort"), domain_min=0, domain_max=1000)
        ciphertexts = [ope.encrypt(v) for v in values]
        result = sorting_attack(ciphertexts, values, ground_truth=values)
        assert result.recovery_rate == 1.0
        assert result.mean_absolute_error == 0.0

    def test_approximate_recovery_with_sampled_auxiliary(self, keychain):
        values = list(range(100))
        auxiliary = list(range(0, 100, 3))  # coarser sample of the same distribution
        ope = OrderPreservingScheme(keychain.key_for("sort"), domain_min=0, domain_max=1000)
        ciphertexts = [ope.encrypt(v) for v in values]
        result = sorting_attack(ciphertexts, auxiliary, ground_truth=values)
        assert result.mean_absolute_error < 5.0

    def test_validation(self):
        with pytest.raises(AttackError):
            sorting_attack([], [1, 2])
        with pytest.raises(AttackError):
            sorting_attack([1], [])
        with pytest.raises(AttackError):
            sorting_attack([1, 2], [1], ground_truth=[1])


class TestQueryOnlyAttack:
    LOG = [
        "SELECT a FROM t WHERE city = 'Berlin'",
        "SELECT a FROM t WHERE city = 'Berlin'",
        "SELECT a FROM t WHERE city = 'Berlin'",
        "SELECT a FROM t WHERE city = 'Paris'",
        "SELECT a FROM t WHERE city = 'Paris'",
        "SELECT a FROM t WHERE city = 'Rome'",
        "SELECT b FROM t WHERE amount > 100",
        "SELECT b FROM t WHERE amount > 100",
        "SELECT b FROM t WHERE amount > 250",
    ]

    def test_extract_constants(self):
        log = QueryLog.from_sql(self.LOG)
        constants = extract_constants(log)
        assert constants.count("Berlin") == 3
        assert constants.count(100) == 2

    def test_det_constants_recovered(self, keychain):
        log = QueryLog.from_sql(self.LOG)
        encrypted = TokenDpeScheme(keychain).encrypt_log(log)
        result = query_only_attack(encrypted, extract_constants(log), plaintext_log=log)
        assert result.recovery_rate >= 0.5
        assert result.distinct_ciphertexts < result.constants_seen

    def test_prob_constants_not_recovered(self, keychain):
        log = QueryLog.from_sql(self.LOG)
        encrypted = StructureDpeScheme(keychain).encrypt_log(log)
        result = query_only_attack(encrypted, extract_constants(log), plaintext_log=log)
        assert result.distinct_ciphertexts == result.constants_seen
        assert result.recovery_rate <= 0.4

    def test_empty_log(self):
        log = QueryLog.from_sql(["SELECT a FROM t"])
        result = query_only_attack(log, [], plaintext_log=log)
        assert result.constants_seen == 0
        assert result.recovery_rate == 0.0

    def test_mismatched_logs_rejected(self, keychain):
        log = QueryLog.from_sql(self.LOG)
        other = QueryLog.from_sql(self.LOG[:3])
        with pytest.raises(AttackError):
            query_only_attack(other, [], plaintext_log=log)
