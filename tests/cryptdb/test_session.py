"""Tests for the batched proxy session API."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.onion import Onion
from repro.cryptdb.proxy import CryptDBProxy, JoinGroupSpec
from repro.exceptions import CryptDbError, RewriteError
from repro.sql.parser import parse_query


@pytest.fixture
def proxy(small_database) -> CryptDBProxy:
    keychain = KeyChain(MasterKey.from_passphrase("session-tests"))
    proxy = CryptDBProxy(
        keychain,
        join_groups=[
            JoinGroupSpec("users-accounts", frozenset({("users", "uid"), ("accounts", "owner_id")}))
        ],
        paillier_bits=256,
    )
    proxy.encrypt_database(small_database)
    return proxy


WORKLOAD = [
    "SELECT name FROM users WHERE age > 30",
    "SELECT city, COUNT(*) FROM users GROUP BY city",
    "SELECT name FROM users WHERE city = 'Paris'",
    "SELECT SUM(salary) FROM users",
    "SELECT name FROM users JOIN accounts ON uid = owner_id WHERE balance > 0",
]


class TestSessionRun:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_run_matches_single_query_execution(self, proxy, backend):
        queries = [parse_query(sql) for sql in WORKLOAD]
        with proxy.session(backend=backend) as session:
            batch_results = session.run(queries)
        assert len(batch_results) == len(queries)
        for query, batch in zip(queries, batch_results):
            single = proxy.execute(query)
            assert batch.encrypted_query == single.encrypted_query
            assert batch.result.columns == single.result.columns
            assert batch.result.tuple_set() == single.result.tuple_set()

    def test_backends_return_identical_encrypted_results(self, proxy):
        queries = [parse_query(sql) for sql in WORKLOAD]
        with proxy.session(backend="memory") as memory_session:
            with proxy.session(backend="sqlite") as sqlite_session:
                memory_results = memory_session.run(queries)
                sqlite_results = sqlite_session.run(queries)
        for reference, candidate in zip(memory_results, sqlite_results):
            assert reference.result.columns == candidate.result.columns
            assert reference.result.tuple_set() == candidate.result.tuple_set()

    def test_session_reports_backend_name(self, proxy):
        with proxy.session(backend="sqlite") as session:
            assert session.backend_name == "sqlite"
        assert proxy.backend_name == "memory"

    def test_decrypted_session_results_match_plain(self, proxy):
        queries = [parse_query(sql) for sql in WORKLOAD]
        with proxy.session(backend="sqlite") as session:
            for encrypted in session.run(queries):
                decrypted = proxy.decrypt_result(encrypted)
                plain = proxy.execute_plain(encrypted.plain_query)
                assert decrypted.tuple_set() == plain.tuple_set()


class TestSessionErrorHandling:
    def test_unsupported_query_raises_by_default(self, proxy):
        with proxy.session() as session:
            with pytest.raises(RewriteError):
                session.execute(parse_query("SELECT AVG(age) FROM users"))

    def test_skip_mode_records_unsupported_queries(self, proxy):
        queries = [
            parse_query("SELECT name FROM users WHERE age > 30"),
            parse_query("SELECT AVG(age) FROM users"),  # AVG is not rewritable
            parse_query("SELECT city FROM users"),
        ]
        with proxy.session(on_unsupported="skip") as session:
            results = session.run(queries)
        assert len(results) == 2
        assert len(session.skipped) == 1
        skipped_query, reason = session.skipped[0]
        assert skipped_query == queries[1]
        assert "AVG" in reason

    def test_invalid_skip_mode_rejected(self, proxy):
        with pytest.raises(CryptDbError):
            proxy.session(on_unsupported="ignore")

    def test_session_requires_encrypted_database(self):
        bare = CryptDBProxy(KeyChain(MasterKey.from_passphrase("bare")), paillier_bits=256)
        with pytest.raises(CryptDbError):
            bare.session()


class TestSessionExposureTracking:
    def test_adjustments_accumulate_over_workload(self, proxy):
        with proxy.session() as session:
            session.run([parse_query(sql) for sql in WORKLOAD])
            adjusted = {(table, column, onion) for table, column, onion, _ in session.adjustments}
        assert ("users", "age", Onion.ORD) in adjusted
        assert ("users", "city", Onion.EQ) in adjusted
        # the HOM onion is single-layer (never peeled), so SUM(salary) must
        # not record an adjustment
        assert ("users", "salary", Onion.HOM) not in adjusted

    def test_exposure_report_reflects_session_workload(self, proxy):
        before = proxy.exposure_report()[("users", "age")]["onions"]
        assert before[Onion.ORD.value] == "RND"
        with proxy.session(backend="sqlite") as session:
            session.run([parse_query("SELECT name FROM users WHERE age > 30")])
            after = session.exposure_report()[("users", "age")]["onions"]
        assert after[Onion.ORD.value] == "OPE"
