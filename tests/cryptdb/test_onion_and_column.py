"""Tests for onion states and the encrypted schema map."""

from __future__ import annotations

import pytest

from repro.crypto.base import EncryptionClass
from repro.crypto.det import DeterministicScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.crypto.taxonomy import SECURITY_LEVELS
from repro.cryptdb.column import (
    ColumnEncryption,
    EncryptedColumn,
    EncryptedSchemaMap,
    EncryptedTable,
    normalize_equality_value,
)
from repro.cryptdb.onion import ONION_STACKS, Onion, OnionLayer, OnionState
from repro.db.schema import ColumnType
from repro.exceptions import CryptDbError, OnionError


class TestOnionState:
    def test_initial_state_is_outermost(self):
        state = OnionState.initial((Onion.EQ, Onion.ORD, Onion.HOM))
        assert state.current_layer(Onion.EQ) is OnionLayer.RND
        assert state.current_layer(Onion.ORD) is OnionLayer.RND
        assert state.current_layer(Onion.HOM) is OnionLayer.HOM

    def test_adjust_peels_layers(self):
        state = OnionState.initial((Onion.EQ,))
        assert state.adjust_to(Onion.EQ, OnionLayer.DET) is True
        assert state.current_layer(Onion.EQ) is OnionLayer.DET
        # idempotent
        assert state.adjust_to(Onion.EQ, OnionLayer.DET) is False

    def test_adjust_cannot_rewrap(self):
        state = OnionState.initial((Onion.EQ,))
        state.adjust_to(Onion.EQ, OnionLayer.JOIN)
        with pytest.raises(OnionError):
            state.adjust_to(Onion.EQ, OnionLayer.RND)

    def test_adjust_rejects_foreign_layer(self):
        state = OnionState.initial((Onion.EQ,))
        with pytest.raises(OnionError):
            state.adjust_to(Onion.EQ, OnionLayer.OPE)

    def test_missing_onion_raises(self):
        state = OnionState.initial((Onion.EQ,))
        with pytest.raises(OnionError):
            state.current_layer(Onion.ORD)

    def test_exposed_classes_and_weakest_level(self):
        state = OnionState.initial((Onion.EQ, Onion.ORD))
        assert state.exposed_classes() == frozenset({EncryptionClass.PROB})
        state.adjust_to(Onion.ORD, OnionLayer.OPE)
        assert EncryptionClass.OPE in state.exposed_classes()
        assert state.weakest_exposed_level(SECURITY_LEVELS) == 1

    def test_layer_class_mapping(self):
        assert OnionLayer.RND.encryption_class is EncryptionClass.PROB
        assert OnionLayer.DET.encryption_class is EncryptionClass.DET
        assert OnionLayer.OPE.encryption_class is EncryptionClass.OPE
        assert OnionLayer.HOM.encryption_class is EncryptionClass.HOM

    def test_stacks_order_rnd_outermost(self):
        assert ONION_STACKS[Onion.EQ][0] is OnionLayer.RND
        assert ONION_STACKS[Onion.ORD][0] is OnionLayer.RND


class TestNormalizeEqualityValue:
    def test_integral_float_folds_to_int(self):
        assert normalize_equality_value(5.0) == 5
        assert isinstance(normalize_equality_value(5.0), int)

    def test_non_integral_float_unchanged(self):
        assert normalize_equality_value(5.25) == 5.25

    def test_other_types_unchanged(self):
        assert normalize_equality_value("x") == "x"
        assert normalize_equality_value(7) == 7
        assert normalize_equality_value(True) is True


def make_column(keychain, name: str = "age", numeric: bool = True) -> EncryptedColumn:
    encryption = ColumnEncryption(
        det=DeterministicScheme(keychain.key_for("c", name, "det")),
        prob=ProbabilisticScheme(keychain.key_for("c", name, "prob")),
    )
    return EncryptedColumn(
        plain_table="users",
        plain_name=name,
        encrypted_name=f"enc_{name}",
        column_type=ColumnType.INTEGER if numeric else ColumnType.TEXT,
        onions=(Onion.EQ,),
        encryption=encryption,
    )


class TestEncryptedColumnAndSchemaMap:
    def test_physical_names(self, keychain):
        column = make_column(keychain)
        assert column.physical_name(Onion.EQ) == "enc_age"
        with pytest.raises(CryptDbError):
            column.physical_name(Onion.ORD)

    def test_missing_onion_scheme_raises(self, keychain):
        column = make_column(keychain)
        with pytest.raises(CryptDbError):
            column.encryption.scheme_for_onion(Onion.ORD)
        with pytest.raises(CryptDbError):
            column.encryption.scheme_for_onion(Onion.HOM)

    def test_encode_numeric_scaling(self, keychain):
        column = make_column(keychain)
        column.encryption.numeric_scale = 100
        assert column.encode_numeric(2.5) == 250
        with pytest.raises(CryptDbError):
            column.encode_numeric("x")

    def test_schema_map_lookup(self, keychain):
        table = EncryptedTable("users", "enc_users")
        column = make_column(keychain)
        table.columns["age"] = column
        schema_map = EncryptedSchemaMap()
        schema_map.add_table(table)

        assert schema_map.table("users").encrypted_name == "enc_users"
        assert schema_map.table_by_encrypted_name("enc_users").plain_name == "users"
        assert schema_map.column("users", "age") is column
        assert schema_map.find_column("age", ("users",)) is column
        assert schema_map.has_table("users")
        assert len(schema_map.all_columns()) == 1

    def test_schema_map_errors(self, keychain):
        schema_map = EncryptedSchemaMap()
        table = EncryptedTable("users", "enc_users")
        table.columns["age"] = make_column(keychain)
        schema_map.add_table(table)
        with pytest.raises(CryptDbError):
            schema_map.add_table(EncryptedTable("users", "enc_users2"))
        with pytest.raises(CryptDbError):
            schema_map.table("missing")
        with pytest.raises(CryptDbError):
            schema_map.column("users", "missing")
        with pytest.raises(CryptDbError):
            schema_map.find_column("age", ("nope",))

    def test_find_column_ambiguous(self, keychain):
        schema_map = EncryptedSchemaMap()
        for table_name in ("a", "b"):
            table = EncryptedTable(table_name, f"enc_{table_name}")
            table.columns["x"] = make_column(keychain, "x")
            schema_map.add_table(table)
        with pytest.raises(CryptDbError):
            schema_map.find_column("x", ("a", "b"))
