"""Edge-case tests for the CryptDB layer: error paths and less-common shapes."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.proxy import CryptDBProxy, EncryptedResult, JoinGroupSpec
from repro.cryptdb.rewriter import ConstantContext, ConstantPolicy
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import CryptDbError, RewriteError
from repro.sql.parser import parse_query


@pytest.fixture
def nullable_database() -> Database:
    database = Database("nullable")
    database.create_table(
        TableSchema(
            "items",
            [
                Column("item_id", ColumnType.INTEGER),
                Column("label", ColumnType.TEXT),
                Column("price", ColumnType.REAL),
            ],
        )
    )
    database.insert_many(
        "items",
        [
            {"item_id": 1, "label": "a", "price": 10.0},
            {"item_id": 2, "label": None, "price": 20.5},
            {"item_id": 3, "label": "c", "price": None},
            {"item_id": 4, "label": "a", "price": 5.0},
        ],
    )
    return database


@pytest.fixture
def proxy(nullable_database) -> CryptDBProxy:
    proxy = CryptDBProxy(
        KeyChain(MasterKey.from_passphrase("edge-cases")), paillier_bits=256
    )
    proxy.encrypt_database(nullable_database)
    return proxy


class TestNullHandling:
    def test_nulls_stay_null_in_encrypted_tables(self, proxy):
        mapping = proxy.schema_map.table("items")
        encrypted_table = proxy.encrypted_database.table(mapping.encrypted_name)
        label_column = mapping.column("label").physical_name
        from repro.cryptdb.onion import Onion

        values = encrypted_table.column_values(label_column(Onion.EQ))
        assert values.count(None) == 1

    def test_is_null_predicate_over_encrypted_data(self, proxy):
        query = parse_query("SELECT item_id FROM items WHERE label IS NULL")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        assert decrypted.rows == ((2,),)

    def test_null_cells_decrypt_to_null(self, proxy):
        query = parse_query("SELECT item_id, price FROM items WHERE item_id = 3")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        assert decrypted.rows[0][1] is None

    def test_aggregates_skip_nulls_like_plaintext(self, proxy):
        query = parse_query("SELECT COUNT(price), SUM(price) FROM items WHERE item_id > 0")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        plain = proxy.execute_plain(query)
        assert decrypted.rows[0][0] == plain.rows[0][0] == 3
        assert decrypted.rows[0][1] == pytest.approx(plain.rows[0][1])


class TestRealColumnsAndScaling:
    def test_real_range_predicates_use_scaled_ope(self, proxy):
        query = parse_query("SELECT item_id FROM items WHERE price >= 10.0")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        plain = proxy.execute_plain(query)
        assert sorted(decrypted.rows) == sorted(plain.rows)

    def test_real_equality_with_integral_float_matches_plain(self, proxy):
        query = parse_query("SELECT item_id FROM items WHERE price = 10.0")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        assert decrypted.rows == ((1,),)


class TestErrorPaths:
    def test_decrypt_result_for_unknown_aggregate(self, proxy):
        query = parse_query("SELECT item_id FROM items WHERE item_id = 1")
        result = proxy.execute(query)
        # Corrupt the mapping by pretending the plaintext query had an
        # unsupported projection shape.
        bad = EncryptedResult(
            plain_query=parse_query("SELECT item_id + 1 FROM items WHERE item_id = 1"),
            encrypted_query=result.encrypted_query,
            result=result.result,
        )
        with pytest.raises(CryptDbError):
            proxy.decrypt_result(bad)

    def test_constant_policy_must_be_implemented(self, proxy):
        policy = ConstantPolicy()
        column = proxy.schema_map.column("items", "item_id")
        from repro.cryptdb.onion import Onion

        with pytest.raises(NotImplementedError):
            policy.encrypt_constant(5, ConstantContext(column, Onion.EQ))

    def test_range_predicate_on_text_column_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT item_id FROM items WHERE label BETWEEN 'a' AND 'c'"))

    def test_group_by_expression_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(
                parse_query("SELECT COUNT(*) FROM items GROUP BY price * 2")
            )

    def test_having_sum_comparison_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(
                parse_query(
                    "SELECT label, COUNT(*) FROM items GROUP BY label HAVING SUM(price) > 10"
                )
            )

    def test_join_group_spec_is_hashable_value(self):
        spec = JoinGroupSpec("g", frozenset({("a", "x")}))
        assert spec == JoinGroupSpec("g", frozenset({("a", "x")}))


class TestOrderByAndLimitOverCiphertexts:
    def test_order_by_numeric_column_uses_ope(self, proxy):
        query = parse_query(
            "SELECT item_id, price FROM items WHERE price > 1.0 ORDER BY price ASC"
        )
        decrypted = proxy.decrypt_result(proxy.execute(query))
        plain = proxy.execute_plain(query)
        assert [row[0] for row in decrypted.rows] == [row[0] for row in plain.rows]

    def test_limit_preserved(self, proxy):
        query = parse_query(
            "SELECT item_id FROM items WHERE item_id >= 1 ORDER BY item_id ASC LIMIT 2"
        )
        decrypted = proxy.decrypt_result(proxy.execute(query))
        assert decrypted.rows == ((1,), (2,))
