"""Tests for the CryptDB-style proxy and query rewriter."""

from __future__ import annotations

import pytest

from repro.crypto.base import EncryptionClass
from repro.crypto.keys import KeyChain, MasterKey
from repro.cryptdb.onion import Onion, OnionLayer
from repro.cryptdb.proxy import CryptDBProxy, JoinGroupSpec
from repro.exceptions import CryptDbError, RewriteError
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.sql.visitor import literals


@pytest.fixture
def proxy(small_database) -> CryptDBProxy:
    keychain = KeyChain(MasterKey.from_passphrase("proxy-tests"))
    proxy = CryptDBProxy(
        keychain,
        join_groups=[
            JoinGroupSpec("users-accounts", frozenset({("users", "uid"), ("accounts", "owner_id")}))
        ],
        paillier_bits=256,
    )
    proxy.encrypt_database(small_database)
    return proxy


class TestDatabaseEncryption:
    def test_encrypted_database_has_same_shape(self, proxy, small_database):
        encrypted = proxy.encrypted_database
        assert len(encrypted.table_names) == len(small_database.table_names)
        for table in small_database:
            mapping = proxy.schema_map.table(table.name)
            assert len(encrypted.table(mapping.encrypted_name)) == len(table)

    def test_table_and_column_names_are_hidden(self, proxy, small_database):
        for name in small_database.table_names:
            assert name not in proxy.encrypted_database.table_names
        users_mapping = proxy.schema_map.table("users")
        physical_columns = proxy.encrypted_database.table(
            users_mapping.encrypted_name
        ).schema.column_names
        assert "age" not in physical_columns
        assert all(column.startswith("enc_") for column in physical_columns)

    def test_numeric_columns_get_three_onions(self, proxy):
        age = proxy.schema_map.column("users", "age")
        assert set(age.onions) == {Onion.EQ, Onion.ORD, Onion.HOM}
        city = proxy.schema_map.column("users", "city")
        assert set(city.onions) == {Onion.EQ}

    def test_cell_values_are_ciphertexts(self, proxy):
        mapping = proxy.schema_map.table("users")
        encrypted_table = proxy.encrypted_database.table(mapping.encrypted_name)
        eq_column = mapping.column("name").physical_name(Onion.EQ)
        values = encrypted_table.column_values(eq_column)
        assert all(isinstance(value, str) and value.startswith("det:") for value in values)

    def test_encrypt_database_required_before_queries(self):
        bare = CryptDBProxy(KeyChain(MasterKey.from_passphrase("bare")), paillier_bits=256)
        with pytest.raises(CryptDbError):
            bare.encrypt_query(parse_query("SELECT a FROM t"))
        with pytest.raises(CryptDbError):
            _ = bare.encrypted_database


class TestRewriting:
    def test_identifiers_and_constants_replaced(self, proxy):
        encrypted = proxy.encrypt_query(parse_query("SELECT name FROM users WHERE age > 30"))
        sql = render_query(encrypted)
        assert "users" not in sql and "name" not in sql and "age" not in sql
        assert "30" not in sql.split("WHERE")[1] or "enc_" in sql

    def test_encrypted_query_is_parseable_sql(self, proxy):
        encrypted = proxy.encrypt_query(
            parse_query("SELECT name, age FROM users WHERE age BETWEEN 20 AND 40 AND city = 'Rome'")
        )
        assert parse_query(render_query(encrypted)) == encrypted

    def test_equality_uses_eq_onion_and_range_uses_ord(self, proxy):
        encrypted = proxy.encrypt_query(
            parse_query("SELECT uid FROM users WHERE city = 'Rome' AND age > 30")
        )
        constants = literals(encrypted)
        kinds = {type(literal.value) for literal in constants}
        assert str in kinds  # DET ciphertext for the equality constant
        assert int in kinds  # OPE ciphertext for the range constant

    def test_rewriter_records_onion_adjustments(self, proxy):
        rewriter = proxy.make_rewriter()
        rewriter.rewrite(parse_query("SELECT uid FROM users WHERE age > 30"))
        adjusted = {(table, column, onion) for table, column, onion, _ in rewriter.adjustments}
        assert ("users", "age", Onion.ORD) in adjusted

    def test_like_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT name FROM users WHERE name LIKE 'a%'"))

    def test_star_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT * FROM users"))

    def test_avg_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT AVG(age) FROM users"))

    def test_unknown_table_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT a FROM missing"))

    def test_text_column_range_predicate_rejected(self, proxy):
        with pytest.raises(RewriteError):
            proxy.encrypt_query(parse_query("SELECT uid FROM users WHERE city > 'A'"))


class TestEncryptedExecution:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT name FROM users WHERE age > 40",
            "SELECT name, city FROM users WHERE city = 'Berlin'",
            "SELECT uid FROM users WHERE age BETWEEN 23 AND 48 AND city = 'Paris'",
            "SELECT name FROM users WHERE uid IN (1, 3, 5)",
            "SELECT DISTINCT city FROM users WHERE age >= 18",
            "SELECT name FROM users JOIN accounts ON uid = owner_id WHERE balance < 0",
            "SELECT name FROM users WHERE age > 100",
        ],
    )
    def test_execute_then_decrypt_matches_plain(self, proxy, sql):
        query = parse_query(sql)
        encrypted_result = proxy.execute(query)
        decrypted = proxy.decrypt_result(encrypted_result)
        plain = proxy.execute_plain(query)
        assert sorted(map(repr, decrypted.rows)) == sorted(map(repr, plain.rows))

    def test_aggregates_over_encrypted_data(self, proxy):
        query = parse_query(
            "SELECT city, COUNT(*), SUM(age), MIN(salary), MAX(age) FROM users "
            "WHERE age > 20 GROUP BY city"
        )
        decrypted = proxy.decrypt_result(proxy.execute(query))
        plain = proxy.execute_plain(query)
        assert len(decrypted.rows) == len(plain.rows)
        for decrypted_row, plain_row in zip(
            sorted(decrypted.rows, key=repr), sorted(plain.rows, key=repr)
        ):
            assert decrypted_row[0] == plain_row[0]
            assert decrypted_row[1] == plain_row[1]
            assert decrypted_row[2] == pytest.approx(plain_row[2])
            assert decrypted_row[3] == pytest.approx(plain_row[3])
            assert decrypted_row[4] == pytest.approx(plain_row[4])

    def test_count_star_without_group(self, proxy):
        query = parse_query("SELECT COUNT(*) FROM accounts WHERE balance > 0")
        decrypted = proxy.decrypt_result(proxy.execute(query))
        plain = proxy.execute_plain(query)
        assert decrypted.rows == plain.rows

    def test_join_produces_same_cardinality(self, proxy):
        query = parse_query(
            "SELECT name, balance FROM users JOIN accounts ON uid = owner_id"
        )
        encrypted_result = proxy.execute(query)
        plain = proxy.execute_plain(query)
        assert len(encrypted_result.result) == len(plain)

    def test_result_tuples_are_deterministic_ciphertexts(self, proxy):
        query = parse_query("SELECT city FROM users WHERE age > 18")
        first = proxy.execute(query).result.tuple_set()
        second = proxy.execute(query).result.tuple_set()
        assert first == second
        assert all(isinstance(value, str) for row in first for value in row)


class TestExposureReport:
    def test_exposure_tracks_workload(self, small_database):
        keychain = KeyChain(MasterKey.from_passphrase("exposure"))
        proxy = CryptDBProxy(keychain, paillier_bits=256)
        proxy.encrypt_database(small_database)
        report_before = proxy.exposure_report()
        assert report_before[("users", "age")]["security_level"] == 3

        proxy.encrypt_query(parse_query("SELECT name FROM users WHERE age > 30"))
        report_after = proxy.exposure_report()
        assert report_after[("users", "age")]["weakest_class"] is EncryptionClass.OPE
        assert report_after[("users", "age")]["security_level"] == 1
        # name was projected -> DET exposure of its EQ onion
        assert report_after[("users", "name")]["weakest_class"] is EncryptionClass.DET
        # salary untouched -> still at the probabilistic level
        assert report_after[("users", "salary")]["security_level"] == 3

    def test_hom_exposure_from_sum(self, small_database):
        keychain = KeyChain(MasterKey.from_passphrase("exposure-hom"))
        proxy = CryptDBProxy(keychain, paillier_bits=256)
        proxy.encrypt_database(small_database)
        proxy.encrypt_query(parse_query("SELECT SUM(salary) FROM users WHERE age > 30"))
        report = proxy.exposure_report()
        assert report[("users", "salary")]["weakest_class"] is EncryptionClass.HOM


class TestSharedDetKey:
    def test_shared_key_makes_cross_column_equality_visible(self, small_database):
        keychain = KeyChain(MasterKey.from_passphrase("shared-det"))
        proxy = CryptDBProxy(keychain, paillier_bits=256, shared_det_key=True)
        proxy.encrypt_database(small_database)
        uid_column = proxy.schema_map.column("users", "uid")
        owner_column = proxy.schema_map.column("accounts", "owner_id")
        assert uid_column.encryption.det.encrypt(7) == owner_column.encryption.det.encrypt(7)

    def test_per_column_keys_differ_without_flag(self, proxy):
        uid_column = proxy.schema_map.column("users", "uid")
        acc_column = proxy.schema_map.column("accounts", "acc_id")
        assert uid_column.encryption.det.encrypt(7) != acc_column.encryption.det.encrypt(7)
