"""Sliding windows and sharded ingest: exactness over the live set.

Two contracts:

* an :class:`ApproxStreamMiner` over a :class:`SlidingWindowQueryLog` must
  produce, at any point, exactly what the exact pipeline produces over the
  *live* entries in id order — eviction included;
* a :class:`ShardedIncrementalMatrix` must produce, after draining, exactly
  what the exact pipeline produces over every appended entry in append
  order — regardless of shard count or batch raggedness.

Plus the seeded-determinism regression: the same seed replays the same
pivot choices *and* the same eviction history, so labels are identical
run-to-run (no module-level randomness anywhere in the approx layer).
"""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext
from repro.core.measures import TokenDistance
from repro.exceptions import MiningError
from repro.mining import (
    ApproxStreamMiner,
    ShardedIncrementalMatrix,
    SlidingWindowQueryLog,
    dbscan,
    distance_based_outliers,
    k_nearest_neighbors,
)
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix

PARAMS = dict(knn_k=3, outlier_p=0.85, outlier_d=0.6, dbscan_eps=0.5, dbscan_min_points=3)


def _entries(webshop, size=60, seed=41):
    log = QueryLogGenerator(webshop, WorkloadMix(), seed=seed).generate(size)
    entries = list(log)
    return entries + entries[:20]  # duplicate-heavy tail


def _exact_over(entries):
    """Exact artefacts over ``entries`` in order, with PARAMS."""
    matrix = TokenDistance().condensed_distance_matrix(
        LogContext(log=QueryLog(entries))
    )
    clusters = dbscan(matrix, eps=PARAMS["dbscan_eps"], min_points=PARAMS["dbscan_min_points"])
    outliers = distance_based_outliers(matrix, p=PARAMS["outlier_p"], d=PARAMS["outlier_d"])
    k = min(PARAMS["knn_k"], matrix.n - 1)
    knn = [k_nearest_neighbors(matrix, i, k=k) for i in range(matrix.n)]
    return clusters, outliers, knn


def _assert_window_matches_exact(miner):
    """The miner's artefacts equal the exact pipeline over the live entries."""
    window = miner.window_log
    with window.lock:
        live_ids = window.live_ids()
        live_entries = list(window)
    clusters, outliers, knn = _exact_over(live_entries)
    approx_clusters, s1 = miner.dbscan()
    approx_outliers_result, s2 = miner.outliers()
    approx_knn, s3 = miner.knn_all()
    assert s1.certified_complete and s2.certified_complete and s3.certified_complete
    assert approx_clusters == clusters
    assert approx_outliers_result == outliers
    # Window results are keyed/valued by ids; map to positions for comparison.
    position = {item_id: pos for pos, item_id in enumerate(sorted(live_ids))}
    for item_id, neighbors in approx_knn.items():
        expected = knn[position[item_id]]
        assert tuple(position[j] for j in neighbors) == expected, item_id


class TestSlidingWindowQueryLog:
    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            SlidingWindowQueryLog(window=0)
        with pytest.raises(MiningError):
            SlidingWindowQueryLog(window=4, decay=1.0)
        with pytest.raises(MiningError):
            SlidingWindowQueryLog(window=4, decay=-0.1)

    def test_fifo_eviction_keeps_newest(self, webshop):
        entries = _entries(webshop, size=20)
        window = SlidingWindowQueryLog(window=8)
        window.append(entries)
        assert len(window) == 8
        assert window.live_ids() == tuple(range(len(entries) - 8, len(entries)))
        assert window.evictions == len(entries) - 8
        assert window.total_appended == len(entries)

    def test_decayed_eviction_is_age_biased(self, webshop):
        entries = _entries(webshop, size=60)
        window = SlidingWindowQueryLog(window=20, decay=0.5, seed=9)
        window.append(entries)
        live = window.live_ids()
        assert len(live) == 20
        # Geometric bias: the surviving set must be dominated by recent ids.
        newest_half = sum(1 for item_id in live if item_id >= len(entries) // 2)
        assert newest_half > 10

    def test_eviction_subscribers_see_id_entry_pairs(self, webshop):
        entries = _entries(webshop)[:12]
        window = SlidingWindowQueryLog(window=10)
        observed: list[tuple[int, object]] = []
        window.subscribe_evictions(lambda evicted: observed.extend(evicted))
        window.append(entries)
        assert [item_id for item_id, _ in observed] == [0, 1]
        assert all(entry is entries[item_id] for item_id, entry in observed)


class TestApproxStreamMiner:
    @pytest.mark.parametrize("decay", [0.0, 0.6])
    def test_windowed_mining_equals_exact_over_live_entries(self, webshop, decay):
        entries = _entries(webshop)
        miner = ApproxStreamMiner(
            TokenDistance(), window=48, decay=decay, seed=5, n_pivots=4, **PARAMS
        )
        consumed = 0
        for size in (10, 30, 3, 25, 12):  # ragged batches crossing the window
            miner.append(entries[consumed : consumed + size])
            consumed += size
            _assert_window_matches_exact(miner)
        assert miner.n_items == min(consumed, 48)
        assert miner.window_log.evictions == max(consumed - 48, 0)

    def test_preexisting_window_entries_are_ingested(self, webshop):
        entries = _entries(webshop, size=30)
        window = SlidingWindowQueryLog(entries, window=25, seed=2)
        miner = ApproxStreamMiner(TokenDistance(), window, n_pivots=4, **PARAMS)
        assert miner.n_items == 25
        assert miner.item_ids() == window.live_ids()
        _assert_window_matches_exact(miner)

    def test_single_item_knn_matches_knn_all(self, webshop):
        entries = _entries(webshop, size=20)
        miner = ApproxStreamMiner(TokenDistance(), window=20, n_pivots=4, **PARAMS)
        miner.append(entries)
        all_knn, _ = miner.knn_all()
        for item_id in miner.item_ids()[:5]:
            single, _ = miner.knn(item_id)
            assert single == all_knn[item_id]


class TestSeededDeterminism:
    """Same seed => same eviction history, same pivots, same labels."""

    def test_same_seed_same_labels(self, webshop):
        entries = _entries(webshop)

        def run(seed):
            miner = ApproxStreamMiner(
                TokenDistance(), window=40, decay=0.5, seed=seed, n_pivots=4, **PARAMS
            )
            for start in range(0, len(entries), 16):
                miner.append(entries[start : start + 16])
            clusters, _ = miner.dbscan()
            return miner.item_ids(), clusters

        ids_a, clusters_a = run(123)
        ids_b, clusters_b = run(123)
        assert ids_a == ids_b
        assert clusters_a == clusters_b

    def test_different_seed_may_evict_differently(self, webshop):
        entries = _entries(webshop)

        def live(seed):
            window = SlidingWindowQueryLog(window=30, decay=0.5, seed=seed)
            window.append(entries)
            return window.live_ids()

        assert live(1) == live(1)
        # Not a hard guarantee for arbitrary seeds, but these two differ.
        assert live(1) != live(4)


class TestShardedIncrementalMatrix:
    def test_append_buffers_without_distance_work(self, webshop):
        entries = _entries(webshop, size=30)
        sharded = ShardedIncrementalMatrix(TokenDistance(), n_shards=4, **PARAMS)
        sharded.append(entries)
        assert sharded.pending == len(entries)
        assert sharded.n_items == 0
        assert sharded.index.table_distances == 0
        assert sharded.drain() == len(entries)
        assert sharded.pending == 0
        assert sharded.n_items == len(entries)

    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_sharded_mining_equals_exact(self, webshop, n_shards):
        entries = _entries(webshop)
        sharded = ShardedIncrementalMatrix(
            TokenDistance(), n_shards=n_shards, n_pivots=4, seed=7, **PARAMS
        )
        for start in range(0, len(entries), 17):
            sharded.append(entries[start : start + 17])
        clusters, outliers, knn = _exact_over(entries)
        approx_clusters, s1 = sharded.dbscan()
        approx_outlier_result, s2 = sharded.outliers()
        approx_knn, s3 = sharded.knn_all()
        assert s1.certified_complete and s2.certified_complete and s3.certified_complete
        assert approx_clusters == clusters
        assert approx_outlier_result == outliers
        assert [approx_knn[i] for i in range(len(entries))] == knn

    def test_redrain_after_second_batch_stays_exact(self, webshop):
        entries = _entries(webshop, size=40)
        sharded = ShardedIncrementalMatrix(TokenDistance(), n_shards=3, **PARAMS)
        sharded.append(entries[:25])
        first, _ = sharded.dbscan()
        assert first == _exact_over(entries[:25])[0]
        sharded.append(entries[25:])
        assert sharded.pending == len(entries) - 25
        second, _ = sharded.dbscan()
        assert second == _exact_over(entries)[0]

    def test_shard_count_validated(self):
        with pytest.raises(MiningError):
            ShardedIncrementalMatrix(TokenDistance(), n_shards=0)
