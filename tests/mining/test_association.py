"""Tests for Apriori association-rule mining (the conclusion's extension)."""

from __future__ import annotations

import pytest

from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.exceptions import MiningError
from repro.mining.association import apriori, association_rules, mine_query_log
from repro.sql.log import QueryLog
from repro.sql.tokens import query_token_set

MARKET_BASKETS = [
    {"bread", "milk"},
    {"bread", "diapers", "beer", "eggs"},
    {"milk", "diapers", "beer", "cola"},
    {"bread", "milk", "diapers", "beer"},
    {"bread", "milk", "diapers", "cola"},
]


class TestApriori:
    def test_frequent_singletons(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.7)
        singles = {next(iter(i.items)) for i in itemsets if len(i.items) == 1}
        assert singles == {"bread", "milk", "diapers"}

    def test_singletons_at_lower_support_include_beer(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.6)
        singles = {next(iter(i.items)) for i in itemsets if len(i.items) == 1}
        assert singles == {"bread", "milk", "diapers", "beer"}

    def test_support_counts(self):
        itemsets = {frozenset(i.items): i.support_count for i in apriori(MARKET_BASKETS, min_support=0.4)}
        assert itemsets[frozenset({"bread"})] == 4
        assert itemsets[frozenset({"beer", "diapers"})] == 3
        assert itemsets[frozenset({"bread", "milk", "diapers"})] == 2

    def test_downward_closure(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        frequent = {frozenset(i.items) for i in itemsets}
        for itemset in frequent:
            if len(itemset) > 1:
                for item in itemset:
                    assert itemset - {item} in frequent

    def test_min_support_one_keeps_only_universal_items(self):
        itemsets = apriori(MARKET_BASKETS, min_support=1.0)
        assert itemsets == []

    def test_max_length(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4, max_length=1)
        assert all(len(i.items) == 1 for i in itemsets)

    def test_relative_support_helper(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        bread = next(i for i in itemsets if i.items == frozenset({"bread"}))
        assert bread.support(len(MARKET_BASKETS)) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(MiningError):
            apriori(MARKET_BASKETS, min_support=0.0)
        with pytest.raises(MiningError):
            apriori([], min_support=0.5)


class TestAssociationRules:
    def test_rule_confidence(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        rules = association_rules(itemsets, len(MARKET_BASKETS), min_confidence=0.7)
        by_rule = {(tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r for r in rules}
        beer_to_diapers = by_rule[(("beer",), ("diapers",))]
        assert beer_to_diapers.confidence == pytest.approx(1.0)
        assert beer_to_diapers.support == pytest.approx(0.6)

    def test_low_confidence_rules_excluded(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        rules = association_rules(itemsets, len(MARKET_BASKETS), min_confidence=0.99)
        assert all(rule.confidence >= 0.99 for rule in rules)

    def test_rules_sorted_by_confidence(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        rules = association_rules(itemsets, len(MARKET_BASKETS), min_confidence=0.5)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_validation(self):
        itemsets = apriori(MARKET_BASKETS, min_support=0.4)
        with pytest.raises(MiningError):
            association_rules(itemsets, len(MARKET_BASKETS), min_confidence=0.0)


QUERY_LOG = [
    "SELECT name FROM customers WHERE city = 'Berlin'",
    "SELECT name FROM customers WHERE city = 'Paris'",
    "SELECT name, age FROM customers WHERE city = 'Berlin' AND age > 30",
    "SELECT name FROM customers WHERE age > 40",
    "SELECT amount FROM orders WHERE amount > 100",
    "SELECT amount FROM orders WHERE amount > 200",
]


class TestQueryLogMining:
    def test_mine_plaintext_log(self):
        log = QueryLog.from_sql(QUERY_LOG)
        itemsets, rules = mine_query_log(log, min_support=0.3, min_confidence=0.7)
        assert itemsets
        # The FROM customers / SELECT name features co-occur often enough to
        # produce at least one rule.
        assert any(rule.confidence >= 0.7 for rule in rules)

    def test_mining_encrypted_log_is_isomorphic(self, keychain):
        """The conclusion's claim: rule mining works on the encrypted log."""
        log = QueryLog.from_sql(QUERY_LOG)
        scheme = StructureDpeScheme(keychain)
        encrypted_log = scheme.encrypt_log(log)

        plain_itemsets, plain_rules = mine_query_log(log, min_support=0.3, min_confidence=0.7)
        encrypted_itemsets, encrypted_rules = mine_query_log(
            encrypted_log, min_support=0.3, min_confidence=0.7
        )

        # Same number of frequent itemsets per size and identical support counts.
        def histogram(itemsets):
            return sorted((len(i.items), i.support_count) for i in itemsets)

        assert histogram(plain_itemsets) == histogram(encrypted_itemsets)
        # Same rule statistics (the rules themselves are the encrypted images).
        assert sorted((r.support, r.confidence) for r in plain_rules) == sorted(
            (r.support, r.confidence) for r in encrypted_rules
        )

    def test_mining_token_sets_on_encrypted_log(self, keychain):
        log = QueryLog.from_sql(QUERY_LOG)
        scheme = TokenDpeScheme(keychain)
        encrypted_log = scheme.encrypt_log(log)
        plain_itemsets, _ = mine_query_log(
            log, min_support=0.5, transaction_of=query_token_set
        )
        encrypted_itemsets, _ = mine_query_log(
            encrypted_log, min_support=0.5, transaction_of=query_token_set
        )
        assert sorted(i.support_count for i in plain_itemsets) == sorted(
            i.support_count for i in encrypted_itemsets
        )
