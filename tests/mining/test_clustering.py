"""Tests for DBSCAN, k-medoids and complete-link clustering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MiningError
from repro.mining.dbscan import NOISE, dbscan
from repro.mining.hierarchical import complete_link, cut_dendrogram
from repro.mining.kmedoids import k_medoids
from repro.mining.matrix import check_distance_matrix, condensed_to_square, square_to_condensed


def two_blobs_matrix() -> np.ndarray:
    """Six points: indices 0-2 close together, 3-5 close together, far apart."""
    points = np.array([0.0, 0.1, 0.2, 10.0, 10.1, 10.2])
    return np.abs(points[:, None] - points[None, :])


def blob_with_outlier() -> np.ndarray:
    points = np.array([0.0, 0.1, 0.2, 0.15, 50.0])
    return np.abs(points[:, None] - points[None, :])


class TestMatrixHelpers:
    def test_check_accepts_valid(self):
        matrix = two_blobs_matrix()
        assert check_distance_matrix(matrix).shape == (6, 6)

    def test_check_rejects_invalid(self):
        with pytest.raises(MiningError):
            check_distance_matrix(np.ones((2, 3)))
        with pytest.raises(MiningError):
            check_distance_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(MiningError):
            check_distance_matrix(np.array([[1.0]]))  # nonzero diagonal
        with pytest.raises(MiningError):
            check_distance_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(MiningError):
            check_distance_matrix(np.zeros((0, 0)))

    def test_condensed_round_trip(self):
        matrix = two_blobs_matrix()
        condensed = square_to_condensed(matrix)
        assert condensed.shape == (15,)
        rebuilt = condensed_to_square(condensed, 6)
        assert np.allclose(rebuilt, matrix)

    def test_condensed_wrong_size_rejected(self):
        with pytest.raises(MiningError):
            condensed_to_square(np.zeros(4), 4)


class TestDbscan:
    def test_two_blobs_found(self):
        result = dbscan(two_blobs_matrix(), eps=0.5, min_points=2)
        assert result.n_clusters == 2
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]

    def test_outlier_is_noise(self):
        result = dbscan(blob_with_outlier(), eps=0.5, min_points=2)
        assert result.labels[4] == NOISE
        assert result.noise_points() == (4,)

    def test_all_noise_when_eps_tiny(self):
        result = dbscan(two_blobs_matrix(), eps=0.001, min_points=2)
        assert result.n_clusters == 0
        assert set(result.labels) == {NOISE}

    def test_single_cluster_when_eps_huge(self):
        result = dbscan(two_blobs_matrix(), eps=100, min_points=2)
        assert result.n_clusters == 1

    def test_core_points_tracked(self):
        result = dbscan(blob_with_outlier(), eps=0.5, min_points=3)
        assert 4 not in result.core_points
        assert len(result.core_points) >= 3

    def test_cluster_members(self):
        result = dbscan(two_blobs_matrix(), eps=0.5, min_points=2)
        assert set(result.cluster_members(result.labels[0])) == {0, 1, 2}

    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            dbscan(two_blobs_matrix(), eps=-1, min_points=2)
        with pytest.raises(MiningError):
            dbscan(two_blobs_matrix(), eps=1, min_points=0)

    def test_deterministic(self):
        matrix = two_blobs_matrix()
        assert dbscan(matrix, eps=0.5, min_points=2) == dbscan(matrix, eps=0.5, min_points=2)


class TestKMedoids:
    def test_two_blobs(self):
        result = k_medoids(two_blobs_matrix(), k=2)
        assert len(set(result.labels)) == 2
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]

    def test_k_equals_n(self):
        matrix = two_blobs_matrix()
        result = k_medoids(matrix, k=6)
        assert len(set(result.labels)) == 6
        assert result.cost == 0.0

    def test_k_one(self):
        result = k_medoids(two_blobs_matrix(), k=1)
        assert set(result.labels) == {0}
        assert len(result.medoids) == 1

    def test_medoids_are_members_of_their_cluster(self):
        result = k_medoids(two_blobs_matrix(), k=2)
        for cluster_index, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == cluster_index

    def test_cost_is_sum_of_distances_to_medoids(self):
        matrix = two_blobs_matrix()
        result = k_medoids(matrix, k=2)
        expected = sum(
            matrix[i, result.medoids[result.labels[i]]] for i in range(matrix.shape[0])
        )
        assert result.cost == pytest.approx(expected)

    def test_invalid_k(self):
        with pytest.raises(MiningError):
            k_medoids(two_blobs_matrix(), k=0)
        with pytest.raises(MiningError):
            k_medoids(two_blobs_matrix(), k=7)

    def test_deterministic(self):
        matrix = blob_with_outlier()
        assert k_medoids(matrix, k=2) == k_medoids(matrix, k=2)


class TestCompleteLink:
    def test_merge_count(self):
        dendrogram = complete_link(two_blobs_matrix())
        assert dendrogram.n_items == 6
        assert len(dendrogram.merges) == 5

    def test_heights_non_decreasing(self):
        heights = complete_link(two_blobs_matrix()).heights()
        assert list(heights) == sorted(heights)

    def test_cut_by_count(self):
        labels = cut_dendrogram(complete_link(two_blobs_matrix()), n_clusters=2)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_cut_by_height(self):
        labels = cut_dendrogram(complete_link(two_blobs_matrix()), height=1.0)
        assert len(set(labels)) == 2

    def test_cut_all_singletons(self):
        labels = cut_dendrogram(complete_link(two_blobs_matrix()), n_clusters=6)
        assert len(set(labels)) == 6

    def test_cut_single_cluster(self):
        labels = cut_dendrogram(complete_link(two_blobs_matrix()), n_clusters=1)
        assert set(labels) == {0}

    def test_cut_validation(self):
        dendrogram = complete_link(two_blobs_matrix())
        with pytest.raises(MiningError):
            cut_dendrogram(dendrogram)
        with pytest.raises(MiningError):
            cut_dendrogram(dendrogram, n_clusters=2, height=1.0)
        with pytest.raises(MiningError):
            cut_dendrogram(dendrogram, n_clusters=0)

    def test_complete_link_uses_maximum_distance(self):
        # three points on a line: 0, 1, 3.  Complete link merges {0,1} first
        # (d=1), then merges with {3} at the *maximum* distance 3 (not 2).
        points = np.array([0.0, 1.0, 3.0])
        matrix = np.abs(points[:, None] - points[None, :])
        dendrogram = complete_link(matrix)
        assert dendrogram.heights() == (1.0, 3.0)


class TestDeterminismProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=3, max_size=10
        )
    )
    def test_identical_matrices_identical_results(self, values):
        points = np.array(values)
        matrix = np.abs(points[:, None] - points[None, :])
        eps = float(np.median(matrix[matrix > 0])) if (matrix > 0).any() else 1.0
        first = dbscan(matrix, eps=eps, min_points=2)
        second = dbscan(matrix.copy(), eps=eps, min_points=2)
        assert first.labels == second.labels
        k = min(3, len(values))
        assert k_medoids(matrix, k=k).labels == k_medoids(matrix.copy(), k=k).labels
        assert cut_dendrogram(complete_link(matrix), n_clusters=k) == cut_dendrogram(
            complete_link(matrix.copy()), n_clusters=k
        )
