"""The pivot (landmark) index: bounds, grouping, eviction, determinism.

The index's contract is that every query decision — in-range or not, kNN
member or not — matches the exact pipeline's ``distance_between`` floats:
certification and pruning only ever resolve pairs whose bounds put them
safely on one side of the threshold, and everything else is evaluated
exactly.  These tests check the query results against brute force over the
exact distance matrix, plus the structural behaviour (id discipline,
swap-delete on eviction, non-metric fallback, seeded determinism).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpe import LogContext
from repro.core.measures import AccessAreaDistance, TokenDistance
from repro.exceptions import MiningError
from repro.mining.approx import BOUND_TOLERANCE, CandidateStats, PivotIndex
from repro.workloads.generator import QueryLogGenerator, WorkloadMix


def _token_context(webshop, size=40, seed=21):
    log = QueryLogGenerator(webshop, WorkloadMix(), seed=seed).generate(size)
    return LogContext(log=log)


def _square(measure, context):
    return measure.condensed_distance_matrix(context).to_square()


class TestConstruction:
    def test_ids_must_strictly_ascend(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=2)
        index.add(5, chars[0])
        with pytest.raises(MiningError):
            index.add(5, chars[1])
        with pytest.raises(MiningError):
            index.add(3, chars[1])
        index.add(9, chars[1])
        assert index.item_ids() == (5, 9)

    def test_n_pivots_must_be_positive(self):
        with pytest.raises(MiningError):
            PivotIndex(TokenDistance(), n_pivots=0)

    def test_duplicates_collapse_into_groups(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=2)
        for item_id in range(6):
            index.add(item_id, chars[item_id % 2])  # two characteristics, 6 items
        assert index.n_items == 6
        assert index.n_groups == 2

    def test_non_metric_measure_gets_no_pivots(self, sample_context, users_domains):
        context = LogContext(log=sample_context.log, domains=users_domains)
        measure = AccessAreaDistance()
        assert not measure.is_metric
        index = PivotIndex.from_context(measure, context, n_pivots=8)
        neighbors, stats = index.range_query(0, 0.5)
        assert index.n_pivots == 0
        assert stats.n_pivots == 0
        assert stats.certified_pairs == 0  # bounds are [0, inf): nothing certified

    def test_pivot_selection_stops_at_distinct_group_count(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=32)
        for item_id, characteristic in enumerate(chars[:3]):
            index.add(item_id, characteristic)
        index.range_query(0, 0.5)
        assert index.n_pivots <= 3


class TestQueriesAgainstBruteForce:
    @pytest.mark.parametrize("threshold", [0.0, 0.2, 0.45, 0.8, 1.0])
    def test_range_query_equals_matrix_filter(self, webshop, threshold):
        context = _token_context(webshop)
        measure = TokenDistance()
        index = PivotIndex.from_context(measure, context, n_pivots=6, seed=2)
        square = _square(measure, context)
        for item_id in range(0, square.shape[0], 7):
            expected = tuple(np.flatnonzero(square[item_id] <= threshold))
            got, stats = index.range_query(item_id, threshold)
            assert got == tuple(int(i) for i in expected), (item_id, threshold)
            assert stats.certified_complete

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_knn_candidates_cover_the_true_knn(self, webshop, k):
        from repro.mining import k_nearest_neighbors

        context = _token_context(webshop)
        measure = TokenDistance()
        index = PivotIndex.from_context(measure, context, n_pivots=6, seed=2)
        matrix = measure.condensed_distance_matrix(context)
        for item_id in range(0, matrix.n, 5):
            candidates, stats = index.knn_candidates(item_id, k)
            got = tuple(j for _, j in candidates[:k])
            assert got == k_nearest_neighbors(matrix, item_id, k=k)
            assert stats.certified_complete

    def test_max_candidates_cap_drops_the_certificate(self, webshop):
        context = _token_context(webshop)
        measure = TokenDistance()
        index = PivotIndex.from_context(measure, context, n_pivots=1, seed=0)
        _, uncapped = index.range_query(0, 0.5)
        if uncapped.exact_distances == 0:
            pytest.skip("no gap to cap on this log")
        _, capped = index.range_query(0, 0.5, max_candidates=0)
        assert not capped.certified_complete

    def test_bound_sandwich_holds_on_live_table(self, webshop):
        context = _token_context(webshop, size=25)
        measure = TokenDistance()
        index = PivotIndex.from_context(measure, context, n_pivots=4, seed=1)
        index._ensure_pivots()
        square = _square(measure, context)
        groups = index._groups
        for a in range(len(groups)):
            lower, upper = index._bounds(a)
            for b in range(len(groups)):
                d = square[groups[a].members[0], groups[b].members[0]]
                assert lower[b] <= d + BOUND_TOLERANCE
                assert upper[b] >= d - BOUND_TOLERANCE


class TestEviction:
    def test_removal_keeps_queries_exact(self, webshop):
        context = _token_context(webshop, size=30)
        measure = TokenDistance()
        index = PivotIndex.from_context(measure, context, n_pivots=4, seed=3)
        square = _square(measure, context)
        index.range_query(0, 0.4)  # force pivot selection before evicting
        removed = [1, 4, 5, 17, 28]
        for item_id in removed:
            index.remove(item_id)
        live = [i for i in range(30) if i not in removed]
        assert index.item_ids() == tuple(live)
        for item_id in live[::4]:
            expected = tuple(j for j in live if square[item_id, j] <= 0.4)
            got, _ = index.range_query(item_id, 0.4)
            assert got == expected, item_id

    def test_evicting_a_pivots_group_keeps_its_column_valid(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=3, seed=0)
        for item_id, characteristic in enumerate(chars):
            index.add(item_id, characteristic)
        index.range_query(0, 0.5)  # select pivots
        pivots_before = index.n_pivots
        # Remove a whole prefix; some removed group almost surely was a pivot.
        for item_id in range(4):
            index.remove(item_id)
        assert index.n_pivots == pivots_before  # columns survive their groups
        # Queries stay exact against brute force over the survivors.
        square = measure.condensed_distance_matrix(sample_context).to_square()
        live = index.item_ids()
        for item_id in live:
            expected = tuple(j for j in live if square[item_id, j] <= 0.6)
            got, _ = index.range_query(item_id, 0.6)
            assert got == expected

    def test_unknown_id_removal_rejected(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=2)
        index.add(0, chars[0])
        with pytest.raises(MiningError):
            index.remove(99)


class TestDeterminism:
    def test_same_seed_same_pivots_and_answers(self, webshop):
        context = _token_context(webshop)
        measure = TokenDistance()
        first = PivotIndex.from_context(measure, context, n_pivots=5, seed=11)
        second = PivotIndex.from_context(measure, context, n_pivots=5, seed=11)
        a1, s1 = first.range_query(3, 0.5)
        a2, s2 = second.range_query(3, 0.5)
        assert a1 == a2
        assert s1 == s2
        first._ensure_pivots()
        second._ensure_pivots()
        assert np.array_equal(
            first._table[: first.n_groups, : first.n_pivots],
            second._table[: second.n_groups, : second.n_pivots],
        )


class TestCandidateStats:
    def test_merge_sums_counters_and_ands_the_certificate(self):
        a = CandidateStats(
            n_items=10, n_groups=5, n_pivots=2, table_distances=10,
            exact_distances=3, pruned_pairs=4, certified_pairs=5,
            certified_complete=True,
        )
        b = CandidateStats(
            n_items=12, n_groups=6, n_pivots=2, table_distances=12,
            exact_distances=1, pruned_pairs=2, certified_pairs=3,
            certified_complete=False,
        )
        merged = CandidateStats.merge(a, b)
        assert merged.n_items == 12 and merged.n_groups == 6
        assert merged.exact_distances == 4
        assert merged.pruned_pairs == 6
        assert merged.certified_pairs == 8
        assert not merged.certified_complete
        assert merged.group_pairs_examined == 18
        assert merged.to_dict()["table_distances"] == 12
