"""Streaming logs and incremental artefacts vs full batch recompute.

The invariant under test: after any sequence of appends, every artefact of
the :class:`IncrementalDistanceMatrix` — distances, kNN lists, DB(p, D)
outliers, top-n outlier ranking, DBSCAN labels — equals the one a batch
recompute over the grown log produces, bit for bit, while the incremental
path computed only the new pairs.  Checked on plaintext logs, on encrypted
logs, and on encrypted queries streamed through a live ProxySession.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpe import LogContext
from repro.core.measures import TokenDistance
from repro.core.schemes.token_scheme import TokenDpeScheme
from repro.exceptions import MiningError
from repro.mining import (
    IncrementalDistanceMatrix,
    StreamingQueryLog,
    condensed_length,
    dbscan,
    distance_based_outliers,
    k_nearest_neighbors,
    top_n_outliers,
)
from repro.sql.log import LogEntry, QueryLog
from repro.sql.parser import parse_query
from repro.workloads.generator import QueryLogGenerator, WorkloadMix

#: Mining parameters shared by the incremental matrix and the batch oracles.
PARAMETERS = dict(knn_k=3, outlier_p=0.85, outlier_d=0.88, dbscan_eps=0.6, dbscan_min_points=3)


def _batch_matrix(entries):
    return TokenDistance().condensed_distance_matrix(LogContext(log=QueryLog(entries)))


def _assert_artefacts_equal(incremental, entries):
    """Every incremental artefact equals its batch-recompute counterpart."""
    matrix = _batch_matrix(entries)
    n = len(entries)
    assert incremental.n_items == n
    assert np.array_equal(incremental.condensed().values, matrix.values)
    assert np.array_equal(incremental.square(), matrix.to_square())
    if n > PARAMETERS["knn_k"]:
        for i in range(n):
            assert incremental.knn(i) == k_nearest_neighbors(matrix, i, k=PARAMETERS["knn_k"])
        assert incremental.top_outliers(min(5, n)) == top_n_outliers(
            matrix, n_outliers=min(5, n), k=PARAMETERS["knn_k"]
        )
    batch_outliers = distance_based_outliers(
        matrix, p=PARAMETERS["outlier_p"], d=PARAMETERS["outlier_d"]
    )
    assert incremental.outliers() == batch_outliers
    batch_dbscan = dbscan(
        matrix, eps=PARAMETERS["dbscan_eps"], min_points=PARAMETERS["dbscan_min_points"]
    )
    incremental_dbscan = incremental.dbscan()
    assert incremental_dbscan.labels == batch_dbscan.labels
    assert incremental_dbscan.core_points == batch_dbscan.core_points
    assert incremental_dbscan.n_clusters == batch_dbscan.n_clusters


class TestStreamingQueryLog:
    def test_append_accepts_entries_queries_and_sql(self):
        stream = StreamingQueryLog()
        stream.append(["SELECT name FROM users WHERE age > 30"])
        stream.append([parse_query("SELECT city FROM users WHERE age < 18")])
        stream.append([LogEntry(parse_query("SELECT name FROM users WHERE age = 5"))])
        assert len(stream) == 3
        assert stream.appends == 3
        assert all(isinstance(entry, LogEntry) for entry in stream)

    def test_append_rejects_unknown_payloads(self):
        with pytest.raises(MiningError):
            StreamingQueryLog().append([42])

    def test_subscribers_see_batches_after_growth(self):
        stream = StreamingQueryLog()
        observed: list[tuple[int, int]] = []
        stream.subscribe(lambda batch: observed.append((len(batch), len(stream))))
        stream.append(["SELECT name FROM users WHERE age > 30"] * 2)
        stream.append([])
        stream.append(["SELECT city FROM users WHERE age < 18"])
        assert observed == [(2, 2), (1, 3)]
        assert stream.appends == 2  # the empty batch is not an append

    def test_streaming_log_is_a_query_log(self, webshop_log):
        stream = StreamingQueryLog(list(webshop_log))
        assert QueryLog(list(webshop_log)) == stream
        assert stream.statements == webshop_log.statements


class TestIncrementalVsBatch:
    def test_interleaved_appends_match_batch_recompute(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=13).generate(50)
        entries = list(log)
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        seen: list[LogEntry] = []
        for size in (4, 1, 13, 2, 20, 10):  # deliberately ragged batches
            batch = entries[len(seen) : len(seen) + size]
            stream.append(batch)
            seen.extend(batch)
            _assert_artefacts_equal(incremental, seen)
        assert incremental.pairs_computed == condensed_length(len(seen))

    def test_preexisting_entries_are_ingested_on_subscription(self, webshop_log):
        stream = StreamingQueryLog(list(webshop_log))
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        _assert_artefacts_equal(incremental, list(webshop_log))

    def test_only_new_pairs_are_computed(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=14).generate(30)
        entries = list(log)
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        stream.append(entries[:20])
        before = incremental.pairs_computed
        assert before == condensed_length(20)
        stream.append(entries[20:])
        # 20 old x 10 new cross pairs plus the 10-choose-2 pairs among the new.
        assert incremental.pairs_computed - before == 20 * 10 + condensed_length(10)

    def test_encrypted_stream_matches_plain_stream(self, webshop, keychain):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=15).generate(36)
        entries = list(log)
        scheme = TokenDpeScheme(keychain)
        plain_stream, encrypted_stream = StreamingQueryLog(), StreamingQueryLog()
        plain = IncrementalDistanceMatrix(TokenDistance(), plain_stream, **PARAMETERS)
        encrypted = IncrementalDistanceMatrix(TokenDistance(), encrypted_stream, **PARAMETERS)
        for start in range(0, 36, 12):
            batch = entries[start : start + 12]
            plain_stream.append(batch)
            encrypted_stream.append(list(scheme.encrypt_log(QueryLog(batch))))
            # Both sides equal their own batch recompute...
            _assert_artefacts_equal(plain, entries[: start + 12])
            # ...and preservation holds pair for pair across the two streams.
            assert np.array_equal(plain.condensed().values, encrypted.condensed().values)
            assert plain.dbscan().labels == encrypted.dbscan().labels
            assert plain.outliers() == encrypted.outliers()

    def test_parameter_validation(self):
        stream = StreamingQueryLog()
        with pytest.raises(MiningError):
            IncrementalDistanceMatrix(TokenDistance(), stream, knn_k=0)
        with pytest.raises(MiningError):
            IncrementalDistanceMatrix(TokenDistance(), stream, outlier_p=0.0)
        with pytest.raises(MiningError):
            IncrementalDistanceMatrix(TokenDistance(), stream, dbscan_eps=-0.1)

    def test_empty_matrix_accessors_fail_loudly(self):
        incremental = IncrementalDistanceMatrix(TokenDistance(), StreamingQueryLog())
        with pytest.raises(MiningError):
            incremental.condensed()
        with pytest.raises(MiningError):
            incremental.dbscan()

    def test_knn_respects_item_count_bounds(self):
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, knn_k=3)
        stream.append(["SELECT name FROM users WHERE age > 30",
                       "SELECT city FROM users WHERE age < 18"])
        with pytest.raises(MiningError):  # k=3 > n-1=1, exactly like the batch API
            incremental.knn(0)


class TestProxySessionStreaming:
    def test_session_streams_encrypted_queries_into_matrix(
        self, webshop, webshop_database, keychain
    ):
        from repro.cryptdb.proxy import CryptDBProxy

        log = QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=16).generate(24)
        proxy = CryptDBProxy(
            keychain,
            join_groups=webshop.join_groups(),
            paillier_bits=256,
            shared_det_key=True,
        )
        proxy.encrypt_database(webshop_database)
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        rewritten: list = []
        with proxy.session(on_unsupported="skip") as session:
            for start in range(0, 24, 8):
                rewritten.extend(session.stream(log.queries[start : start + 8], into=stream))
        assert len(stream) == len(rewritten) > 0
        # The incremental matrix over the streamed (encrypted) queries equals
        # a batch recompute over the same rewritten workload.
        batch = TokenDistance().condensed_distance_matrix(
            LogContext(log=QueryLog.from_queries(rewritten))
        )
        assert np.array_equal(incremental.condensed().values, batch.values)
        assert incremental.dbscan().labels == dbscan(
            batch, eps=PARAMETERS["dbscan_eps"], min_points=PARAMETERS["dbscan_min_points"]
        ).labels


class TestOutlierScoreMemoization:
    """top_outliers memoizes its per-k score vector between appends."""

    def test_repeated_rankings_reuse_the_cached_scores(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=15).generate(20)
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        stream.append(list(log))
        first = incremental.top_outliers(5)
        cached = incremental._scores_cache[PARAMETERS["knn_k"]]
        assert incremental.top_outliers(5) == first
        assert incremental._scores_cache[PARAMETERS["knn_k"]] is cached

    def test_appends_invalidate_the_cache_and_rankings_stay_exact(self, webshop):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=15).generate(24)
        entries = list(log)
        stream = StreamingQueryLog()
        incremental = IncrementalDistanceMatrix(TokenDistance(), stream, **PARAMETERS)
        stream.append(entries[:16])
        incremental.top_outliers(4)
        assert incremental._scores_cache
        stream.append(entries[16:])
        assert not incremental._scores_cache  # append dropped the memo
        matrix = _batch_matrix(entries)
        assert incremental.top_outliers(4) == top_n_outliers(
            matrix, n_outliers=4, k=PARAMETERS["knn_k"]
        )
