"""Pivot-pruned mining vs the exact pipeline: bit-for-bit, all four measures.

The exactness claim of :mod:`repro.mining.approx` — certified results equal
the exact pipeline's — is checked literally here: DBSCAN labels, core
points and cluster count, outlier indices *and* fractions, and every kNN
row must be ``==`` to what the matrix-based algorithms produce on the same
(duplicate-heavy) log, for the token, structure, result and access-area
measures, across several parameter settings.
"""

from __future__ import annotations

import pytest

from repro.core.dpe import LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.exceptions import MiningError
from repro.mining import (
    PivotIndex,
    approx_dbscan,
    approx_knn,
    approx_knn_all,
    approx_outliers,
    dbscan,
    distance_based_outliers,
    k_nearest_neighbors,
)
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix


def _duplicate_heavy(log, extra=15):
    """A log whose tail repeats earlier entries (real logs repeat templates)."""
    entries = list(log)
    return QueryLog(entries + entries[:extra])


@pytest.fixture(scope="module")
def measure_cases(request):
    """(measure factory, context) per measure, built once for the module."""
    webshop = request.getfixturevalue("webshop")
    webshop_database = request.getfixturevalue("webshop_database")
    skyserver = request.getfixturevalue("skyserver")
    token_log = _duplicate_heavy(
        QueryLogGenerator(webshop, WorkloadMix(), seed=31).generate(35)
    )
    result_log = _duplicate_heavy(
        QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=31).generate(20), 8
    )
    access_log = _duplicate_heavy(
        QueryLogGenerator(skyserver, WorkloadMix.analytical(), seed=31).generate(25), 10
    )
    return {
        "token": (TokenDistance, LogContext(log=token_log)),
        "structure": (StructureDistance, LogContext(log=token_log)),
        "result": (
            ResultDistance,
            LogContext(log=result_log, database=webshop_database),
        ),
        "access-area": (
            AccessAreaDistance,
            LogContext(log=access_log, domains=skyserver.domain_catalog()),
        ),
    }


MEASURES = ["token", "structure", "result", "access-area"]


def _exact_artefacts(measure, context, *, eps, min_points, p, d, k):
    matrix = measure.condensed_distance_matrix(context)
    clusters = dbscan(matrix, eps=eps, min_points=min_points)
    outliers = distance_based_outliers(matrix, p=p, d=d)
    knn = {i: k_nearest_neighbors(matrix, i, k=k) for i in range(matrix.n)}
    return clusters, outliers, knn


@pytest.mark.parametrize("name", MEASURES)
class TestBitForBitEquality:
    @pytest.mark.parametrize("eps,min_points", [(0.25, 2), (0.5, 3), (0.75, 5)])
    def test_dbscan(self, measure_cases, name, eps, min_points):
        factory, context = measure_cases[name]
        exact = dbscan(
            factory().condensed_distance_matrix(context), eps=eps, min_points=min_points
        )
        index = PivotIndex.from_context(factory(), context, n_pivots=5, seed=4)
        approx, stats = approx_dbscan(index, eps=eps, min_points=min_points)
        assert stats.certified_complete
        assert approx.labels == exact.labels
        assert approx.core_points == exact.core_points
        assert approx.n_clusters == exact.n_clusters

    @pytest.mark.parametrize("p,d", [(0.7, 0.45), (0.9, 0.8), (0.99, 0.1)])
    def test_outliers_including_fractions(self, measure_cases, name, p, d):
        factory, context = measure_cases[name]
        exact = distance_based_outliers(
            factory().condensed_distance_matrix(context), p=p, d=d
        )
        index = PivotIndex.from_context(factory(), context, n_pivots=5, seed=4)
        approx, stats = approx_outliers(index, p=p, d=d)
        assert stats.certified_complete
        assert approx.outliers == exact.outliers
        assert approx.fraction_far == exact.fraction_far  # bitwise float equality

    @pytest.mark.parametrize("k", [1, 4])
    def test_knn_every_item(self, measure_cases, name, k):
        factory, context = measure_cases[name]
        matrix = factory().condensed_distance_matrix(context)
        index = PivotIndex.from_context(factory(), context, n_pivots=5, seed=4)
        cache: dict = {}
        all_knn, stats = approx_knn_all(index, k=k, cache=cache)
        assert stats.certified_complete
        for item_id in range(matrix.n):
            assert all_knn[item_id] == k_nearest_neighbors(matrix, item_id, k=k)
        # The single-item entry point agrees with the all-items one.
        single, _ = approx_knn(index, 7, k=k, cache=cache)
        assert single == all_knn[7]

    def test_pruning_actually_happened_for_metric_measures(self, measure_cases, name):
        factory, context = measure_cases[name]
        index = PivotIndex.from_context(factory(), context, n_pivots=5, seed=4)
        _, stats = approx_dbscan(index, eps=0.4, min_points=3)
        n = stats.n_items
        all_pairs = n * (n - 1) // 2
        # Grouping alone collapses the duplicate tail; metric measures must
        # additionally resolve pairs from the table without evaluation.
        assert stats.exact_distances < all_pairs
        if factory().is_metric:
            assert stats.pruned_pairs + stats.certified_pairs > 0


class TestSharedCacheAndValidation:
    def test_shared_cache_avoids_re_evaluation(self, measure_cases):
        factory, context = measure_cases["token"]
        index = PivotIndex.from_context(factory(), context, n_pivots=5, seed=4)
        cache: dict = {}
        _, first = approx_dbscan(index, eps=0.5, min_points=3, cache=cache)
        _, second = approx_outliers(index, p=0.9, d=0.5, cache=cache)
        # The outlier pass reuses the DBSCAN pass's evaluations at d=0.5.
        assert second.exact_distances == 0

    def test_parameter_validation_matches_exact_pipeline(self, measure_cases):
        factory, context = measure_cases["token"]
        index = PivotIndex.from_context(factory(), context, n_pivots=2, seed=0)
        with pytest.raises(MiningError):
            approx_dbscan(index, eps=-0.1, min_points=2)
        with pytest.raises(MiningError):
            approx_dbscan(index, eps=0.5, min_points=0)
        with pytest.raises(MiningError):
            approx_outliers(index, p=0.0, d=0.5)
        with pytest.raises(MiningError):
            approx_outliers(index, p=0.5, d=-1.0)
        with pytest.raises(MiningError):
            approx_knn_all(index, k=0)
        with pytest.raises(MiningError):
            approx_knn(index, 0, k=index.n_items)

    def test_empty_index_rejected(self):
        index = PivotIndex(TokenDistance(), n_pivots=2)
        with pytest.raises(MiningError):
            approx_dbscan(index, eps=0.5, min_points=2)
        with pytest.raises(MiningError):
            approx_outliers(index, p=0.9, d=0.5)

    def test_single_item_outliers(self, sample_context):
        measure = TokenDistance()
        chars = measure.prepare(sample_context)
        index = PivotIndex(measure, n_pivots=2)
        index.add(0, chars[0])
        result, stats = approx_outliers(index, p=0.9, d=0.5)
        assert result.outliers == ()
        assert result.fraction_far == (0.0,)
