"""Condensed-matrix round-trips through the mining entry points.

Every mining algorithm must produce *identical* results whether it is fed
the square distance matrix, the :class:`CondensedDistanceMatrix`, or the
bare 1-D condensed array — the condensed path reconstructs the exact same
stored floats, so this is an equality check, not an approximation check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining import (
    CondensedDistanceMatrix,
    complete_link,
    condensed_length,
    cut_dendrogram,
    dbscan,
    distance_based_outliers,
    k_medoids,
    k_nearest_neighbors,
    knn_classify,
    n_items_from_condensed,
    pairwise_view,
    top_n_outliers,
)


def _random_square(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    upper = rng.uniform(0.05, 1.0, size=(n, n))
    matrix = np.triu(upper, k=1)
    return matrix + matrix.T


@pytest.fixture(scope="module")
def square() -> np.ndarray:
    return _random_square(14, seed=123)


@pytest.fixture(scope="module")
def condensed(square) -> CondensedDistanceMatrix:
    return CondensedDistanceMatrix.from_square(square)


class TestCondensedDistanceMatrix:
    def test_round_trip(self, square, condensed):
        assert condensed.n == square.shape[0]
        assert np.array_equal(condensed.to_square(), square)

    def test_row_and_value_match_square(self, square, condensed):
        n = square.shape[0]
        for i in range(n):
            assert np.array_equal(condensed.row(i), square[i])
            for j in range(n):
                assert condensed.value(i, j) == square[i, j]

    def test_columns_and_submatrix_match_square(self, square, condensed):
        indices = [0, 3, 7]
        assert np.array_equal(condensed.columns(indices), square[:, indices])
        assert np.array_equal(condensed.submatrix(indices), square[np.ix_(indices, indices)])

    def test_validation(self):
        with pytest.raises(MiningError):
            CondensedDistanceMatrix(values=np.zeros((2, 2)), n=2)  # not 1-D
        with pytest.raises(MiningError):
            CondensedDistanceMatrix(values=np.zeros(4), n=4)  # wrong length
        with pytest.raises(MiningError):
            CondensedDistanceMatrix(values=np.array([-1.0]), n=2)  # negative
        with pytest.raises(MiningError):
            CondensedDistanceMatrix(values=np.zeros(0), n=0)  # no items

    def test_diagonal_not_stored(self, condensed):
        assert condensed.value(3, 3) == 0.0
        with pytest.raises(MiningError):
            condensed.index(3, 3)

    def test_length_helpers(self):
        assert condensed_length(6) == 15
        assert n_items_from_condensed(15) == 6
        assert n_items_from_condensed(0) == 1
        with pytest.raises(MiningError):
            n_items_from_condensed(14)

    def test_pairwise_view_accepts_all_forms(self, square, condensed):
        for form in (square, condensed, condensed.values):
            view = pairwise_view(form)
            assert view.n_items == square.shape[0]
            assert view.value(0, 1) == square[0, 1]
        assert pairwise_view(condensed) is condensed


class TestMiningEquivalenceAcrossRepresentations:
    """Square, condensed object and bare 1-D array must agree exactly."""

    def _forms(self, square):
        condensed = CondensedDistanceMatrix.from_square(square)
        return [square, condensed, condensed.values]

    def test_dbscan(self, square):
        eps = float(np.median(square[square > 0]))
        results = [dbscan(form, eps=eps, min_points=3) for form in self._forms(square)]
        assert results[0] == results[1] == results[2]

    def test_k_medoids(self, square):
        results = [k_medoids(form, k=4) for form in self._forms(square)]
        assert results[0] == results[1] == results[2]

    def test_complete_link_and_cut(self, square):
        dendrograms = [complete_link(form) for form in self._forms(square)]
        assert dendrograms[0] == dendrograms[1] == dendrograms[2]
        cuts = [cut_dendrogram(d, n_clusters=4) for d in dendrograms]
        assert cuts[0] == cuts[1] == cuts[2]

    def test_outliers(self, square):
        d = float(np.quantile(square, 0.8))
        results = [
            distance_based_outliers(form, p=0.7, d=d) for form in self._forms(square)
        ]
        assert results[0] == results[1] == results[2]
        rankings = [top_n_outliers(form, n_outliers=3, k=2) for form in self._forms(square)]
        assert rankings[0] == rankings[1] == rankings[2]

    def test_knn(self, square):
        n = square.shape[0]
        labels = [index % 3 for index in range(n)]
        for index in range(n):
            neighbor_lists = [
                k_nearest_neighbors(form, index, k=3) for form in self._forms(square)
            ]
            assert neighbor_lists[0] == neighbor_lists[1] == neighbor_lists[2]
            votes = [
                knn_classify(form, labels, index, k=3) for form in self._forms(square)
            ]
            assert votes[0] == votes[1] == votes[2]

    def test_validation_still_applies_to_condensed(self):
        with pytest.raises(MiningError):
            dbscan(np.array([0.1, 0.2, -0.3]), eps=0.5, min_points=2)  # negative entry
        with pytest.raises(MiningError):
            k_nearest_neighbors(np.zeros(4), 0, k=1)  # not a triangular length
