"""Tests for outlier detection, kNN and clustering-agreement metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining.evaluation import (
    adjusted_rand_index,
    clusterings_equivalent,
    confusion_counts,
    normalized_mutual_information,
)
from repro.mining.knn import k_nearest_neighbors, knn_classify
from repro.mining.outliers import distance_based_outliers, top_n_outliers


def line_matrix(points: list[float]) -> np.ndarray:
    array = np.array(points, dtype=float)
    return np.abs(array[:, None] - array[None, :])


class TestDistanceBasedOutliers:
    def test_single_far_point_is_outlier(self):
        matrix = line_matrix([0.0, 0.1, 0.2, 0.3, 100.0])
        result = distance_based_outliers(matrix, p=0.9, d=1.0)
        assert result.outliers == (4,)
        assert result.is_outlier(4) and not result.is_outlier(0)

    def test_no_outliers_in_tight_cluster(self):
        matrix = line_matrix([0.0, 0.1, 0.2, 0.3])
        assert distance_based_outliers(matrix, p=0.5, d=1.0).outliers == ()

    def test_everything_outlier_when_d_zero_and_points_distinct(self):
        matrix = line_matrix([0.0, 5.0, 10.0])
        result = distance_based_outliers(matrix, p=1.0, d=0.0)
        assert result.outliers == (0, 1, 2)

    def test_fraction_far_values(self):
        matrix = line_matrix([0.0, 0.1, 100.0])
        result = distance_based_outliers(matrix, p=0.9, d=1.0)
        assert result.fraction_far[2] == 1.0
        assert result.fraction_far[0] == 0.5

    def test_single_item(self):
        assert distance_based_outliers(np.zeros((1, 1)), p=0.5, d=1.0).outliers == ()

    def test_parameter_validation(self):
        matrix = line_matrix([0.0, 1.0])
        with pytest.raises(MiningError):
            distance_based_outliers(matrix, p=0.0, d=1.0)
        with pytest.raises(MiningError):
            distance_based_outliers(matrix, p=1.5, d=1.0)
        with pytest.raises(MiningError):
            distance_based_outliers(matrix, p=0.5, d=-1.0)


class TestTopNOutliers:
    def test_ranking(self):
        matrix = line_matrix([0.0, 0.1, 0.2, 50.0, 100.0])
        top = top_n_outliers(matrix, n_outliers=2, k=2)
        assert set(top) == {3, 4}
        assert top[0] == 4  # farther point ranks first

    def test_validation(self):
        matrix = line_matrix([0.0, 1.0, 2.0])
        with pytest.raises(MiningError):
            top_n_outliers(matrix, n_outliers=0)
        with pytest.raises(MiningError):
            top_n_outliers(matrix, n_outliers=4)
        with pytest.raises(MiningError):
            top_n_outliers(matrix, n_outliers=1, k=3)


class TestKnn:
    def test_neighbors_ordered_by_distance(self):
        matrix = line_matrix([0.0, 1.0, 3.0, 7.0])
        assert k_nearest_neighbors(matrix, 0, k=2) == (1, 2)
        assert k_nearest_neighbors(matrix, 3, k=1) == (2,)

    def test_self_excluded(self):
        matrix = line_matrix([0.0, 1.0, 2.0])
        assert 1 not in k_nearest_neighbors(matrix, 1, k=2)

    def test_ties_broken_by_index(self):
        matrix = line_matrix([0.0, 1.0, -1.0])
        assert k_nearest_neighbors(matrix, 0, k=1) == (1,)

    def test_validation(self):
        matrix = line_matrix([0.0, 1.0, 2.0])
        with pytest.raises(MiningError):
            k_nearest_neighbors(matrix, 5, k=1)
        with pytest.raises(MiningError):
            k_nearest_neighbors(matrix, 0, k=3)

    def test_classification_majority(self):
        matrix = line_matrix([0.0, 0.1, 0.2, 10.0, 10.1])
        labels = ["a", "a", "a", "b", "b"]
        assert knn_classify(matrix, labels, 0, k=2) == "a"
        assert knn_classify(matrix, labels, 4, k=2) == "b"

    def test_classification_tie_broken_by_nearest(self):
        matrix = line_matrix([0.0, 1.0, 2.0])
        labels = ["x", "a", "b"]
        assert knn_classify(matrix, labels, 0, k=2) == "a"

    def test_classification_validation(self):
        matrix = line_matrix([0.0, 1.0])
        with pytest.raises(MiningError):
            knn_classify(matrix, ["a"], 0, k=1)


class TestClusteringAgreement:
    def test_equivalence_up_to_relabeling(self):
        assert clusterings_equivalent([0, 0, 1, 1], [5, 5, 9, 9])
        assert clusterings_equivalent(["a", "b", "a"], [1, 2, 1])
        assert not clusterings_equivalent([0, 0, 1, 1], [0, 1, 0, 1])
        assert not clusterings_equivalent([0, 0, 1], [0, 0, 0])
        assert not clusterings_equivalent([0, 0, 0], [0, 0, 1])

    def test_equivalence_validation(self):
        with pytest.raises(MiningError):
            clusterings_equivalent([0, 1], [0])
        with pytest.raises(MiningError):
            clusterings_equivalent([], [])

    def test_ari_identical_is_one(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_ari_decreases_with_disagreement(self):
        perfect = adjusted_rand_index([0, 0, 1, 1, 2, 2], [0, 0, 1, 1, 2, 2])
        noisy = adjusted_rand_index([0, 0, 1, 1, 2, 2], [0, 0, 1, 2, 2, 2])
        assert perfect > noisy

    def test_ari_known_value(self):
        # Independent-looking split of 4 items.
        value = adjusted_rand_index([0, 0, 1, 1], [0, 1, 0, 1])
        assert value == pytest.approx(-0.5)

    def test_nmi_identical_is_one(self):
        assert normalized_mutual_information([0, 0, 1, 1], [7, 7, 3, 3]) == pytest.approx(1.0)

    def test_nmi_single_cluster_against_itself(self):
        assert normalized_mutual_information([0, 0, 0], [1, 1, 1]) == pytest.approx(1.0)

    def test_nmi_bounded(self):
        value = normalized_mutual_information([0, 0, 1, 1, 2], [0, 1, 1, 0, 2])
        assert 0.0 <= value <= 1.0

    def test_confusion_counts(self):
        table = confusion_counts([0, 0, 1], ["a", "b", "b"])
        assert table == {(0, "a"): 1, (0, "b"): 1, (1, "b"): 1}
