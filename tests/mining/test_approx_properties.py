"""Property tests: pivot pruning never drops a true neighbour.

Hypothesis drives adversarial index compositions — duplicate-heavy samples
(items drawn *with replacement* from a small pool), an all-equidistant
domain (pairwise-disjoint token sets, every distance exactly 1), the
degenerate single-pivot index — over all four measures, and asserts the
two safety properties behind the exactness claim:

* a range query returns *exactly* ``{j : d(i, j) <= t}`` — pruning never
  drops a true eps-neighbour and certification never admits a false one;
* the first ``k`` kNN candidates are *exactly* the brute-force k nearest
  under the ``(distance, id)`` tie-break — the covering radius never
  excludes a true kNN member.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dpe import LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.mining.approx import PivotIndex
from repro.sql.log import QueryLog
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import (
    populate_database,
    skyserver_profile,
    webshop_profile,
)

#: Queries with pairwise-disjoint token sets: every token distance is 1.0,
#: the worst case for pivot bounds (all bounds collapse to the same value).
EQUIDISTANT_SQL = [
    "SELECT alpha FROM reds WHERE crimson > 1",
    "SELECT beta FROM greens WHERE olive > 2",
    "SELECT gamma FROM blues WHERE navy > 3",
    "SELECT delta FROM browns WHERE umber > 4",
    "SELECT epsilon FROM blacks WHERE onyx > 5",
]


@functools.lru_cache(maxsize=None)
def _pool(name: str) -> tuple:
    """A pool of prepared characteristics (and its measure) per domain."""
    if name == "equidistant":
        measure = TokenDistance()
        context = LogContext(log=QueryLog.from_sql(EQUIDISTANT_SQL))
    elif name in ("token", "structure"):
        measure = TokenDistance() if name == "token" else StructureDistance()
        profile = webshop_profile(customer_rows=10, order_rows=20, product_rows=5)
        log = QueryLogGenerator(profile, WorkloadMix(), seed=51).generate(12)
        context = LogContext(log=log)
    elif name == "result":
        measure = ResultDistance()
        profile = webshop_profile(customer_rows=10, order_rows=20, product_rows=5)
        log = QueryLogGenerator(profile, WorkloadMix.spj_only(), seed=51).generate(10)
        context = LogContext(log=log, database=populate_database(profile, seed=2))
    elif name == "access-area":
        measure = AccessAreaDistance()
        profile = skyserver_profile(photo_rows=30, spec_rows=12)
        log = QueryLogGenerator(profile, WorkloadMix.analytical(), seed=51).generate(10)
        context = LogContext(log=log, domains=profile.domain_catalog())
    else:  # pragma: no cover - guards against typos in parametrize lists
        raise ValueError(name)
    return measure, tuple(measure.prepare(context))


DOMAINS = ["token", "structure", "result", "access-area", "equidistant"]

#: Duplicate-heavy by construction: sampled WITH replacement from tiny pools.
composition = st.tuples(
    st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=14),
    st.integers(min_value=1, max_value=4),  # n_pivots (1 = degenerate index)
    st.integers(min_value=0, max_value=5),  # seed
)


def _build(name, picks, n_pivots, seed):
    measure, pool = _pool(name)
    characteristics = [pool[i % len(pool)] for i in picks]
    index = PivotIndex(measure, n_pivots=n_pivots, seed=seed)
    for item_id, characteristic in enumerate(characteristics):
        index.add(item_id, characteristic)
    distance = {}
    for i in range(len(characteristics)):
        for j in range(i + 1, len(characteristics)):
            distance[(i, j)] = measure.distance_between(
                characteristics[i], characteristics[j]
            )

    def d(i, j):
        if i == j:
            return 0.0
        return distance[(min(i, j), max(i, j))]

    return index, d, len(characteristics)


@pytest.mark.parametrize("name", DOMAINS)
class TestPruningSafety:
    @settings(max_examples=20)
    @given(composition=composition, threshold=st.floats(min_value=0.0, max_value=1.0))
    def test_range_query_never_drops_a_true_neighbor(self, name, composition, threshold):
        picks, n_pivots, seed = composition
        index, d, n = _build(name, picks, n_pivots, seed)
        for item_id in range(n):
            expected = tuple(j for j in range(n) if d(item_id, j) <= threshold)
            got, stats = index.range_query(item_id, threshold)
            assert got == expected, (item_id, threshold)
            assert stats.certified_complete

    @settings(max_examples=20)
    @given(composition=composition, k=st.integers(min_value=1, max_value=13))
    def test_knn_candidates_never_drop_a_true_member(self, name, composition, k):
        picks, n_pivots, seed = composition
        index, d, n = _build(name, picks, n_pivots, seed)
        k = min(k, n - 1)
        for item_id in range(n):
            expected = sorted(
                (d(item_id, j), j) for j in range(n) if j != item_id
            )[:k]
            candidates, stats = index.knn_candidates(item_id, k)
            assert list(candidates[:k]) == expected, (item_id, k)
            assert stats.certified_complete
