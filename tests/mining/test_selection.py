"""Deterministic partial selection vs the stable full-sort reference.

``smallest_indices``/``largest_indices`` replaced full sorts on the hot
paths of :class:`~repro.mining.incremental.IncrementalDistanceMatrix`; the
contract is *bit-for-bit* equality with the old sorted-path selection under
the exact pipeline's ``(value, index)`` tie-break, for every k and under
heavy ties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining.selection import largest_indices, smallest_indices


def _smallest_reference(values: np.ndarray, k: int) -> list[int]:
    """The old path: stable full sort under the (value, index) tie-break."""
    order = sorted(range(len(values)), key=lambda i: (values[i], i))
    return order[:k]


def _largest_reference(values: np.ndarray, k: int) -> list[int]:
    order = sorted(range(len(values)), key=lambda i: (-values[i], i))
    return order[:k]


def _tie_heavy_arrays() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        rng.random(37),
        rng.integers(0, 4, size=50).astype(float),  # heavy ties
        np.zeros(12),  # all equal
        np.array([0.5]),
        np.concatenate([np.full(10, 0.25), rng.random(10), np.full(10, 0.25)]),
        rng.random(101).round(1),  # quantised => tied boundary values
    ]


class TestAgainstFullSort:
    @pytest.mark.parametrize("values", _tie_heavy_arrays(), ids=lambda a: f"n={len(a)}")
    def test_smallest_equals_stable_sort_for_every_k(self, values):
        for k in range(len(values) + 1):
            got = list(smallest_indices(values, k))
            assert got == _smallest_reference(values, k), k

    @pytest.mark.parametrize("values", _tie_heavy_arrays(), ids=lambda a: f"n={len(a)}")
    def test_largest_equals_stable_sort_for_every_k(self, values):
        for k in range(len(values) + 1):
            got = list(largest_indices(values, k))
            assert got == _largest_reference(values, k), k

    def test_returned_indices_are_python_ints_compatible(self):
        values = np.array([0.3, 0.1, 0.2])
        assert [int(i) for i in smallest_indices(values, 2)] == [1, 2]
        assert [int(i) for i in largest_indices(values, 2)] == [0, 2]


class TestValidation:
    def test_k_out_of_range_rejected(self):
        values = np.array([0.1, 0.2])
        with pytest.raises(MiningError):
            smallest_indices(values, -1)
        with pytest.raises(MiningError):
            smallest_indices(values, 3)
        with pytest.raises(MiningError):
            largest_indices(values, -1)
        with pytest.raises(MiningError):
            largest_indices(values, 3)

    def test_k_zero_and_k_n_edges(self):
        values = np.array([0.2, 0.2, 0.1])
        assert list(smallest_indices(values, 0)) == []
        assert list(smallest_indices(values, 3)) == [2, 0, 1]
        assert list(largest_indices(values, 0)) == []
        assert list(largest_indices(values, 3)) == [0, 1, 2]
