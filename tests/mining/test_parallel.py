"""The sharded parallel distance pipeline: partitioning and exact equality.

The parallel pipeline's contract is *bit-for-bit* equality with the serial
pipeline (and therefore with the ``distance_matrix_reference`` oracle) for
every measure, every worker count and every chunk size — parallelism is an
execution detail, never a semantics change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpe import LogContext
from repro.core.measures import (
    AccessAreaDistance,
    ResultDistance,
    StructureDistance,
    TokenDistance,
)
from repro.exceptions import MiningError
from repro.mining import compute_distance_matrix, condensed_length, plan_row_blocks
from repro.mining.parallel import parallel_condensed_distances, row_block_offset
from repro.workloads.generator import QueryLogGenerator, WorkloadMix
from repro.workloads.schemas import skyserver_profile


class TestPlanRowBlocks:
    def test_blocks_cover_every_row_exactly_once(self):
        for n in (2, 3, 10, 57, 200):
            for workers in (1, 2, 4, 8):
                blocks = plan_row_blocks(n, workers=workers)
                covered = [row for start, stop in blocks for row in range(start, stop)]
                assert covered == list(range(n - 1)), (n, workers)

    def test_chunk_size_bounds_pairs_per_block(self):
        n = 60
        blocks = plan_row_blocks(n, workers=4, chunk_size=100)
        for start, stop in blocks[:-1]:
            pairs = sum(n - 1 - row for row in range(start, stop))
            # A block closes as soon as it reaches the target, so it can
            # overshoot by at most one row's worth of pairs.
            assert pairs >= 100
            assert pairs <= 100 + (n - 1 - start)

    def test_trivial_inputs(self):
        assert plan_row_blocks(0, workers=2) == []
        assert plan_row_blocks(1, workers=2) == []
        assert plan_row_blocks(2, workers=8) == [(0, 1)]

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            plan_row_blocks(10, workers=0)
        with pytest.raises(MiningError):
            plan_row_blocks(10, workers=2, chunk_size=0)

    def test_row_block_offsets_are_contiguous(self):
        n = 23
        blocks = plan_row_blocks(n, workers=3, chunk_size=20)
        end = 0
        for start, stop in blocks:
            assert row_block_offset(n, start) == end
            end = row_block_offset(n, stop) if stop < n else condensed_length(n)
        assert end == condensed_length(n)


class TestRowBlockHooks:
    """condensed_row_block must concatenate to condensed_distances exactly."""

    def _assert_blocks_concatenate(self, measure, context):
        characteristics = measure.prepare(context)
        serial = measure.condensed_distances(characteristics)
        n = len(characteristics)
        for chunk in (1, 3, n):
            pieces = [
                measure.condensed_row_block(characteristics, start, stop)
                for start, stop in plan_row_blocks(n, workers=1, chunk_size=chunk)
            ]
            stitched = np.concatenate(pieces) if pieces else np.zeros(0)
            assert np.array_equal(stitched, serial), (measure.name, chunk)

    def test_token_row_blocks(self, webshop_log):
        self._assert_blocks_concatenate(TokenDistance(), LogContext(log=webshop_log))

    def test_structure_row_blocks(self, webshop_log):
        self._assert_blocks_concatenate(StructureDistance(), LogContext(log=webshop_log))

    def test_access_area_row_blocks(self, skyserver):
        log = QueryLogGenerator(skyserver, WorkloadMix.analytical(), seed=5).generate(25)
        context = LogContext(log=log, domains=skyserver.domain_catalog())
        self._assert_blocks_concatenate(AccessAreaDistance(), context)

    def test_out_of_range_block_rejected(self, webshop_log):
        measure = TokenDistance()
        characteristics = measure.prepare(LogContext(log=webshop_log))
        with pytest.raises(MiningError):
            measure.condensed_row_block(characteristics, 5, len(characteristics) + 1)
        with pytest.raises(MiningError):
            measure.condensed_row_block(characteristics, -1, 5)


class TestParallelEqualsSerial:
    """Multi-process results across all four measures, against both oracles."""

    @pytest.mark.parametrize("workers,chunk_size", [(2, None), (3, 40), (2, 7)])
    def test_token_parallel_equals_serial(self, webshop, workers, chunk_size):
        log = QueryLogGenerator(webshop, WorkloadMix(), seed=11).generate(40)
        context = LogContext(log=log)
        serial = TokenDistance().condensed_distance_matrix(context)
        parallel = compute_distance_matrix(
            TokenDistance(), context, workers=workers, chunk_size=chunk_size
        )
        reference = TokenDistance().distance_matrix_reference(context)
        assert np.array_equal(parallel.values, serial.values)
        assert np.array_equal(parallel.to_square(), reference)

    def test_structure_parallel_equals_serial(self, webshop_log):
        context = LogContext(log=webshop_log)
        serial = StructureDistance().condensed_distance_matrix(context)
        parallel = compute_distance_matrix(StructureDistance(), context, workers=2)
        assert np.array_equal(parallel.values, serial.values)

    def test_result_parallel_equals_serial(self, webshop, webshop_database):
        log = QueryLogGenerator(webshop, WorkloadMix.spj_only(), seed=11).generate(30)
        context = LogContext(log=log, database=webshop_database)
        serial = ResultDistance().condensed_distance_matrix(context)
        parallel = compute_distance_matrix(ResultDistance(), context, workers=2)
        assert np.array_equal(parallel.values, serial.values)

    def test_access_area_parallel_equals_serial(self, skyserver):
        log = QueryLogGenerator(skyserver, WorkloadMix.analytical(), seed=11).generate(40)
        context = LogContext(log=log, domains=skyserver.domain_catalog())
        serial = AccessAreaDistance().condensed_distance_matrix(context)
        parallel = compute_distance_matrix(AccessAreaDistance(), context, workers=2)
        assert np.array_equal(parallel.values, serial.values)

    def test_parallel_result_lands_in_measure_cache(self, webshop_log):
        measure = TokenDistance()
        context = LogContext(log=webshop_log)
        parallel = measure.condensed_distance_matrix(context, workers=2, chunk_size=10)
        # Same measure, serial call: must return the memoized parallel result.
        assert measure.condensed_distance_matrix(context) is parallel

    def test_workers_one_is_the_serial_path(self, webshop_log):
        measure = TokenDistance()
        characteristics = measure.prepare(LogContext(log=webshop_log))
        serial = measure.condensed_distances(characteristics)
        direct = parallel_condensed_distances(measure, characteristics, workers=1)
        assert np.array_equal(direct, serial)

    def test_invalid_workers_rejected(self, webshop_log):
        measure = TokenDistance()
        characteristics = measure.prepare(LogContext(log=webshop_log))
        with pytest.raises(MiningError):
            parallel_condensed_distances(measure, characteristics, workers=0)
        # The memoized entry point validates too — `--workers 0` must not
        # silently fall back to the serial path and report success.
        with pytest.raises(MiningError):
            measure.condensed_distance_matrix(LogContext(log=webshop_log), workers=0)
        with pytest.raises(MiningError):
            measure.distance_matrix(LogContext(log=webshop_log), workers=-3)


class TestEncryptedParallel:
    def test_encrypted_context_parallel_equals_plain(self, webshop_log, keychain):
        from repro.core.schemes.token_scheme import TokenDpeScheme

        plain_context = LogContext(log=webshop_log)
        encrypted_context = TokenDpeScheme(keychain).encrypt_context(plain_context)
        plain = compute_distance_matrix(TokenDistance(), plain_context, workers=2)
        encrypted = compute_distance_matrix(TokenDistance(), encrypted_context, workers=2)
        assert np.array_equal(plain.values, encrypted.values)
