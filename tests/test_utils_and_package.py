"""Tests for shared helpers, the package facade and the report generator."""

from __future__ import annotations

import pytest

from repro import quick_demo
from repro._utils import (
    chunks,
    deterministic_rng,
    format_table,
    is_close,
    jaccard_distance,
    pairwise_indices,
    stable_hash,
    stable_hash_int,
)
from repro.db.aggregates import (
    evaluate_aggregate,
    register_custom_aggregate,
    unregister_custom_aggregate,
)
from repro.db.expressions import RowScope
from repro.sql.ast import AggregateCall, ColumnRef


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")
        assert stable_hash_int("hello") == stable_hash_int("hello")

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_bytes_and_str_supported(self):
        assert stable_hash(b"abc") == stable_hash("abc")

    def test_int_range(self):
        assert 0 <= stable_hash_int("x", bits=32) < 2**32


class TestSmallHelpers:
    def test_chunks(self):
        assert list(chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunks([1], 0))

    def test_pairwise_indices(self):
        assert list(pairwise_indices(3)) == [(0, 1), (0, 2), (1, 2)]
        assert list(pairwise_indices(1)) == []

    def test_jaccard_distance(self):
        assert jaccard_distance({1, 2}, {2, 3}) == pytest.approx(1 - 1 / 3)
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_distance({1}, {2}) == 1.0
        assert jaccard_distance({1, 2}, {1, 2}) == 0.0

    def test_is_close(self):
        assert is_close(1.0, 1.0 + 1e-13)
        assert not is_close(1.0, 1.001)

    def test_deterministic_rng(self):
        assert deterministic_rng("seed").random() == deterministic_rng("seed").random()
        assert deterministic_rng("a").random() != deterministic_rng("b").random()

    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["long-value", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines padded to equal width
        assert "long-value" in lines[3]


class TestCustomAggregates:
    def test_register_and_evaluate(self):
        register_custom_aggregate("mysum", lambda values: sum(values) * 10)
        try:
            call = AggregateCall("MYSUM", ColumnRef("a"))
            scopes = [RowScope({"t": {"a": 1}}), RowScope({"t": {"a": 2}})]
            assert evaluate_aggregate(call, scopes) == 30
        finally:
            unregister_custom_aggregate("mysum")

    def test_unregister_restores_error(self):
        register_custom_aggregate("temp", lambda values: 0)
        unregister_custom_aggregate("temp")
        from repro.exceptions import ExecutionError

        with pytest.raises(ExecutionError):
            evaluate_aggregate(AggregateCall("TEMP", ColumnRef("a")), [RowScope({"t": {"a": 1}})])

    def test_unregister_missing_is_noop(self):
        unregister_custom_aggregate("never-registered")


class TestPackageFacade:
    def test_quick_demo_runs(self):
        output = quick_demo()
        assert "PRESERVED" in output
        assert "enc_" in output

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestReportGenerator:
    def test_paper_claims_cover_all_experiments(self):
        from repro.analysis.experiments import list_experiments
        from repro.analysis.report import PAPER_CLAIMS

        assert {experiment_id for experiment_id, _ in list_experiments()} == set(PAPER_CLAIMS)
