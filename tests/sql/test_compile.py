"""Tests for the parameterized SQL compiler (repro.sql.render.compile_query)."""

from __future__ import annotations

from repro.sql.parser import parse_query
from repro.sql.render import CompiledQuery, compile_query, quote_identifier


def compile_sql(sql: str) -> CompiledQuery:
    return compile_query(parse_query(sql))


class TestParameterization:
    def test_literals_become_placeholders(self):
        compiled = compile_sql("SELECT name FROM users WHERE age > 30 AND city = 'Rome'")
        assert "30" not in compiled.sql and "Rome" not in compiled.sql
        assert compiled.sql.count("?") == 2
        assert compiled.parameters == (30, "Rome")

    def test_parameters_in_clause_order(self):
        compiled = compile_sql(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x', 'y') "
            "GROUP BY a HAVING COUNT(*) > 2 LIMIT 7"
        )
        assert compiled.parameters == (1, 5, "x", "y", 2, 7)

    def test_null_and_boolean_literals(self):
        compiled = compile_sql("SELECT a FROM t WHERE a = TRUE OR b = NULL")
        assert compiled.parameters == (True, None)

    def test_order_by_literal_is_not_an_ordinal(self):
        # SQLite reads a literal integer in ORDER BY as a column ordinal; a
        # bound parameter is always a constant, matching the interpreter.
        compiled = compile_sql("SELECT a, b FROM t ORDER BY 2 ASC")
        assert 2 in compiled.parameters
        assert "ORDER BY" in compiled.sql and " 2 " not in compiled.sql


class TestIdentifierQuoting:
    def test_identifiers_are_double_quoted(self):
        compiled = compile_sql("SELECT u.name FROM users AS u JOIN t2 ON u.id = t2.id")
        assert '"users" AS "u"' in compiled.sql
        assert '"u"."name"' in compiled.sql

    def test_quote_identifier_escapes_embedded_quotes(self):
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_alias_in_select_is_quoted(self):
        compiled = compile_sql("SELECT a AS result FROM t")
        assert 'AS "result"' in compiled.sql


class TestSemanticsEncoding:
    def test_division_uses_python_semantics_udf(self):
        compiled = compile_sql("SELECT a / b FROM t")
        assert "REPRO_DIV(" in compiled.sql

    def test_modulo_uses_python_semantics_udf(self):
        compiled = compile_sql("SELECT a % b FROM t")
        assert "REPRO_MOD(" in compiled.sql

    def test_order_by_pins_nulls_last(self):
        compiled = compile_sql("SELECT a FROM t ORDER BY a DESC")
        assert '("a" IS NULL) ASC, "a" DESC' in compiled.sql

    def test_order_by_expression_parameters_stay_in_sync(self):
        # The ORDER BY expression is emitted twice (NULLS-last key + sort
        # key), so its literals must be bound twice as well.
        compiled = compile_sql("SELECT a FROM t ORDER BY a + 1 ASC")
        assert compiled.sql.count("?") == len(compiled.parameters) == 2
        assert compiled.parameters == (1, 1)

    def test_aggregates_and_distinct_survive(self):
        compiled = compile_sql("SELECT COUNT(DISTINCT a), HOMSUM(b) FROM t")
        assert 'COUNT(DISTINCT "a")' in compiled.sql
        assert 'HOMSUM("b")' in compiled.sql

    def test_star_projections(self):
        assert compile_sql("SELECT * FROM t").sql.startswith("SELECT * FROM")
        assert '"t".*' in compile_sql("SELECT t.* FROM t").sql
