"""Tests for SnipSuggest-style feature extraction."""

from __future__ import annotations

from repro.sql.features import Feature, feature_set
from repro.sql.parser import parse_query


def features_of(sql: str) -> set[tuple[str, str]]:
    return {(f.clause, f.skeleton) for f in feature_set(parse_query(sql))}


class TestPaperExample:
    def test_example_5(self):
        """Example 5 of the paper: SELECT A1 FROM R WHERE A2 > 5."""
        features = features_of("SELECT A1 FROM R WHERE A2 > 5")
        assert features == {("SELECT", "A1"), ("FROM", "R"), ("WHERE", "A2 >")}


class TestConstantsDropped:
    def test_constant_value_does_not_change_features(self):
        assert features_of("SELECT a FROM t WHERE b > 5") == features_of(
            "SELECT a FROM t WHERE b > 99"
        )

    def test_between_constants_dropped(self):
        features = features_of("SELECT a FROM t WHERE b BETWEEN 1 AND 9")
        assert ("WHERE", "b BETWEEN") in features

    def test_in_constants_dropped(self):
        features = features_of("SELECT a FROM t WHERE b IN (1, 2, 3)")
        assert ("WHERE", "b IN") in features

    def test_like_pattern_dropped(self):
        features = features_of("SELECT a FROM t WHERE name LIKE 'x%'")
        assert ("WHERE", "name LIKE") in features

    def test_flipped_comparison_normalised(self):
        assert ("WHERE", "b <") in features_of("SELECT a FROM t WHERE 5 > b")


class TestClauseCoverage:
    def test_from_features_for_all_tables(self):
        features = features_of("SELECT a FROM t JOIN s ON t.id = s.id")
        assert ("FROM", "t") in features and ("FROM", "s") in features

    def test_join_condition_feature(self):
        features = features_of("SELECT a FROM t JOIN s ON t.id = s.id")
        assert ("JOIN", "t.id = s.id") in features

    def test_group_by_and_having(self):
        features = features_of(
            "SELECT city, COUNT(*) FROM t WHERE age > 1 GROUP BY city HAVING COUNT(*) > 2"
        )
        assert ("GROUPBY", "city") in features
        assert ("HAVING", "COUNT(*) >") in features

    def test_order_by_direction_included(self):
        features = features_of("SELECT a FROM t ORDER BY a DESC")
        assert ("ORDERBY", "a DESC") in features

    def test_aggregate_select_feature(self):
        features = features_of("SELECT SUM(price) FROM t")
        assert ("SELECT", "SUM(price)") in features

    def test_column_column_predicate_kept_whole(self):
        features = features_of("SELECT a FROM t WHERE x = y")
        assert ("WHERE", "x = y") in features

    def test_not_predicate(self):
        features = features_of("SELECT a FROM t WHERE NOT b > 5")
        assert ("WHERE", "NOT b >") in features

    def test_or_predicates_each_contribute(self):
        features = features_of("SELECT a FROM t WHERE b > 5 OR c = 1")
        assert ("WHERE", "b >") in features and ("WHERE", "c =") in features


class TestFeatureValueSemantics:
    def test_feature_is_hashable_and_ordered(self):
        f1 = Feature("WHERE", "a >")
        f2 = Feature("WHERE", "a >")
        assert f1 == f2
        assert len({f1, f2}) == 1
        assert sorted([Feature("WHERE", "b"), Feature("FROM", "a")])[0].clause == "FROM"

    def test_identical_queries_have_identical_feature_sets(self):
        sql = "SELECT a, b FROM t WHERE a > 3 AND b = 'x' ORDER BY a ASC"
        assert feature_set(parse_query(sql)) == feature_set(parse_query(sql))

    def test_different_structure_different_features(self):
        assert features_of("SELECT a FROM t WHERE b > 1") != features_of(
            "SELECT a FROM t WHERE b = 1"
        )
