"""Renderer tests, including the parse/render round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.ast import ColumnRef, Literal
from repro.sql.normalize import normalize_sql, queries_equivalent
from repro.sql.parser import parse_query
from repro.sql.render import render_expression, render_query

ROUNDTRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT * FROM t",
    "SELECT t.* FROM t",
    "SELECT a AS x, b FROM t AS u",
    "SELECT a FROM t WHERE a > 5",
    "SELECT a FROM t WHERE a > 5 AND b = 'x'",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE name LIKE 'ab%'",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT a FROM t WHERE NOT a = 5",
    "SELECT a FROM t JOIN s ON t.id = s.id WHERE s.x < 3",
    "SELECT a FROM t LEFT JOIN s ON t.id = s.id",
    "SELECT a FROM t CROSS JOIN s",
    "SELECT a, COUNT(*) FROM t GROUP BY a",
    "SELECT a, SUM(b) FROM t GROUP BY a HAVING COUNT(*) > 2",
    "SELECT a FROM t ORDER BY a ASC, b DESC LIMIT 5",
    "SELECT AVG(salary) FROM employees WHERE age > 30",
    "SELECT a FROM t WHERE a = -5",
    "SELECT a FROM t WHERE a * 2 + 1 > 10",
    "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
    def test_parse_render_parse_is_identity(self, sql):
        query = parse_query(sql)
        rendered = render_query(query)
        assert parse_query(rendered) == query

    @pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
    def test_rendering_is_stable(self, sql):
        once = render_query(parse_query(sql))
        twice = render_query(parse_query(once))
        assert once == twice


class TestLiteralRendering:
    def test_string_quotes_escaped(self):
        assert render_expression(Literal("it's")) == "'it''s'"

    def test_null_and_booleans(self):
        assert render_expression(Literal(None)) == "NULL"
        assert render_expression(Literal(True)) == "TRUE"
        assert render_expression(Literal(False)) == "FALSE"

    def test_numbers(self):
        assert render_expression(Literal(42)) == "42"
        assert render_expression(Literal(2.5)) == "2.5"

    def test_qualified_column(self):
        assert render_expression(ColumnRef("a", "t")) == "t.a"


class TestNormalize:
    def test_whitespace_and_case_normalized(self):
        assert normalize_sql("select  a\nfrom   t  where a>5") == "SELECT a FROM t WHERE a > 5"

    def test_operator_spelling_normalized(self):
        assert "<>" in normalize_sql("SELECT a FROM t WHERE a != 5")

    def test_equivalence_check(self):
        assert queries_equivalent("select a from t", "SELECT  a  FROM  t")
        assert not queries_equivalent("SELECT a FROM t", "SELECT b FROM t")


# --------------------------------------------------------------------------- #
# property-based round trip over generated queries

_identifiers = st.sampled_from(["a", "b", "c", "col1", "value_x", "T1"])
_tables = st.sampled_from(["t", "s", "log_table", "R"])
_numbers = st.one_of(st.integers(min_value=-1000, max_value=1000),
                     st.floats(min_value=-100, max_value=100, allow_nan=False).map(lambda x: round(x, 2)))
_strings = st.text(alphabet="abcXYZ 0", min_size=0, max_size=6)
_constants = st.one_of(_numbers, _strings)


def _comparison(column: str, value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"{column} = '{escaped}'"
    return f"{column} > {value}"


_predicates = st.builds(_comparison, _identifiers, _constants)


@st.composite
def generated_queries(draw) -> str:
    columns = draw(st.lists(_identifiers, min_size=1, max_size=3, unique=True))
    table = draw(_tables)
    sql = f"SELECT {', '.join(columns)} FROM {table}"
    if draw(st.booleans()):
        predicates = draw(st.lists(_predicates, min_size=1, max_size=3))
        sql += " WHERE " + " AND ".join(predicates)
    if draw(st.booleans()):
        sql += f" ORDER BY {columns[0]} DESC"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(min_value=1, max_value=50))}"
    return sql


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(sql=generated_queries())
    def test_generated_queries_round_trip(self, sql):
        query = parse_query(sql)
        assert parse_query(render_query(query)) == query
