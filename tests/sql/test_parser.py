"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.exceptions import SqlSyntaxError
from repro.sql.ast import (
    AggregateCall,
    ArithmeticOp,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    InPredicate,
    IsNullPredicate,
    JoinType,
    LikePredicate,
    Literal,
    LogicalConnective,
    LogicalOp,
    NotOp,
    Star,
    UnaryMinus,
)
from repro.sql.parser import parse_expression, parse_query


class TestSelectList:
    def test_single_column(self):
        query = parse_query("SELECT a FROM t")
        assert query.select_items[0].expression == ColumnRef("a")

    def test_multiple_columns(self):
        query = parse_query("SELECT a, b, c FROM t")
        assert [item.expression for item in query.select_items] == [
            ColumnRef("a"),
            ColumnRef("b"),
            ColumnRef("c"),
        ]

    def test_star(self):
        query = parse_query("SELECT * FROM t")
        assert query.select_items[0].expression == Star()

    def test_qualified_star(self):
        query = parse_query("SELECT t.* FROM t")
        assert query.select_items[0].expression == Star(table="t")

    def test_alias_with_as(self):
        query = parse_query("SELECT a AS x FROM t")
        assert query.select_items[0].alias == "x"

    def test_alias_without_as(self):
        query = parse_query("SELECT a x FROM t")
        assert query.select_items[0].alias == "x"

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct is True
        assert parse_query("SELECT a FROM t").distinct is False

    def test_qualified_column(self):
        query = parse_query("SELECT t.a FROM t")
        assert query.select_items[0].expression == ColumnRef("a", table="t")

    def test_aggregate_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        expr = query.select_items[0].expression
        assert isinstance(expr, AggregateCall)
        assert expr.function == "COUNT"
        assert isinstance(expr.argument, Star)

    def test_aggregate_distinct(self):
        expr = parse_query("SELECT COUNT(DISTINCT a) FROM t").select_items[0].expression
        assert isinstance(expr, AggregateCall) and expr.distinct


class TestFromClause:
    def test_single_table(self):
        query = parse_query("SELECT a FROM t")
        assert query.from_table.name == "t"
        assert query.joins == ()

    def test_table_alias(self):
        query = parse_query("SELECT a FROM my_table AS m")
        assert query.from_table.alias == "m"
        assert query.from_table.binding_name == "m"

    def test_comma_join_is_cross(self):
        query = parse_query("SELECT a FROM t, s")
        assert query.joins[0].join_type is JoinType.CROSS
        assert query.joins[0].right.name == "s"

    def test_inner_join_with_on(self):
        query = parse_query("SELECT a FROM t JOIN s ON t.id = s.id")
        join = query.joins[0]
        assert join.join_type is JoinType.INNER
        assert isinstance(join.condition, BinaryOp)

    def test_left_outer_join(self):
        query = parse_query("SELECT a FROM t LEFT OUTER JOIN s ON t.id = s.id")
        assert query.joins[0].join_type is JoinType.LEFT

    def test_right_join(self):
        query = parse_query("SELECT a FROM t RIGHT JOIN s ON t.id = s.id")
        assert query.joins[0].join_type is JoinType.RIGHT

    def test_cross_join_keyword(self):
        query = parse_query("SELECT a FROM t CROSS JOIN s")
        assert query.joins[0].join_type is JoinType.CROSS
        assert query.joins[0].condition is None

    def test_join_without_on_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t JOIN s")

    def test_table_names_helper(self):
        query = parse_query("SELECT a FROM t JOIN s ON x = y, u")
        assert query.table_names() == ("t", "s", "u")


class TestWhereClause:
    def test_comparison(self):
        query = parse_query("SELECT a FROM t WHERE a > 5")
        assert query.where == BinaryOp(ComparisonOp.GT, ColumnRef("a"), Literal(5))

    def test_not_equal_spellings(self):
        q1 = parse_query("SELECT a FROM t WHERE a <> 5")
        q2 = parse_query("SELECT a FROM t WHERE a != 5")
        assert q1.where == q2.where

    def test_and_or_precedence(self):
        query = parse_query("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(query.where, LogicalOp)
        assert query.where.op is LogicalConnective.OR
        assert isinstance(query.where.operands[1], LogicalOp)
        assert query.where.operands[1].op is LogicalConnective.AND

    def test_parentheses_override_precedence(self):
        query = parse_query("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(query.where, LogicalOp)
        assert query.where.op is LogicalConnective.AND

    def test_not(self):
        query = parse_query("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(query.where, NotOp)

    def test_between(self):
        query = parse_query("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        where = query.where
        assert isinstance(where, BetweenPredicate)
        assert where.low == Literal(1) and where.high == Literal(10)
        assert not where.negated

    def test_not_between(self):
        where = parse_query("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10").where
        assert isinstance(where, BetweenPredicate) and where.negated

    def test_in_list(self):
        where = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, InPredicate)
        assert len(where.values) == 3

    def test_not_in(self):
        where = parse_query("SELECT a FROM t WHERE a NOT IN (1, 2)").where
        assert isinstance(where, InPredicate) and where.negated

    def test_like(self):
        where = parse_query("SELECT a FROM t WHERE name LIKE 'ab%'").where
        assert isinstance(where, LikePredicate)

    def test_is_null_and_is_not_null(self):
        where = parse_query("SELECT a FROM t WHERE a IS NULL").where
        assert isinstance(where, IsNullPredicate) and not where.negated
        where = parse_query("SELECT a FROM t WHERE a IS NOT NULL").where
        assert isinstance(where, IsNullPredicate) and where.negated

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op is ArithmeticOp.ADD
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op is ArithmeticOp.MUL

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert expr == UnaryMinus(Literal(5))

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("NULL") == Literal(None)

    def test_string_literal_type(self):
        assert parse_expression("'abc'") == Literal("abc")

    def test_float_literal_type(self):
        literal = parse_expression("2.5")
        assert isinstance(literal, Literal) and isinstance(literal.value, float)


class TestOtherClauses:
    def test_group_by(self):
        query = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a")
        assert query.group_by == (ColumnRef("a"),)

    def test_group_by_multiple(self):
        query = parse_query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(query.group_by) == 2

    def test_having(self):
        query = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse_query("SELECT a, b FROM t ORDER BY a ASC, b DESC")
        assert query.order_by[0].ascending is True
        assert query.order_by[1].ascending is False

    def test_order_by_default_ascending(self):
        query = parse_query("SELECT a FROM t ORDER BY a")
        assert query.order_by[0].ascending is True

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 7").limit == 7

    def test_limit_requires_number(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t LIMIT x")

    def test_has_aggregates(self):
        assert parse_query("SELECT COUNT(*) FROM t").has_aggregates()
        assert not parse_query("SELECT a FROM t").has_aggregates()
        assert parse_query(
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1"
        ).has_aggregates()


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "FROM t SELECT a",
            "SELECT a FROM t WHERE a >",
            "SELECT a FROM t WHERE a BETWEEN 1",
            "SELECT a FROM t WHERE a IN 1, 2",
            "SELECT a FROM t trailing garbage tokens ??",
        ],
    )
    def test_invalid_queries_rejected(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_query(sql)

    def test_trailing_input_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t SELECT b FROM s")
