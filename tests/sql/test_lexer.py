"""Tests for the SQL lexer."""

from __future__ import annotations

import pytest

from repro.exceptions import SqlSyntaxError
from repro.sql.lexer import KEYWORDS, Token, TokenType, tokenize


def kinds(sql: str) -> list[TokenType]:
    return [token.type for token in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [token.value for token in tokenize(sql) if token.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_upper_cased(self):
        assert values("select from where")[:3] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        assert values("SELECT Name FROM Users")[1] == "Name"

    def test_star_token(self):
        tokens = tokenize("SELECT * FROM t")
        assert tokens[1].type is TokenType.STAR

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_decimal_literal(self):
        token = tokenize("3.14")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "3.14"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello world"

    def test_string_literal_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_quoted_identifier(self):
        token = tokenize('"weird name"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "weird name"

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("SELECT")[-1].type is TokenType.EOF


class TestOperatorsAndPunctuation:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>", "!="])
    def test_comparison_operators(self, op):
        token = tokenize(f"a {op} b")[1]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_multi_char_operator_not_split(self):
        assert values("a <= 5") == ["a", "<=", "5"]

    def test_punctuation(self):
        vals = values("f(a, b.c)")
        assert "(" in vals and ")" in vals and "," in vals and "." in vals

    def test_arithmetic_operators(self):
        assert values("a + b - c / d % e") == ["a", "+", "b", "-", "c", "/", "d", "%", "e"]

    def test_trailing_semicolon_is_dropped(self):
        assert values("SELECT a FROM t;") == ["SELECT", "a", "FROM", "t"]


class TestPositions:
    def test_positions_point_into_source(self):
        sql = "SELECT a FROM t"
        for token in tokenize(sql):
            if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
                assert sql[token.position : token.position + len(token.value)].upper() == (
                    token.value.upper()
                )

    def test_whitespace_is_skipped(self):
        assert values("SELECT\n\ta  FROM\tt") == ["SELECT", "a", "FROM", "t"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops FROM t")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('SELECT "oops FROM t')

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a FROM t WHERE a ?? 5")

    def test_malformed_number(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 5. FROM t")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("SELECT @ FROM t")
        assert excinfo.value.position == 7


class TestKeywordTable:
    def test_aggregates_are_keywords(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            assert name in KEYWORDS

    def test_token_helper_is_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

    def test_identifier_is_not_keyword_match(self):
        token = Token(TokenType.IDENTIFIER, "SELECTED", 0)
        assert not token.is_keyword("SELECT")
