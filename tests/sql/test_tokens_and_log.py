"""Tests for token-set extraction, query logs and the visitor machinery."""

from __future__ import annotations

import pytest

from repro.exceptions import SqlError
from repro.sql.ast import ColumnRef, Literal, Query
from repro.sql.log import LogEntry, QueryLog
from repro.sql.parser import parse_query
from repro.sql.tokens import query_token_set
from repro.sql.visitor import (
    AstTransformer,
    AstVisitor,
    column_refs,
    contains_aggregate,
    literals,
    walk,
)


class TestTokenSets:
    def test_tokens_are_kind_value_pairs(self):
        tokens = query_token_set("SELECT a FROM t WHERE a > 5")
        assert ("keyword", "SELECT") in tokens
        assert ("identifier", "a") in tokens
        assert ("number", "5") in tokens

    def test_definition3_distance_inputs_are_sets(self):
        # duplicated tokens collapse: 'a' appears twice but once in the set
        tokens = query_token_set("SELECT a FROM t WHERE a > 5")
        assert len([t for t in tokens if t == ("identifier", "a")]) == 1

    def test_identical_queries_same_token_set(self):
        assert query_token_set("SELECT a FROM t") == query_token_set("select a from t")

    def test_string_and_identifier_do_not_collide(self):
        tokens = query_token_set("SELECT a FROM t WHERE b = 'a'")
        assert ("identifier", "a") in tokens and ("string", "a") in tokens

    def test_accepts_parsed_query(self):
        query = parse_query("SELECT a FROM t")
        assert query_token_set(query) == query_token_set("SELECT a FROM t")


class TestQueryLog:
    def test_from_sql_and_statements(self, sample_statements):
        log = QueryLog.from_sql(sample_statements)
        assert len(log) == len(sample_statements)
        assert all(isinstance(entry, LogEntry) for entry in log)

    def test_accessed_tables_and_columns(self, sample_log):
        assert "users" in sample_log.accessed_tables()
        assert "age" in sample_log.accessed_columns()

    def test_map_queries_preserves_metadata(self):
        entry = LogEntry(parse_query("SELECT a FROM t"), user="alice", timestamp=12.0)
        log = QueryLog([entry])
        mapped = log.map_queries(lambda q: q)
        assert mapped[0].user == "alice"
        assert mapped[0].timestamp == 12.0

    def test_slicing_returns_log(self, sample_log):
        sliced = sample_log[:3]
        assert isinstance(sliced, QueryLog)
        assert len(sliced) == 3

    def test_equality(self, sample_statements):
        assert QueryLog.from_sql(sample_statements) == QueryLog.from_sql(sample_statements)
        assert QueryLog.from_sql(sample_statements[:2]) != QueryLog.from_sql(sample_statements[:3])

    def test_json_round_trip(self, sample_log, tmp_path):
        path = tmp_path / "log.json"
        sample_log.save(str(path))
        loaded = QueryLog.load(str(path))
        assert loaded.statements == sample_log.statements

    def test_json_round_trip_with_metadata(self):
        entry = LogEntry(
            parse_query("SELECT a FROM t"),
            user="bob",
            timestamp=1.5,
            metadata=(("session", "42"),),
        )
        loaded = QueryLog.from_json(QueryLog([entry]).to_json())
        assert loaded[0].user == "bob"
        assert dict(loaded[0].metadata)["session"] == "42"

    def test_invalid_json_raises(self):
        with pytest.raises(SqlError):
            QueryLog.from_json("not json at all {")

    def test_from_queries(self):
        queries = [parse_query("SELECT a FROM t"), parse_query("SELECT b FROM s")]
        log = QueryLog.from_queries(queries)
        assert log.queries == queries


class TestVisitors:
    def test_walk_yields_all_column_refs(self):
        query = parse_query("SELECT a, b FROM t WHERE c > 1 AND d = 2 ORDER BY a ASC")
        names = {ref.name for ref in column_refs(query)}
        assert names == {"a", "b", "c", "d"}

    def test_literals_collected(self):
        query = parse_query("SELECT a FROM t WHERE c > 1 AND name = 'x'")
        values = {literal.value for literal in literals(query)}
        assert values == {1, "x"}

    def test_contains_aggregate(self):
        assert contains_aggregate(parse_query("SELECT SUM(a) FROM t").select_items[0].expression)
        assert not contains_aggregate(parse_query("SELECT a FROM t").select_items[0].expression)

    def test_walk_includes_join_condition(self):
        query = parse_query("SELECT a FROM t JOIN s ON t.x = s.y")
        names = {ref.name for ref in column_refs(query)}
        assert {"x", "y"} <= names

    def test_visitor_dispatch(self):
        class CountColumns(AstVisitor):
            def __init__(self):
                self.count = 0

            def visit_ColumnRef(self, node):
                self.count += 1

        visitor = CountColumns()
        visitor.visit(parse_query("SELECT a, b FROM t WHERE c = 1"))
        assert visitor.count == 3

    def test_identity_transformer_returns_equal_query(self, sample_statements):
        transformer = AstTransformer()
        for sql in sample_statements:
            query = parse_query(sql)
            assert transformer.transform_query(query) == query

    def test_literal_transformer_rewrites_constants(self):
        class Doubler(AstTransformer):
            def transform_literal(self, literal, context):
                if isinstance(literal.value, int):
                    return Literal(literal.value * 2)
                return literal

        query = parse_query("SELECT a FROM t WHERE b > 5 AND c IN (1, 2)")
        transformed = Doubler().transform_query(query)
        values = {literal.value for literal in literals(transformed)}
        assert values == {10, 2, 4}

    def test_column_transformer_sees_context_clause(self):
        seen_clauses = []

        class Recorder(AstTransformer):
            def transform_column_ref(self, ref, context):
                seen_clauses.append(context.clause)
                return ref

        Recorder().transform_query(
            parse_query("SELECT a FROM t WHERE b = 1 GROUP BY a ORDER BY a ASC")
        )
        assert {"SELECT", "WHERE", "GROUP BY", "ORDER BY"} <= set(seen_clauses)

    def test_compared_column_in_context(self):
        captured = []

        class Recorder(AstTransformer):
            def transform_literal(self, literal, context):
                compared = context.compared_column()
                captured.append(None if compared is None else compared.name)
                return literal

        Recorder().transform_query(parse_query("SELECT a FROM t WHERE age > 30 AND city = 'B'"))
        assert set(captured) == {"age", "city"}

    def test_aggregate_context_flag(self):
        captured = []

        class Recorder(AstTransformer):
            def transform_column_ref(self, ref, context):
                captured.append((ref.name, context.aggregate))
                return ref

        Recorder().transform_query(parse_query("SELECT SUM(price), name FROM t"))
        assert ("price", "SUM") in captured
        assert ("name", None) in captured
