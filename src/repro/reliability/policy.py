"""Retry, deadline, and circuit-breaker policies for the fault-tolerance layer.

Three cooperating pieces, each with injectable time sources so every test
runs against a fake clock (no real sleeps):

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *decorrelated jitter* (Brooker's AWS variant: each delay is drawn
  uniformly from ``[base, previous * 3]`` and capped at ``max_delay``),
  retrying only errors a typed classifier deems transient;
* :class:`Deadline` — a monotonic-clock budget propagated through
  ``ProxySession.run/stream`` and ``MiningServer.submit/mine``; checked
  cooperatively between queries, raising
  :class:`~repro.api.errors.DeadlineExceeded` past the budget;
* :class:`CircuitBreaker` — a thread-safe closed/open/half-open state
  machine over a sliding window of outcomes with a failure-rate threshold,
  used per tenant by the serving layer so one failing tenant cannot starve
  the shared worker pool.

:class:`ReliabilityStats` aggregates the counters
(``retries/gave_up/deadline_exceeded/recoveries``) the serving layer
surfaces in :class:`~repro.server.stats.TenantStats`, and
:class:`RetryingBackend` applies a :class:`RetryPolicy` around any
:class:`~repro.db.backend.ExecutionBackend` without the backend knowing.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable
from typing import Any

from repro.api.errors import CircuitOpen, DeadlineExceeded
from repro.exceptions import TransientError

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "ReliabilityStats",
    "RetryPolicy",
    "RetryingBackend",
    "classify_transient",
]

#: Standard-library exception types treated as transient alongside the
#: internal :class:`~repro.exceptions.TransientError` family.
_STDLIB_TRANSIENTS = (TimeoutError, ConnectionError, InterruptedError)


def classify_transient(error: BaseException) -> bool:
    """Return ``True`` when ``error`` is safe to retry.

    The default classifier used by :class:`RetryPolicy`: the internal
    :class:`~repro.exceptions.TransientError` family plus the
    standard-library transients (:class:`TimeoutError`,
    :class:`ConnectionError`, :class:`InterruptedError`).  Everything else
    — including :class:`~repro.exceptions.WorkerCrashed` — is permanent.
    """
    return isinstance(error, (TransientError, *_STDLIB_TRANSIENTS))


class ReliabilityStats:
    """Thread-safe counters for the fault-tolerance layer.

    One instance is shared between a tenant's retry wrappers, deadline
    checks, and recovery calls; :meth:`snapshot` feeds the ``reliability``
    block of :class:`~repro.server.stats.TenantStats`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._retries = 0
        self._gave_up = 0
        self._deadline_exceeded = 0
        self._recoveries = 0

    def count_retry(self) -> None:
        """Record one retried attempt (a transient failure that was retried)."""
        with self._lock:
            self._retries += 1

    def count_gave_up(self) -> None:
        """Record one exhausted retry budget (the last attempt also failed)."""
        with self._lock:
            self._gave_up += 1

    def count_deadline_exceeded(self) -> None:
        """Record one deadline expiry observed by a policy or session."""
        with self._lock:
            self._deadline_exceeded += 1

    def count_recovery(self) -> None:
        """Record one successful journal recovery."""
        with self._lock:
            self._recoveries += 1

    def snapshot(self) -> dict[str, int]:
        """Return a point-in-time copy of all counters."""
        with self._lock:
            return {
                "retries": self._retries,
                "gave_up": self._gave_up,
                "deadline_exceeded": self._deadline_exceeded,
                "recoveries": self._recoveries,
            }


class Deadline:
    """A cooperative time budget over an injectable monotonic clock.

    Construct with :meth:`after` (seconds) or :meth:`after_ms`; pass the
    instance down through session and server calls.  Work in progress calls
    :meth:`check` at safe points (between queries, before a queued task
    starts); past the budget it raises
    :class:`~repro.api.errors.DeadlineExceeded` carrying elapsed/budget.

    The clock is injectable for tests; production uses
    :func:`time.monotonic`, so wall-clock adjustments never fire deadlines.
    """

    __slots__ = ("_budget", "_clock", "_started")

    def __init__(
        self, budget: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget!r}")
        self._budget = float(budget)
        self._clock = clock
        self._started = clock()

    @classmethod
    def after(
        cls, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> Deadline:
        """Return a deadline expiring ``seconds`` from now."""
        return cls(seconds, clock=clock)

    @classmethod
    def after_ms(
        cls, milliseconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> Deadline:
        """Return a deadline expiring ``milliseconds`` from now."""
        return cls(milliseconds / 1000.0, clock=clock)

    @property
    def budget(self) -> float:
        """The total budget in seconds."""
        return self._budget

    def elapsed(self) -> float:
        """Return the seconds elapsed since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Return the seconds left before expiry (never negative)."""
        return max(0.0, self._budget - self.elapsed())

    @property
    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self.elapsed() >= self._budget

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is used up."""
        elapsed = self.elapsed()
        if elapsed >= self._budget:
            prefix = f"{context}: " if context else ""
            raise DeadlineExceeded(
                f"{prefix}deadline of {self._budget:.3f}s exceeded "
                f"after {elapsed:.3f}s",
                elapsed=elapsed,
                budget=self._budget,
            )


class RetryPolicy:
    """Bounded retries with exponential backoff and decorrelated jitter.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying.  Delays follow the decorrelated-jitter recipe — the first
    delay is drawn from ``[base_delay, base_delay * 3]``, each subsequent
    one from ``[base_delay, previous * 3]``, all capped at ``max_delay`` —
    which keeps retry storms from synchronising without the unbounded
    growth of plain exponential backoff.

    Only errors the ``classify`` predicate accepts are retried (default:
    :func:`classify_transient`).  ``sleep``, ``clock``, and the jitter
    ``rng`` seed are injectable so tests drive the policy with a fake
    clock and a fixed random stream — no real sleeps, fully deterministic.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        classify: Callable[[BaseException], bool] = classify_transient,
        sleep: Callable[[float], None] = time.sleep,
        seed: int | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        if base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay!r}")
        if max_delay < base_delay:
            raise ValueError(
                f"max_delay ({max_delay!r}) must be >= base_delay ({base_delay!r})"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._classify = classify
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    def next_delay(self, previous: float | None) -> float:
        """Return the next backoff delay given the previous one (or ``None``).

        Implements one decorrelated-jitter step:
        ``min(max_delay, uniform(base_delay, max(previous, base) * 3))``.
        """
        anchor = self.base_delay if previous is None else max(previous, self.base_delay)
        with self._rng_lock:
            drawn = self._rng.uniform(self.base_delay, anchor * 3)
        return min(self.max_delay, drawn)

    def delays(self) -> Iterable[float]:
        """Yield the delay before each retry (``max_attempts - 1`` values)."""
        previous: float | None = None
        for _ in range(self.max_attempts - 1):
            previous = self.next_delay(previous)
            yield previous

    def call(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Deadline | None = None,
        stats: ReliabilityStats | None = None,
        context: str = "",
    ) -> Any:
        """Invoke ``fn`` with retries; return its result or raise.

        Non-transient errors propagate immediately.  Transient errors are
        retried after a jittered backoff until the attempt budget runs out
        (the last error re-raises, ``stats.gave_up`` counted) or the
        ``deadline`` cannot fund the next sleep (raises
        :class:`DeadlineExceeded` chained from the transient error, so the
        caller sees *why* the budget was burnt).
        """
        previous: float | None = None
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                try:
                    deadline.check(context)
                except DeadlineExceeded:
                    if stats is not None:
                        stats.count_deadline_exceeded()
                    raise
            try:
                return fn()
            except BaseException as error:
                if not self._classify(error) or attempt >= self.max_attempts:
                    if stats is not None and self._classify(error):
                        stats.count_gave_up()
                    raise
                delay = self.next_delay(previous)
                previous = delay
                if deadline is not None and deadline.remaining() < delay:
                    if stats is not None:
                        stats.count_deadline_exceeded()
                    prefix = f"{context}: " if context else ""
                    raise DeadlineExceeded(
                        f"{prefix}deadline cannot fund the next retry "
                        f"({delay:.3f}s backoff, "
                        f"{deadline.remaining():.3f}s remaining)",
                        elapsed=deadline.elapsed(),
                        budget=deadline.budget,
                    ) from error
                if stats is not None:
                    stats.count_retry()
                if delay > 0:
                    self._sleep(delay)
        raise AssertionError("unreachable: retry loop returns or raises")


class RetryingBackend:
    """An :class:`~repro.db.backend.ExecutionBackend` wrapper that retries.

    Applies a :class:`RetryPolicy` around ``execute``/``execute_many`` so
    transient provider faults (classified by the policy) are absorbed
    before they reach the proxy session.  Everything else — attributes,
    ``close``, the sqlite handle used by the tamper harness — forwards to
    the wrapped backend untouched.
    """

    def __init__(
        self,
        inner: Any,
        policy: RetryPolicy,
        *,
        stats: ReliabilityStats | None = None,
    ) -> None:
        self._inner = inner
        self._policy = policy
        self._stats = stats
        self.name = getattr(inner, "name", "unknown")

    def execute(self, query: Any, deadline: Deadline | None = None) -> Any:
        """Execute one query through the wrapped backend, with retries."""
        return self._policy.call(
            lambda: self._inner.execute(query),
            deadline=deadline,
            stats=self._stats,
            context=f"execute[{self.name}]",
        )

    def execute_many(self, queries: Any, deadline: Deadline | None = None) -> Any:
        """Execute a query batch through the wrapped backend, with retries."""
        return self._policy.call(
            lambda: self._inner.execute_many(queries),
            deadline=deadline,
            stats=self._stats,
            context=f"execute_many[{self.name}]",
        )

    def close(self) -> None:
        """Close the wrapped backend."""
        self._inner.close()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)


class CircuitBreaker:
    """A thread-safe closed/open/half-open breaker over a failure-rate window.

    Outcomes are recorded into a sliding window of the last ``window``
    calls.  With at least ``min_calls`` outcomes recorded, a failure rate
    at or above ``failure_rate_threshold`` opens the breaker: :meth:`allow`
    raises :class:`~repro.api.errors.CircuitOpen` until
    ``cooldown_seconds`` have passed on the injectable monotonic clock.
    The first :meth:`allow` after the cooldown admits a single *half-open*
    probe; the probe's success closes the breaker (window reset), its
    failure re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        failure_rate_threshold: float = 0.5,
        min_calls: int = 5,
        window: int = 16,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        tenant: str | None = None,
    ) -> None:
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ValueError(
                "failure_rate_threshold must be in (0, 1], "
                f"got {failure_rate_threshold!r}"
            )
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls!r}")
        if window < min_calls:
            raise ValueError(
                f"window ({window!r}) must be >= min_calls ({min_calls!r})"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds!r}"
            )
        self.failure_rate_threshold = failure_rate_threshold
        self.min_calls = min_calls
        self.cooldown_seconds = cooldown_seconds
        self.tenant = tenant
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """The current state: ``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._observe_state()

    def _observe_state(self) -> str:
        # Lock held.  An open breaker whose cooldown has elapsed presents
        # as half-open: the next allow() admits the probe.
        if self._state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = self.HALF_OPEN
                self._probe_in_flight = False
        return self._state

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpen`.

        Closed: always admits.  Open: raises with ``retry_after`` set to
        the cooldown remainder.  Half-open: admits exactly one probe at a
        time; concurrent callers are rejected until the probe reports.
        """
        with self._lock:
            state = self._observe_state()
            if state == self.CLOSED:
                return
            if state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            remaining = max(
                0.0, self.cooldown_seconds - (self._clock() - self._opened_at)
            )
            label = f"tenant {self.tenant!r}" if self.tenant else "circuit"
            raise CircuitOpen(
                f"{label} breaker is {state}: rejecting new work for "
                f"{remaining:.3f}s",
                tenant=self.tenant,
                retry_after=remaining,
            )

    def record_success(self) -> None:
        """Record a successful call; closes the breaker after a good probe."""
        with self._lock:
            state = self._observe_state()
            if state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._outcomes.clear()
                self._probe_in_flight = False
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Record a failed call; may open (or re-open) the breaker."""
        with self._lock:
            state = self._observe_state()
            if state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.failure_rate_threshold:
                    self._state = self.OPEN
                    self._opened_at = self._clock()
