"""Crash-safe streaming: an append-only journal + snapshots for query streams.

A :class:`StreamJournal` attaches to a :class:`StreamingQueryLog
<repro.mining.incremental.StreamingQueryLog>` and durably records every
appended batch as one JSON line — the batch's canonical SQL plus the
stream's hash-chain head after the append — with an optional periodic
snapshot to bound replay time.  After a worker or process dies mid-stream,
:func:`recover_matrix` rebuilds a fresh
:class:`~repro.mining.incremental.IncrementalDistanceMatrix` by replaying
the journal; the incremental layer's core invariant (artefacts equal batch
recompute, bit for bit, regardless of batch boundaries) makes the recovered
state *exactly* the state an uninterrupted run would have reached over the
journaled prefix.

Crash semantics:

* each batch record is written, flushed, and (optionally) fsynced before
  :meth:`StreamJournal.record` returns, so a crash loses at most the batch
  in flight;
* a torn final line (the crash hit mid-write) is tolerated and dropped on
  reload; a corrupt line *before* the tail raises
  :class:`~repro.exceptions.JournalError` — that is disk corruption, not a
  crash;
* every reload refolds the PR 8 hash chain
  (:class:`~repro.crypto.integrity.LogHashChain`) over the journaled
  entries and verifies it against each recorded head, so a tampered or
  mis-assembled journal cannot silently recover into wrong artefacts; an
  owner-signed :class:`~repro.crypto.integrity.ChainCheckpoint` can
  additionally pin the journal prefix to a key only the owner holds.

Snapshots are written atomically (temp file + ``os.replace``) next to the
journal; reload prefers the snapshot and replays only the batches recorded
after it.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.crypto.integrity import ChainCheckpoint, LogHashChain, verify_log_entries
from repro.exceptions import JournalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.dpe import DistanceMeasure
    from repro.core.domains import DomainCatalog
    from repro.db.database import Database
    from repro.mining.incremental import IncrementalDistanceMatrix, StreamingQueryLog

__all__ = [
    "RecoveryReport",
    "StreamJournal",
    "recover_matrix",
]


@dataclass(frozen=True)
class JournalState:
    """The durable state read back from a journal (+ optional snapshot)."""

    #: Batches to replay, in order.  When a snapshot was used, the first
    #: element is the snapshot's full entry list (one catch-up batch).
    batches: tuple[tuple[str, ...], ...]
    #: Hash-chain head after each batch in :attr:`batches`.
    heads: tuple[str, ...]
    #: Total batches recorded (snapshot batches + journal batches).
    batches_recorded: int
    #: Whether a torn final line was dropped on reload.
    torn_tail_dropped: bool
    #: Whether the snapshot seeded the state.
    snapshot_used: bool

    @property
    def entries(self) -> tuple[str, ...]:
        """All journaled SQL entries, flattened in order."""
        return tuple(sql for batch in self.batches for sql in batch)


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_matrix` rebuilt, verified, and dropped."""

    #: Batches replayed into the recovered matrix.
    batches_replayed: int
    #: Entries replayed (sum of batch sizes).
    entries_replayed: int
    #: Hash-chain head of the recovered stream (verified against the journal).
    chain_head: str
    #: Whether a torn final journal line was dropped.
    torn_tail_dropped: bool
    #: Whether a snapshot seeded the replay.
    snapshot_used: bool
    #: Whether an owner-signed checkpoint was verified against the prefix.
    checkpoint_verified: bool

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for reports and JSON artifacts."""
        return {
            "batches_replayed": self.batches_replayed,
            "entries_replayed": self.entries_replayed,
            "chain_head": self.chain_head,
            "torn_tail_dropped": self.torn_tail_dropped,
            "snapshot_used": self.snapshot_used,
            "checkpoint_verified": self.checkpoint_verified,
        }


class StreamJournal:
    """Durable append-only journal for a streaming query log.

    Construction reads any existing journal/snapshot at ``path`` (resuming
    after a crash is the same code path as starting fresh);
    :meth:`attach` then wires the journal to a live stream: already-present
    stream entries the journal has not seen are written as one catch-up
    batch, and every future append is recorded from inside the stream's
    locked notification — so "batch visible in stream" implies "batch
    journaled" the moment :meth:`append
    <repro.mining.incremental.StreamingQueryLog.append>` returns.

    ``snapshot_every=k`` writes a full snapshot after every ``k``-th batch,
    bounding recovery replay cost at the price of rewriting the entry list;
    ``fsync=True`` additionally fsyncs each record (crash-proof against
    power loss, not just process death).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        snapshot_every: int = 0,
        fsync: bool = False,
    ) -> None:
        if snapshot_every < 0:
            raise JournalError(
                f"snapshot_every must be >= 0, got {snapshot_every!r}"
            )
        self.path = Path(path)
        self.snapshot_every = snapshot_every
        self._fsync = fsync
        self._lock = threading.Lock()
        state = read_journal(self.path)
        self._entries: list[str] = list(state.entries)
        self._batches = state.batches_recorded
        self._chain = LogHashChain()
        for sql in self._entries:
            self._chain.extend(sql)
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False

    @property
    def snapshot_path(self) -> Path:
        """Where snapshots for this journal live."""
        return snapshot_path_for(self.path)

    @property
    def batches_recorded(self) -> int:
        """Batches durably recorded so far (including any resumed state)."""
        with self._lock:
            return self._batches

    @property
    def entries_recorded(self) -> int:
        """Entries durably recorded so far."""
        with self._lock:
            return len(self._entries)

    def attach(self, stream: "StreamingQueryLog") -> None:
        """Journal ``stream``: catch up on its current content, then subscribe.

        The journaled entries must be a prefix of the stream's (they are
        equal right after :func:`recover_matrix`); anything else means this
        journal belongs to a different stream and raises
        :class:`~repro.exceptions.JournalError` instead of corrupting it.
        """
        with stream.lock:
            stream_sqls = [entry.sql for entry in stream]
            with self._lock:
                if self._entries != stream_sqls[: len(self._entries)]:
                    raise JournalError(
                        f"journal {str(self.path)!r} is not a prefix of the "
                        f"stream ({len(self._entries)} journaled entries, "
                        f"{len(stream_sqls)} in the stream)"
                    )
                pending = stream_sqls[len(self._entries) :]
            if pending:
                self.record(pending, stream.chain_head)
            stream.subscribe(
                lambda batch: self.record(
                    [entry.sql for entry in batch], stream.chain_head
                )
            )

    def record(self, entries: list[str], head: str) -> None:
        """Durably append one batch record (``entries`` + chain ``head``).

        The record is flushed (and fsynced when configured) before this
        returns; a snapshot follows when ``snapshot_every`` divides the new
        batch count.
        """
        with self._lock:
            if self._closed:
                raise JournalError(f"journal {str(self.path)!r} is closed")
            for sql in entries:
                self._chain.extend(sql)
            if self._chain.head != head:
                raise JournalError(
                    "journal chain diverged from the stream: the journal "
                    "missed a batch or was attached to the wrong stream"
                )
            self._batches += 1
            self._entries.extend(entries)
            line = json.dumps(
                {"batch": self._batches, "entries": list(entries), "head": head},
                separators=(",", ":"),
            )
            self._file.write(line + "\n")
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
            if self.snapshot_every and self._batches % self.snapshot_every == 0:
                self._write_snapshot()

    def _write_snapshot(self) -> None:
        # Lock held.  Atomic replace: readers either see the old snapshot
        # or the new one, never a torn file.
        payload = json.dumps(
            {
                "batches": self._batches,
                "entries": self._entries,
                "head": self._chain.head,
            },
            separators=(",", ":"),
        )
        target = self.snapshot_path
        temp = target.with_name(target.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(temp, target)

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "StreamJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def snapshot_path_for(path: str | os.PathLike[str]) -> Path:
    """The snapshot file belonging to the journal at ``path``."""
    path = Path(path)
    return path.with_name(path.name + ".snapshot")


def read_journal(path: str | os.PathLike[str]) -> JournalState:
    """Read and verify the durable state at ``path``.

    Missing files yield an empty state.  The snapshot (when present) seeds
    the entry list; journal records up to and including the snapshot batch
    are skipped, later ones replayed.  The hash chain is refolded from the
    entries and checked against every recorded head — a mismatch raises
    :class:`~repro.exceptions.JournalError` (tampered or mis-paired files),
    as does a corrupt line anywhere but the torn tail.
    """
    path = Path(path)
    batches: list[tuple[str, ...]] = []
    heads: list[str] = []
    chain = LogHashChain()
    recorded = 0
    snapshot_used = False

    snapshot = snapshot_path_for(path)
    if snapshot.exists():
        try:
            payload = json.loads(snapshot.read_text(encoding="utf-8"))
            entries = [str(sql) for sql in payload["entries"]]
            recorded = int(payload["batches"])
            head = str(payload["head"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise JournalError(
                f"snapshot {str(snapshot)!r} is corrupt: {error}"
            ) from error
        for sql in entries:
            chain.extend(sql)
        if chain.head != head:
            raise JournalError(
                f"snapshot {str(snapshot)!r} failed hash-chain verification"
            )
        batches.append(tuple(entries))
        heads.append(head)
        snapshot_used = True

    torn_tail_dropped = False
    if path.exists():
        raw_lines = path.read_text(encoding="utf-8").split("\n")
        # A cleanly written journal ends with "\n": the final split element
        # is empty.  Anything else is the torn tail of a crashed write.
        lines = raw_lines[:-1]
        tail = raw_lines[-1]
        records: list[dict[str, Any]] = []
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                batch_no = int(record["batch"])
                entries = [str(sql) for sql in record["entries"]]
                head = str(record["head"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                if index == len(lines) - 1 and not tail:
                    # The crash tore the final line before its newline ever
                    # made it to disk is handled below; a final *complete*
                    # line that still fails to parse means the newline
                    # landed but the payload did not — same crash, same
                    # tolerance.
                    torn_tail_dropped = True
                    break
                raise JournalError(
                    f"journal {str(path)!r} line {index + 1} is corrupt: {error}"
                ) from error
            records.append({"batch": batch_no, "entries": entries, "head": head})
        if tail:
            torn_tail_dropped = True
        for record in records:
            if record["batch"] <= recorded:
                # Already covered by the snapshot.
                continue
            if record["batch"] != recorded + 1:
                raise JournalError(
                    f"journal {str(path)!r} skips from batch {recorded} "
                    f"to {record['batch']}"
                )
            for sql in record["entries"]:
                chain.extend(sql)
            if chain.head != record["head"]:
                raise JournalError(
                    f"journal {str(path)!r} batch {record['batch']} failed "
                    "hash-chain verification"
                )
            batches.append(tuple(record["entries"]))
            heads.append(record["head"])
            recorded = record["batch"]

    return JournalState(
        batches=tuple(batches),
        heads=tuple(heads),
        batches_recorded=recorded,
        torn_tail_dropped=torn_tail_dropped,
        snapshot_used=snapshot_used,
    )


def recover_matrix(
    path: str | os.PathLike[str],
    measure: "DistanceMeasure",
    *,
    database: "Database | None" = None,
    domains: "DomainCatalog | None" = None,
    checkpoint: ChainCheckpoint | None = None,
    key: bytes | None = None,
    stats: Any = None,
    **mining_options: Any,
) -> tuple["IncrementalDistanceMatrix", RecoveryReport]:
    """Rebuild an incremental matrix from the journal at ``path``.

    Replays every verified journaled batch into a fresh
    :class:`~repro.mining.incremental.StreamingQueryLog` +
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix`
    (constructed with ``mining_options``: ``knn_k``, ``dbscan_eps``, ...).
    Because incremental artefacts are bit-for-bit equal to batch recompute
    regardless of batch boundaries, the recovered matrix state is exactly
    what an uninterrupted run over the journaled prefix would hold.

    When ``checkpoint`` and ``key`` are given the journaled entries are
    additionally verified as a prefix-extension of the owner-signed
    checkpoint (:func:`~repro.crypto.integrity.verify_log_entries`), so a
    provider cannot hand back a forged journal.  ``stats`` (a
    :class:`~repro.reliability.policy.ReliabilityStats`) gets its
    ``recoveries`` counter bumped on success.

    Returns ``(matrix, report)``; re-attaching a :class:`StreamJournal` at
    the same ``path`` to ``matrix.stream`` resumes journaling seamlessly.
    """
    from repro.mining.incremental import IncrementalDistanceMatrix, StreamingQueryLog

    state = read_journal(path)
    checkpoint_verified = False
    if checkpoint is not None:
        if key is None:
            raise JournalError("checkpoint verification requires the signing key")
        verify_log_entries(list(state.entries), checkpoint, key)
        checkpoint_verified = True

    stream = StreamingQueryLog()
    matrix = IncrementalDistanceMatrix(
        measure, stream, database=database, domains=domains, **mining_options
    )
    for batch in state.batches:
        stream.append(batch)
    if state.heads and stream.chain_head != state.heads[-1]:
        raise JournalError(
            "recovered stream head does not match the journal "
            "(entry normalization drifted)"
        )
    if stats is not None:
        stats.count_recovery()
    report = RecoveryReport(
        batches_replayed=len(state.batches),
        entries_replayed=len(state.entries),
        chain_head=stream.chain_head,
        torn_tail_dropped=state.torn_tail_dropped,
        snapshot_used=state.snapshot_used,
        checkpoint_verified=checkpoint_verified,
    )
    return matrix, report
