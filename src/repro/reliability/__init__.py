"""Fault tolerance: deterministic chaos, retry/deadline/breaker policies, recovery.

The serving stack survives a *Byzantine* provider via the integrity layer
(PR 8); this package makes it survive a merely *unreliable* one — transient
I/O errors, latency spikes, worker crashes — and proves it deterministically:

* :mod:`repro.reliability.faults` — the seeded :class:`FaultInjector`, the
  chaos analogue of :mod:`repro.attacks.tamper`, wrapping execution
  backends, the Paillier noise pool, and streaming sinks;
* :mod:`repro.reliability.policy` — :class:`RetryPolicy` (exponential
  backoff + decorrelated jitter over a typed transient classification),
  :class:`Deadline` (cooperative budgets through sessions and the server),
  and the per-tenant :class:`CircuitBreaker`;
* :mod:`repro.reliability.journal` — the crash-safe
  :class:`StreamJournal` + :func:`recover_matrix`, rebuilding incremental
  mining state bit-for-bit from an append-only journal verified by the
  PR 8 hash chain.

Experiment R1 (``repro run R1``) and ``benchmarks/bench_r1_resilience.py``
drive all three together: under seeded faults the server completes 100% of
admitted work with results bit-for-bit equal to a fault-free run.
"""

# Import-order anchor: repro.api imports this package's submodules *after*
# its own errors/config modules exist, and our submodules import from
# repro.api.errors.  Importing repro.api first makes `import
# repro.reliability.policy` safe from anywhere (test files, the CLI)
# without tripping the half-initialized-module failure mode.
import repro.api  # noqa: F401  (import-order anchor, see comment above)

from repro.reliability.faults import (
    FaultInjector,
    FaultyBackend,
    FaultyNoisePool,
    FaultySink,
)
from repro.reliability.journal import RecoveryReport, StreamJournal, recover_matrix
from repro.reliability.policy import (
    CircuitBreaker,
    Deadline,
    ReliabilityStats,
    RetryPolicy,
    RetryingBackend,
    classify_transient,
)

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultyBackend",
    "FaultyNoisePool",
    "FaultySink",
    "RecoveryReport",
    "ReliabilityStats",
    "RetryPolicy",
    "RetryingBackend",
    "StreamJournal",
    "classify_transient",
    "recover_matrix",
]
