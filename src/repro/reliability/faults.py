"""Deterministic, seeded fault injection — the chaos analogue of ``tamper.py``.

Where :mod:`repro.attacks.tamper` models a *Byzantine* provider (flipped
ciphertexts, replayed snapshots), this module models an *unreliable* one:
transient I/O errors, latency spikes, exception-on-Nth-call scripts, and
mid-stream worker crashes.  One :class:`FaultInjector` is shared by every
wrapper it hands out, so a single seed reproduces the exact fault schedule
across tests, benchmarks, and the R1 experiment.

Determinism: every fault *site* (``"backend.execute"``, ``"pool.refill"``,
...) draws from its own :class:`random.Random` seeded with
``(seed, site)``, so a site's fault sequence is a pure function of its own
call order — independent of how concurrent sites interleave.

Wrappers:

* :meth:`FaultInjector.wrap_backend` /
  :meth:`FaultInjector.register_chaos_backend` — fault any
  :class:`~repro.db.backend.ExecutionBackend`, either directly or by
  registering a named chaos backend so ``BackendConfig(name=...)`` and the
  whole ``repro.api`` stack use it without code changes;
* :meth:`FaultInjector.wrap_pool` / :meth:`FaultInjector.install_pool_faults`
  — fault the Paillier noise pool's refill path (the async-refill retry in
  :class:`~repro.crypto.hom.NoiseRefillHandle` is what absorbs these);
* :meth:`FaultInjector.wrap_sink` — crash a streaming sink mid-workload,
  modelling a worker thread dying between batches (recovery goes through
  :mod:`repro.reliability.journal`).

Transient faults raise :class:`~repro.exceptions.InjectedFault` (a
:class:`~repro.exceptions.TransientError`, so the retry layer absorbs
them); scripted faults raise whatever exception the script specifies —
:class:`~repro.exceptions.WorkerCrashed` for crashes,
:class:`~repro.exceptions.ExecutionError` for permanent I/O errors.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable, Iterable
from typing import Any

from repro.db.backend import create_backend, register_backend
from repro.exceptions import InjectedFault, WorkerCrashed

__all__ = [
    "FaultInjector",
    "FaultyBackend",
    "FaultyNoisePool",
    "FaultySink",
]

#: A scripted fault: an exception instance or a zero-arg factory for one.
FaultSpec = BaseException | Callable[[], BaseException]


class FaultInjector:
    """Deterministic, seeded fault injection shared across wrappers.

    Parameters
    ----------
    seed:
        Master seed; each site derives its own RNG from ``(seed, site)``.
    transient_rate:
        Probability in ``[0, 1]`` that a call at a wrapped site raises an
        :class:`~repro.exceptions.InjectedFault` (retryable).
    latency_rate:
        Probability that a call is delayed by ``latency_seconds`` first.
    latency_seconds:
        The injected delay; ``sleep`` is injectable so tests pass a fake.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.001,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not 0.0 <= transient_rate <= 1.0:
            raise ValueError(f"transient_rate must be in [0, 1], got {transient_rate!r}")
        if not 0.0 <= latency_rate <= 1.0:
            raise ValueError(f"latency_rate must be in [0, 1], got {latency_rate!r}")
        if latency_seconds < 0:
            raise ValueError(f"latency_seconds must be >= 0, got {latency_seconds!r}")
        self.seed = seed
        self.transient_rate = transient_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        self._injected: dict[str, int] = {}
        self._delayed: dict[str, int] = {}
        self._scripts: dict[str, dict[int, FaultSpec]] = {}

    # -- scripting ---------------------------------------------------------- #

    def script(
        self, site: str, *, at_call: int, error: FaultSpec | None = None
    ) -> None:
        """Schedule a fault at the ``at_call``-th (1-based) call to ``site``.

        ``error`` may be an exception instance or a factory; by default an
        :class:`~repro.exceptions.InjectedFault` (transient) is raised.
        Scripted faults fire exactly once and take precedence over the
        random transient/latency draws at that call.
        """
        if at_call < 1:
            raise ValueError(f"at_call is 1-based, got {at_call!r}")
        with self._lock:
            self._scripts.setdefault(site, {})[at_call] = (
                error
                if error is not None
                else InjectedFault(
                    f"scripted transient fault at {site!r} call {at_call}",
                    site=site,
                    call=at_call,
                )
            )

    def script_crash(self, site: str, *, at_call: int) -> None:
        """Schedule a :class:`~repro.exceptions.WorkerCrashed` at ``site``.

        Convenience for the mid-stream worker-crash scenario: the crash is
        *not* transient, so the retry layer propagates it and recovery must
        go through the streaming journal.
        """
        self.script(
            site,
            at_call=at_call,
            error=WorkerCrashed(
                f"worker killed at {site!r} call {at_call}", site=site, call=at_call
            ),
        )

    # -- the firing point --------------------------------------------------- #

    def fire(self, site: str, *, scripted_only: bool = False) -> None:
        """Count one call at ``site``; inject latency or raise per schedule.

        The order of precedence at each call: a scripted fault for this
        call number fires first; otherwise the site RNG draws latency, then
        a transient fault.  Draws happen under the injector lock so the
        schedule is a deterministic function of the per-site call order.
        ``scripted_only`` skips the random draws — for sites whose failure
        mode is a deliberate script (e.g. a worker crash at batch N), not a
        rate (a non-retryable site under a random rate would make the run
        unrecoverable by construction).
        """
        with self._lock:
            call = self._calls.get(site, 0) + 1
            self._calls[site] = call
            scripted = self._scripts.get(site, {}).pop(call, None)
            delay = 0.0
            error: BaseException | None = None
            if scripted is not None:
                self._injected[site] = self._injected.get(site, 0) + 1
                error = scripted() if callable(scripted) else scripted
            elif not scripted_only:
                rng = self._rngs.get(site)
                if rng is None:
                    rng = self._rngs[site] = random.Random(f"{self.seed}/{site}")
                if self.latency_rate and rng.random() < self.latency_rate:
                    self._delayed[site] = self._delayed.get(site, 0) + 1
                    delay = self.latency_seconds
                if self.transient_rate and rng.random() < self.transient_rate:
                    self._injected[site] = self._injected.get(site, 0) + 1
                    error = InjectedFault(
                        f"injected transient fault at {site!r} call {call}",
                        site=site,
                        call=call,
                    )
        # Sleep and raise outside the lock: a latency spike must not stall
        # every other site, and exception unwinding never holds the lock.
        if delay > 0:
            self._sleep(delay)
        if error is not None:
            raise error

    def calls(self, site: str) -> int:
        """How many calls ``site`` has seen."""
        with self._lock:
            return self._calls.get(site, 0)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site ``calls`` / ``injected`` / ``delayed`` counters."""
        with self._lock:
            sites = set(self._calls) | set(self._injected) | set(self._delayed)
            return {
                site: {
                    "calls": self._calls.get(site, 0),
                    "injected": self._injected.get(site, 0),
                    "delayed": self._delayed.get(site, 0),
                }
                for site in sorted(sites)
            }

    # -- wrappers ----------------------------------------------------------- #

    def wrap_backend(self, backend: Any, *, site: str = "backend") -> FaultyBackend:
        """Wrap an :class:`ExecutionBackend` so its calls pass through faults."""
        return FaultyBackend(backend, self, site=site)

    def register_chaos_backend(
        self,
        name: str,
        *,
        inner: str = "sqlite",
        site: str | None = None,
        **inner_options: object,
    ) -> str:
        """Register a named backend whose instances are fault-wrapped.

        The whole ``repro.api`` stack selects backends by registry name, so
        registering ``chaos-sqlite`` (say) lets a
        :class:`~repro.api.BackendConfig` route every tenant through the
        injector without any other code change.  Returns ``name``.
        """
        fault_site = site if site is not None else f"{name}.backend"

        def factory(database: Any, **options: object) -> FaultyBackend:
            merged = {**inner_options, **options}
            return FaultyBackend(
                create_backend(inner, database, **merged), self, site=fault_site
            )

        register_backend(name, factory, replace=True)
        return name

    def wrap_pool(self, pool: Any, *, site: str = "pool") -> FaultyNoisePool:
        """Wrap a :class:`PaillierNoisePool`'s refill path with faults."""
        return FaultyNoisePool(pool, self, site=site)

    def install_pool_faults(self, scheme: Any, *, site: str = "pool") -> FaultyNoisePool:
        """Replace ``scheme``'s noise pool with a fault-wrapped one in place.

        Works on any object exposing a ``_pool`` attribute (the
        :class:`~repro.crypto.hom.PaillierScheme` convention); returns the
        wrapper so tests can assert against its counters.
        """
        wrapped = self.wrap_pool(scheme._pool, site=site)
        scheme._pool = wrapped
        return wrapped

    def wrap_sink(
        self, sink: Any, *, site: str = "sink", scripted_only: bool = False
    ) -> FaultySink:
        """Wrap a :class:`StreamSink` so appends pass through fault firing.

        ``scripted_only`` restricts the site to scripted faults (crash
        scripts), exempting it from the injector's random transient rate —
        sink appends are not retried, so a random fault there would not
        model a recoverable failure.
        """
        return FaultySink(sink, self, site=site, scripted_only=scripted_only)


class FaultyBackend:
    """An :class:`ExecutionBackend` whose calls pass through a fault injector.

    Faults fire *before* the wrapped call, modelling a provider that fails
    the request without doing the work — so a retried call re-executes
    cleanly and results stay bit-for-bit equal to a fault-free run.  All
    other attributes (the sqlite handle the tamper harness reaches for,
    ``database``, ...) forward to the wrapped backend.
    """

    def __init__(self, inner: Any, injector: FaultInjector, *, site: str = "backend") -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self.name = getattr(inner, "name", "unknown")

    def execute(self, query: Any) -> Any:
        """Execute one query after passing the fault point."""
        self._injector.fire(f"{self._site}.execute")
        return self._inner.execute(query)

    def execute_many(self, queries: Iterable[Any]) -> Any:
        """Execute a batch after passing the fault point once."""
        self._injector.fire(f"{self._site}.execute_many")
        return self._inner.execute_many(queries)

    def close(self) -> None:
        """Close the wrapped backend (never faulted: cleanup must succeed)."""
        self._inner.close()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)


class FaultyNoisePool:
    """A noise-pool wrapper that faults the refill path only.

    ``take`` is deliberately left alone: it has an infallible on-demand
    fallback, so the interesting failure mode is the *refill* path — which
    is exactly what :class:`~repro.crypto.hom.NoiseRefillHandle`'s bounded
    auto-retry defends.  ``refill_async`` mirrors the real pool's dedup
    (one running refill at a time) but routes the worker through the
    faulted :meth:`refill`.
    """

    def __init__(self, inner: Any, injector: FaultInjector, *, site: str = "pool") -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self._async_lock = threading.Lock()
        self._refill_handle: Any = None

    def take(self) -> int:
        """Pop one blinding factor (never faulted; see class docstring)."""
        return self._inner.take()

    def ensure(self, count: int) -> None:
        """Precompute factors after passing the fault point."""
        self._injector.fire(f"{self._site}.ensure")
        self._inner.ensure(count)

    def refill(self) -> None:
        """Refill to target size after passing the fault point."""
        self._injector.fire(f"{self._site}.refill")
        self._inner.refill()

    def refill_async(self, *, retries: int = 2) -> Any:
        """Async refill through the *faulted* refill path, with auto-retry."""
        from repro.crypto.hom import NoiseRefillHandle

        with self._async_lock:
            if self._refill_handle is not None and self._refill_handle.is_alive():
                return self._refill_handle
            handle = NoiseRefillHandle(self.refill, retries=retries)
            self._refill_handle = handle
            handle.start()
        return handle

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)


class FaultySink:
    """A :class:`StreamSink` wrapper that faults each batch append.

    Scripting a :class:`~repro.exceptions.WorkerCrashed` at the N-th append
    models a worker thread dying *between* batches: the failed batch never
    reaches the sink (or its journal), exactly like a killed process, and
    the R1 experiment recovers it from the journal + a resubmission.
    """

    def __init__(
        self,
        inner: Any,
        injector: FaultInjector,
        *,
        site: str = "sink",
        scripted_only: bool = False,
    ) -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self._scripted_only = scripted_only

    def append(self, entries: Any) -> Any:
        """Append a batch after passing the fault point."""
        self._injector.fire(f"{self._site}.append", scripted_only=self._scripted_only)
        return self._inner.append(entries)

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)
