"""Command-line interface.

Everything the repository reproduces can be driven from the shell::

    python -m repro list                    # registered experiments
    python -m repro run T1 E1               # run selected experiments
    python -m repro run E3 --backend sqlite # choose the execution backend
    python -m repro run S2                  # integrity: tamper & rollback detection
    python -m repro run --all               # run every experiment
    python -m repro docs                    # regenerate EXPERIMENTS.md + ARCHITECTURE.md
    python -m repro run P3 --workers 4      # parallel/incremental pipeline experiment
    python -m repro run P4 --key-bits 1024 --pool-size 500
                                            # crypto fast-path experiment
    python -m repro report REPORT.md        # run everything, write measured report
    python -m repro table1                  # print the derived Table I
    python -m repro figure1                 # print the Figure 1 taxonomy
    python -m repro demo                    # 10-second installation check
    python -m repro serve --tenants 3       # multi-tenant server smoke run
    python -m repro lint --strict           # project-invariant static analysis
    python -m repro --version               # package version
    python -m repro encrypt-log plain.json encrypted.json --scheme token
                                            # encrypt a query-log JSON file

The ``encrypt-log`` command is the minimal "data owner" tool: it reads a log
saved with :meth:`repro.sql.log.QueryLog.save`, encrypts every query with the
chosen scheme under a passphrase-derived key, and writes the encrypted log —
the file a service provider would receive.

The ``serve`` command is a smoke run of the multi-tenant serving layer: it
registers N tenants (each with its own passphrase-derived keychain and
encrypted database), submits every tenant's generated workload to the shared
worker pool concurrently, and prints the per-tenant metrics table plus the
admission-queue counters — a ten-second proof that concurrent serving works
on this machine.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import repro
from repro import quick_demo
from repro.analysis.docs import write_all_docs, write_document
from repro.analysis.experiments import experiment_parameters, list_experiments, run_experiment
from repro.api import available_backends
from repro.analysis.report import generate_report
from repro.analysis.table1 import format_table1, render_figure1
from repro.core.schemes import StructureDpeScheme, TokenDpeScheme
from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme
from repro.crypto.keys import KeyChain, MasterKey
from repro.sql.log import QueryLog

_SCHEMES = {
    "token": TokenDpeScheme,
    "structure": StructureDpeScheme,
    "access-area": AccessAreaDpeScheme,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distance-Based Data Mining over Encrypted Data' (ICDE 2018)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. T1 E1 S1)")
    run_parser.add_argument("--all", action="store_true", help="run every registered experiment")
    run_parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=None,
        help="execution backend for experiments with a backend axis (E3, S1, P1, S2); "
        "others ignore the flag",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for experiments with a parallelism axis (P3); "
        "others ignore the flag",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        dest="chunk_size",
        help="pairs per parallel task for experiments with a parallelism axis (P3)",
    )
    run_parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        dest="pool_size",
        help="precomputed Paillier blinding factors for experiments with a "
        "crypto axis (P4); others ignore the flag",
    )
    run_parser.add_argument(
        "--key-bits",
        type=int,
        default=None,
        dest="key_bits",
        help="Paillier modulus size for experiments with a crypto axis (P4)",
    )

    docs_parser = subparsers.add_parser(
        "docs",
        help="render EXPERIMENTS.md and ARCHITECTURE.md from the source tree (deterministic)",
    )
    docs_parser.add_argument(
        "output", nargs="?", default=None,
        help="EXPERIMENTS.md output file ('-' for stdout); when neither this nor "
        "--architecture is given, both documents are written to their default paths",
    )
    docs_parser.add_argument(
        "--architecture", default=None, metavar="PATH",
        help="ARCHITECTURE.md output file ('-' for stdout)",
    )

    report_parser = subparsers.add_parser(
        "report", help="run every experiment and render the measured-results report"
    )
    report_parser.add_argument("output", nargs="?", help="output file (default: stdout)")

    subparsers.add_parser("table1", help="print the derived Table I")
    subparsers.add_parser("figure1", help="print the Figure 1 taxonomy")
    subparsers.add_parser("demo", help="run the quick installation check")

    encrypt_parser = subparsers.add_parser(
        "encrypt-log", help="encrypt a query-log JSON file with a DPE scheme"
    )
    encrypt_parser.add_argument("input", help="plaintext log (JSON, as written by QueryLog.save)")
    encrypt_parser.add_argument("output", help="where to write the encrypted log (JSON)")
    encrypt_parser.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default="token", help="DPE scheme to apply"
    )
    encrypt_parser.add_argument(
        "--passphrase",
        default=None,
        help="passphrase for key derivation (omit to generate a random key)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="smoke-run the multi-tenant server and print its metrics"
    )
    serve_parser.add_argument(
        "--tenants", type=int, default=3, help="number of tenants to register"
    )
    serve_parser.add_argument(
        "--queries", type=int, default=12, help="workload size per tenant"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="worker threads draining the queue"
    )
    serve_parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default="sqlite",
        help="execution backend of every tenant session",
    )
    serve_parser.add_argument(
        "--key-bits",
        type=int,
        default=256,
        dest="key_bits",
        help="Paillier modulus size per tenant (small default keeps the smoke run fast)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the project invariants statically (layering, lock "
        "discipline, determinism, oracle parity, exception policy)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to check (default: src examples)",
    )
    lint_parser.add_argument(
        "--strict", action="store_true", help="fail on warnings too (the CI mode)"
    )
    lint_parser.add_argument(
        "--rule", action="append", dest="rules", metavar="NAME",
        help="run only the named rule (repeatable; default: every rule)",
    )
    return parser


def _command_list() -> int:
    for experiment_id, title in list_experiments():
        print(f"{experiment_id:4s} {title}")
    return 0


def _command_run(
    experiment_ids: Sequence[str],
    run_all: bool,
    backend: str | None,
    workers: int | None = None,
    chunk_size: int | None = None,
    pool_size: int | None = None,
    key_bits: int | None = None,
) -> int:
    ids = [experiment_id for experiment_id, _ in list_experiments()] if run_all else list(experiment_ids)
    if not ids:
        print("nothing to run: pass experiment ids or --all", file=sys.stderr)
        return 2
    failures = 0
    # Cross-cutting axes are passed only to the experiments that declare them.
    axes = {
        "backend": backend,
        "workers": workers,
        "chunk_size": chunk_size,
        "pool_size": pool_size,
        "key_bits": key_bits,
    }
    for experiment_id in ids:
        supported = experiment_parameters(experiment_id)
        parameters = {
            name: value
            for name, value in axes.items()
            if value is not None and name in supported
        }
        outcome = run_experiment(experiment_id, **parameters)
        status = "ok " if outcome.success else "FAIL"
        print(f"[{status}] {outcome.experiment_id} — {outcome.title}")
        print(outcome.report)
        print()
        if not outcome.success:
            failures += 1
    return 1 if failures else 0


def _command_docs(output: str | None, architecture: str | None) -> int:
    return write_all_docs(experiments=output, architecture=architecture)


def _command_report(output: str | None) -> int:
    return write_document(generate_report(), output or "-")


def _command_encrypt_log(input_path: str, output_path: str, scheme_name: str, passphrase: str | None) -> int:
    log = QueryLog.load(input_path)
    master = MasterKey.from_passphrase(passphrase) if passphrase else MasterKey.generate()
    keychain = KeyChain(master)
    scheme = _SCHEMES[scheme_name](keychain)
    if isinstance(scheme, AccessAreaDpeScheme):
        scheme.fit(log)
    encrypted = scheme.encrypt_log(log)
    encrypted.save(output_path)
    print(f"encrypted {len(log)} queries with the {scheme_name} scheme -> {output_path}")
    if passphrase is None:
        print("note: a random master key was generated and NOT stored; "
              "use --passphrase if you need to reproduce the encryption")
    return 0


def _command_serve(
    tenants: int, queries: int, workers: int, backend: str, key_bits: int
) -> int:
    from repro.api import (
        CryptoConfig,
        BackendConfig,
        MiningServer,
        ServerConfig,
        ServiceConfig,
        WorkloadConfig,
        format_table,
    )

    if tenants < 1:
        print("serve needs at least one tenant", file=sys.stderr)
        return 2
    with MiningServer(ServerConfig(workers=workers)) as server:
        workloads = {}
        for index in range(tenants):
            name = f"tenant-{index + 1}"
            config = ServiceConfig(
                crypto=CryptoConfig(passphrase=name, paillier_bits=key_bits),
                backend=BackendConfig(name=backend),
                workload=WorkloadConfig(size=queries, seed=index + 1),
            )
            handle = server.add_tenant(name, config)
            workloads[name] = handle.service.generate_workload()
        futures = {
            name: server.submit(name, workload) for name, workload in workloads.items()
        }
        for future in futures.values():
            future.result()
        stats = server.stats()
        rows = [
            (
                tenant.tenant,
                tenant.key_fingerprint[:12],
                tenant.queries_served,
                tenant.queries_skipped,
                tenant.workloads_completed,
                tenant.failures,
            )
            for tenant in stats.tenants
        ]
        print(
            format_table(
                ["tenant", "key fingerprint", "served", "skipped", "workloads", "failures"],
                rows,
            )
        )
        queue = stats.queue
        print(
            f"\nqueue: submitted={queue.submitted} completed={queue.completed} "
            f"failed={queue.failed} rejected={queue.rejected} "
            f"high_water={queue.high_water}/{queue.max_pending} workers={stats.workers}"
        )
    return 0


def _command_lint(paths: Sequence[str], strict: bool, rules: Sequence[str] | None) -> int:
    """Run the project-invariant static checks and print the report."""
    from repro.analysis.staticcheck import format_report, run_lint
    from repro.exceptions import AnalysisError

    try:
        report = run_lint(paths, rules=rules)
    except AnalysisError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(format_report(report, strict=strict))
    return report.exit_code(strict=strict)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(
            arguments.experiments,
            arguments.all,
            arguments.backend,
            arguments.workers,
            arguments.chunk_size,
            arguments.pool_size,
            arguments.key_bits,
        )
    if arguments.command == "docs":
        return _command_docs(arguments.output, arguments.architecture)
    if arguments.command == "report":
        return _command_report(arguments.output)
    if arguments.command == "table1":
        print(format_table1())
        return 0
    if arguments.command == "figure1":
        print(render_figure1())
        return 0
    if arguments.command == "demo":
        print(quick_demo())
        return 0
    if arguments.command == "encrypt-log":
        return _command_encrypt_log(
            arguments.input, arguments.output, arguments.scheme, arguments.passphrase
        )
    if arguments.command == "lint":
        return _command_lint(arguments.paths, arguments.strict, arguments.rules)
    if arguments.command == "serve":
        return _command_serve(
            arguments.tenants,
            arguments.queries,
            arguments.workers,
            arguments.backend,
            arguments.key_bits,
        )
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro.cli`
    raise SystemExit(main())
