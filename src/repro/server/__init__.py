"""Multi-tenant serving layer: N tenants, one shared worker pool.

The package behind :class:`~repro.api.MiningServer`: a threaded server
multiplexing many tenants — each with its own
:class:`~repro.api.ServiceConfig`, keychain and Paillier noise pool — over a
bounded admission queue and a shared pool of worker threads.  Four modules:

* :mod:`repro.server.server` — the :class:`MiningServer` itself (tenant
  registry, worker pool, submit/stream, lifecycle);
* :mod:`repro.server.tenant` — :class:`TenantHandle`, one tenant's service,
  shared session and counters;
* :mod:`repro.server.admission` — :class:`AdmissionQueue`, the bounded
  queue with backpressure and :class:`~repro.api.errors.ServerOverloaded`
  rejection;
* :mod:`repro.server.stats` — the typed :class:`ServerStats` /
  :class:`TenantStats` / :class:`QueueStats` snapshots feeding the metrics
  endpoint.

Everything here is re-exported through :mod:`repro.api`; embedding code
should import from there.
"""

# Load the api package first: repro.api re-exports this package's classes
# at the *end* of its __init__, so initialising it up front means the
# submodule imports below always see fully-initialised api submodules
# regardless of whether "import repro.api" or "import repro.server" runs
# first.
import repro.api  # noqa: F401  (import-order anchor, see above)

from repro.server.admission import AdmissionQueue
from repro.server.server import MiningServer
from repro.server.stats import QueueStats, ServerStats, TenantStats
from repro.server.tenant import TenantHandle

__all__ = [
    "AdmissionQueue",
    "MiningServer",
    "QueueStats",
    "ServerStats",
    "TenantHandle",
    "TenantStats",
]
