"""Bounded admission control for the multi-tenant server.

The server must not buffer work without limit: an unbounded queue hides
overload until memory runs out, and gives callers no signal to shed load.
:class:`AdmissionQueue` wraps a ``queue.Queue(maxsize=...)`` with the two
behaviours the serving layer needs:

* **backpressure** — a blocking :meth:`submit` waits for a slot (optionally
  up to a timeout), which is what :meth:`~repro.api.MiningServer.stream`
  uses so a fast producer is throttled to the workers' pace;
* **rejection** — a non-blocking submit on a full queue raises
  :class:`~repro.api.errors.ServerOverloaded` immediately, making overload
  an explicit, catchable signal instead of silent latency.

The queue also keeps the admission counters (submitted, rejected,
completed, failed, high-water depth) surfaced through
:class:`~repro.server.stats.QueueStats`; counter updates take an internal
lock so concurrent producers and workers never lose increments.
"""

from __future__ import annotations

import queue
import threading
from typing import Generic, TypeVar

from repro.api.errors import ServerOverloaded
from repro.server.stats import QueueStats

_T = TypeVar("_T")


class AdmissionQueue(Generic[_T]):
    """A bounded task queue with explicit backpressure and rejection.

    ``max_pending`` bounds the number of admitted-but-undrained items.
    Producers call :meth:`submit`; worker threads call :meth:`take` and then
    exactly one of :meth:`mark_completed`/:meth:`mark_failed` per taken
    item, which keeps the outcome counters in :meth:`stats` exact.
    """

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ServerOverloaded(
                f"admission queue bound must be at least 1, got {max_pending}"
            )
        self._max_pending = max_pending
        self._queue: queue.Queue[_T] = queue.Queue(maxsize=max_pending)
        self._lock = threading.Lock()
        self._submitted = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._completed = 0  # guarded-by: _lock
        self._failed = 0  # guarded-by: _lock
        self._high_water = 0  # guarded-by: _lock

    @property
    def max_pending(self) -> int:
        """The queue bound (admitted-but-undrained items)."""
        return self._max_pending

    def submit(
        self,
        item: _T,
        *,
        wait: bool = True,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> None:
        """Admit ``item``, or raise :class:`~repro.api.errors.ServerOverloaded`.

        Wait/timeout semantics:

        * ``wait=True, timeout=None`` (the default) — a full queue blocks
          the caller indefinitely; admission is guaranteed once a worker
          frees a slot.  This is the backpressure contract streaming uses.
        * ``wait=True, timeout=t`` — block at most ``t`` seconds, then
          reject.  ``t <= 0`` degenerates to an immediate full-queue check.
        * ``wait=False`` — never block; a full queue rejects immediately
          (``timeout`` is ignored on this path).

        Every rejection raises :class:`~repro.api.errors.ServerOverloaded`
        carrying the queue depth at rejection time (``queue_depth``) and, if
        given, the submitting ``tenant`` — callers shedding load can report
        *who* was turned away and *how far behind* the workers were.  Each
        rejection also counts once in :meth:`stats`.  A blocked submit holds
        no internal lock, so concurrent :meth:`take`/``mark_*`` calls — and
        therefore a concurrent server close — proceed while it waits.
        """
        try:
            if wait:
                self._queue.put(item, timeout=timeout)
            else:
                self._queue.put_nowait(item)
        except queue.Full:
            with self._lock:
                self._rejected += 1
            detail = (
                f"admission queue is full ({self._max_pending} pending)"
                if not wait
                else f"admission queue stayed full for {timeout}s ({self._max_pending} pending)"
            )
            if tenant is not None:
                detail = f"tenant {tenant!r}: {detail}"
            raise ServerOverloaded(
                detail, queue_depth=self._queue.qsize(), tenant=tenant
            ) from None
        with self._lock:
            self._submitted += 1
            depth = self._queue.qsize()
            if depth > self._high_water:
                self._high_water = depth

    def take(self, timeout: float | None = None) -> _T | None:
        """Pop the next admitted item, or ``None`` after ``timeout`` seconds.

        The ``None`` return lets worker loops poll with a short timeout and
        re-check their stop event instead of blocking forever on an idle
        queue.
        """
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def mark_completed(self) -> None:
        """Record that one taken item finished successfully."""
        with self._lock:
            self._completed += 1

    def mark_failed(self) -> None:
        """Record that one taken item raised."""
        with self._lock:
            self._failed += 1

    def stats(self) -> QueueStats:
        """A consistent snapshot of the admission counters."""
        with self._lock:
            return QueueStats(
                max_pending=self._max_pending,
                pending=self._queue.qsize(),
                submitted=self._submitted,
                rejected=self._rejected,
                completed=self._completed,
                failed=self._failed,
                high_water=self._high_water,
            )


__all__ = ["AdmissionQueue"]
