"""Per-tenant handles of the multi-tenant server.

A :class:`TenantHandle` is one tenant's slice of a
:class:`~repro.api.MiningServer`: it owns the tenant's
:class:`~repro.api.EncryptedMiningService` (and therefore the tenant's
keychain, Paillier noise pool and encrypted database snapshot), a lazily
opened shared default session, and the serving counters surfaced through
:class:`~repro.server.stats.TenantStats`.

Isolation is structural: every tenant gets its *own* service, so key
material, ciphertexts and noise-pool factors cannot cross tenant boundaries
by construction — the property tests in ``tests/server`` assert this on
:meth:`~repro.crypto.keys.KeyChain.fingerprint` and the per-tenant
``crypto_stats()`` accounting.  What tenants share is only the execution
machinery (worker threads and, per backend choice, the engine family).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from repro.api.errors import DeadlineExceeded, ServerError
from repro.api.results import ExposureReport, MiningResult, WorkloadResult
from repro.api.service import EncryptedMiningService, ServiceSession
from repro.core.dpe import DistanceMeasure, LogContext
from repro.cryptdb.proxy import StreamSink
from repro.reliability.policy import CircuitBreaker, Deadline
from repro.server.stats import TenantStats
from repro.sql.ast import Query
from repro.sql.log import QueryLog


def _exposure_to_dict(report: ExposureReport) -> dict[str, object]:
    """Flatten a typed exposure report to JSON-shaped per-column entries."""
    return {
        f"{entry.table}.{entry.column}": {
            "onions": entry.onion_layers,
            "weakest_class": entry.weakest_class.value,
            "security_level": entry.security_level,
            "cells_verified": entry.cells_verified,
            "tamper_detected": entry.tamper_detected,
        }
        for entry in report.columns
    }


class TenantHandle:
    """One tenant: its service, its shared default session, its counters.

    Workloads submitted through the server run on the tenant's shared
    default session (opened lazily on first use), so one tenant's
    adjustments and skip bookkeeping accumulate in one place exactly as a
    single-caller service would; the handle's re-entrant lock plus the
    session's own lock make concurrent worker threads safe.  Callers that
    want genuinely concurrent sessions *within* one tenant open extra ones
    via :meth:`open_session`.
    """

    def __init__(
        self,
        name: str,
        service: EncryptedMiningService,
        *,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        """Wrap ``service`` as tenant ``name`` (built by the server).

        ``breaker`` is the tenant's own :class:`~repro.api.CircuitBreaker`
        (built by the server when the config enables one): the server asks
        it for admission via :meth:`check_admission`, and every served task
        reports its outcome back so a persistently failing tenant trips
        *its* circuit without affecting neighbours.
        """
        self._name = name
        self._service = service
        self._breaker = breaker
        self._lock = threading.RLock()
        self._session: ServiceSession | None = None  # guarded-by: _lock
        self._queries_served = 0  # guarded-by: _lock
        self._queries_skipped = 0  # guarded-by: _lock
        self._batches_streamed = 0  # guarded-by: _lock
        self._workloads_completed = 0  # guarded-by: _lock
        self._mining_runs = 0  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # -- introspection --------------------------------------------------- #

    @property
    def name(self) -> str:
        """The tenant's registration name."""
        return self._name

    @property
    def service(self) -> EncryptedMiningService:
        """The tenant's own service façade (keychain, proxy, noise pool)."""
        return self._service

    @property
    def key_fingerprint(self) -> str:
        """Public identifier of the tenant's key material (isolation probe)."""
        return self._service.keychain.fingerprint()

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The tenant's circuit breaker (``None`` when breakers are off)."""
        return self._breaker

    @property
    def breaker_state(self) -> str:
        """``"closed"``/``"open"``/``"half_open"``, or ``"disabled"``."""
        return self._breaker.state if self._breaker is not None else "disabled"

    def crypto_stats(self) -> dict[str, object]:
        """The tenant's crypto fast-path counters (noise pool, OPE caches)."""
        return self._service.crypto_stats()

    def exposure_report(self) -> ExposureReport:
        """The tenant's typed per-column exposure after workloads served."""
        return self._service.exposure_report()

    # -- serving ---------------------------------------------------------- #

    def check_admission(self) -> None:
        """Ask the tenant's breaker for admission (no-op when disabled).

        An open circuit raises :class:`~repro.api.errors.CircuitOpen`
        *before* the task consumes an admission-queue slot, so a tenant in
        cooldown sheds load at the door instead of wasting worker time.
        """
        if self._breaker is not None:
            self._breaker.allow()

    def _record_outcome(self, *, failed: bool) -> None:
        """Report one served task's outcome to the counters and the breaker."""
        with self._lock:
            if failed:
                self._failures += 1
        if self._breaker is not None:
            if failed:
                self._breaker.record_failure()
            else:
                self._breaker.record_success()

    def session(self) -> ServiceSession:
        """The tenant's shared default session (opened lazily, then cached)."""
        with self._lock:
            if self._closed:
                raise ServerError(f"tenant {self._name!r} has been closed")
            if self._session is None:
                self._session = self._service.open_session()
            return self._session

    def open_session(
        self, *, backend: str | None = None, on_unsupported: str | None = None
    ) -> ServiceSession:
        """Open a fresh, independent session over the tenant's database."""
        return self._service.open_session(backend=backend, on_unsupported=on_unsupported)

    def run_workload(
        self,
        queries: QueryLog | Iterable[Query | str],
        *,
        deadline: Deadline | None = None,
    ) -> WorkloadResult:
        """Serve one workload on the shared default session, updating counters.

        This is what the server's worker threads execute per submitted
        task; failures are counted (and reported to the breaker) and
        re-raised — the server stores them on the task's future.
        ``deadline`` is the budget stamped at admission: the session checks
        it before every query, so a task that waited out its budget in the
        queue cancels cooperatively instead of running stale.
        """
        session = self.session()
        try:
            result = session.run(queries, deadline=deadline)
        except BaseException:
            self._record_outcome(failed=True)
            raise
        self._record_outcome(failed=False)
        with self._lock:
            self._queries_served += result.queries_served
            self._queries_skipped += result.queries_skipped
            self._workloads_completed += 1
        return result

    def stream(
        self,
        queries: QueryLog | Iterable[Query | str],
        *,
        into: StreamSink,
        deadline: Deadline | None = None,
    ) -> tuple[Query, ...]:
        """Stream one batch into ``into`` via the shared default session.

        ``deadline`` follows :meth:`run_workload`'s contract; the session
        additionally re-checks it immediately before publishing to ``into``,
        so an expired batch never half-lands in the sink.
        """
        session = self.session()
        try:
            encrypted = session.stream(queries, into=into, deadline=deadline)
        except BaseException:
            self._record_outcome(failed=True)
            raise
        self._record_outcome(failed=False)
        with self._lock:
            self._batches_streamed += 1
            self._queries_served += len(encrypted)
        return encrypted

    def mine(
        self,
        context: LogContext | QueryLog | Iterable[Query | str],
        *,
        measure: DistanceMeasure | None = None,
        deadline: Deadline | None = None,
    ) -> MiningResult:
        """Mine a log through the tenant's service, updating counters.

        Delegates to :meth:`~repro.api.EncryptedMiningService.mine`, so the
        tenant's :class:`~repro.api.MiningConfig` decides between the exact
        matrix pipeline and the pivot-indexed sublinear path
        (``approx=True`` — the result then carries ``candidate_stats``).
        ``deadline`` is checked once before the (monolithic) mining run
        starts: a run whose budget expired while queued is cancelled rather
        than started.
        """
        with self._lock:
            if self._closed:
                raise ServerError(f"tenant {self._name!r} has been closed")
        try:
            if deadline is not None:
                try:
                    deadline.check(f"mine for tenant {self._name!r}")
                except DeadlineExceeded:
                    self._service.reliability_stats.count_deadline_exceeded()
                    raise
            result = self._service.mine(context, measure=measure)
        except BaseException:
            self._record_outcome(failed=True)
            raise
        self._record_outcome(failed=False)
        with self._lock:
            self._mining_runs += 1
        return result

    def integrity_stats(self) -> dict[str, object]:
        """The tenant's integrity snapshot: auth flag, counters, checkpoint.

        ``cells_verified``/``tamper_detected`` sum the per-column counters of
        the exposure report; ``checkpoint_length``/``checkpoint_head`` echo
        the shared session's last signed log checkpoint (``None`` when no
        authenticated stream has run yet, or authentication is off).
        """
        report = self.exposure_report()
        with self._lock:
            session = self._session
        checkpoint = session.last_checkpoint if session is not None else None
        return {
            "authenticated": self._service.config.crypto.authenticate,
            "cells_verified": sum(entry.cells_verified for entry in report.columns),
            "tamper_detected": sum(entry.tamper_detected for entry in report.columns),
            "checkpoint_length": checkpoint.length if checkpoint is not None else None,
            "checkpoint_head": checkpoint.head if checkpoint is not None else None,
        }

    def reliability_stats(self) -> dict[str, object]:
        """The tenant's fault-tolerance snapshot: retry counters + breaker.

        ``retries``/``gave_up``/``deadline_exceeded``/``recoveries`` come
        from the tenant service's shared
        :class:`~repro.api.ReliabilityStats`; ``breaker_state`` is the
        tenant circuit's current state (``"disabled"`` when the config has
        no breaker).
        """
        snapshot: dict[str, object] = dict(self._service.reliability_stats.snapshot())
        snapshot["breaker_state"] = self.breaker_state
        return snapshot

    def stats(self) -> TenantStats:
        """A snapshot of this tenant's counters, crypto stats and exposure."""
        with self._lock:
            served = self._queries_served
            skipped = self._queries_skipped
            streamed = self._batches_streamed
            completed = self._workloads_completed
            mined = self._mining_runs
            failures = self._failures
        return TenantStats(
            tenant=self._name,
            key_fingerprint=self.key_fingerprint,
            queries_served=served,
            queries_skipped=skipped,
            batches_streamed=streamed,
            workloads_completed=completed,
            mining_runs=mined,
            failures=failures,
            crypto=self.crypto_stats(),
            exposure=_exposure_to_dict(self.exposure_report()),
            integrity=self.integrity_stats(),
            reliability=self.reliability_stats(),
        )

    def close(self) -> None:
        """Close the shared default session (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._session is not None:
                self._session.close()
                self._session = None


__all__ = ["TenantHandle"]
