"""Typed statistics of the multi-tenant serving layer.

Three frozen dataclasses mirror the three levels of the server:

* :class:`QueueStats` — counters of the bounded admission queue (pending
  depth, submit/reject/complete totals, high-water mark);
* :class:`TenantStats` — one tenant's serving counters plus the snapshots
  of its crypto layer (:meth:`~repro.api.EncryptedMiningService.crypto_stats`)
  and per-column exposure
  (:meth:`~repro.api.EncryptedMiningService.exposure_report`);
* :class:`ServerStats` — the whole server: worker count, queue, and one
  :class:`TenantStats` per tenant.

Every type has a ``to_dict()`` returning plain JSON-serialisable data —
:meth:`ServerStats.to_dict` is the payload of the server's metrics endpoint
(:meth:`~repro.api.MiningServer.metrics`), following the same
"plain data out" convention as the config objects' ``to_dict``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.errors import ServerError


@dataclass(frozen=True)
class QueueStats:
    """Counters of the server's bounded admission queue.

    ``pending`` is the queue depth at snapshot time and ``high_water`` the
    largest depth observed; ``submitted``/``rejected`` count admission
    decisions (a rejection is the :class:`~repro.api.errors.ServerOverloaded`
    backpressure signal) and ``completed``/``failed`` count drained tasks by
    outcome.
    """

    max_pending: int
    pending: int
    submitted: int
    rejected: int
    completed: int
    failed: int
    high_water: int

    def to_dict(self) -> dict[str, int]:
        """The counters as a plain JSON-serialisable dict."""
        return {
            "max_pending": self.max_pending,
            "pending": self.pending,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "high_water": self.high_water,
        }


@dataclass(frozen=True)
class TenantStats:
    """One tenant's serving counters and crypto/exposure snapshots.

    ``key_fingerprint`` is the tenant keychain's public identifier
    (:meth:`~repro.crypto.keys.KeyChain.fingerprint`) — two tenants sharing
    one would be sharing key material, which the isolation tests forbid.
    ``crypto`` is the tenant's
    :meth:`~repro.api.EncryptedMiningService.crypto_stats` snapshot and
    ``exposure`` its per-column exposure, both already JSON-shaped.
    ``integrity`` summarises the tenant's integrity layer: whether
    authentication is on, the summed ``cells_verified``/``tamper_detected``
    counters, and the length/head of the last signed log checkpoint (both
    ``None`` before any authenticated stream).
    ``reliability`` summarises the tenant's fault-tolerance layer: the
    ``retries``/``gave_up``/``deadline_exceeded``/``recoveries`` counters of
    the tenant service's :class:`~repro.api.ReliabilityStats` plus the
    tenant circuit's ``breaker_state`` (``"disabled"`` when no breaker is
    configured).
    """

    tenant: str
    key_fingerprint: str
    queries_served: int
    queries_skipped: int
    batches_streamed: int
    workloads_completed: int
    mining_runs: int
    failures: int
    crypto: dict[str, object]
    exposure: dict[str, object]
    integrity: dict[str, object]
    reliability: dict[str, object]

    def to_dict(self) -> dict[str, object]:
        """The tenant snapshot as a plain JSON-serialisable dict."""
        return {
            "tenant": self.tenant,
            "key_fingerprint": self.key_fingerprint,
            "queries_served": self.queries_served,
            "queries_skipped": self.queries_skipped,
            "batches_streamed": self.batches_streamed,
            "workloads_completed": self.workloads_completed,
            "mining_runs": self.mining_runs,
            "failures": self.failures,
            "crypto": self.crypto,
            "exposure": self.exposure,
            "integrity": self.integrity,
            "reliability": self.reliability,
        }


@dataclass(frozen=True)
class ServerStats:
    """A consistent snapshot of the whole server.

    ``workers`` is the configured worker-thread count, ``queue`` the
    admission-queue counters and ``tenants`` one :class:`TenantStats` per
    registered tenant, in registration order.
    """

    workers: int
    queue: QueueStats
    tenants: tuple[TenantStats, ...]

    def for_tenant(self, name: str) -> TenantStats:
        """The stats of one tenant; unknown names fail loudly."""
        for tenant in self.tenants:
            if tenant.tenant == name:
                return tenant
        known = [tenant.tenant for tenant in self.tenants]
        raise ServerError(f"no stats for tenant {name!r}; known tenants: {known}")

    def to_dict(self) -> dict[str, object]:
        """The metrics payload: everything as plain JSON-serialisable data."""
        return {
            "workers": self.workers,
            "queue": self.queue.to_dict(),
            "tenants": {tenant.tenant: tenant.to_dict() for tenant in self.tenants},
        }


__all__ = ["QueueStats", "ServerStats", "TenantStats"]
