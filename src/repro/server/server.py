"""The threaded multi-tenant :class:`MiningServer`.

The deployment the paper's threat model assumes — many data owners, one
honest-but-curious provider — needs a long-running serving layer, not a
single-caller façade.  :class:`MiningServer` provides it:

* **N tenants, isolated key material** — each
  :meth:`~MiningServer.add_tenant` builds a full
  :class:`~repro.api.EncryptedMiningService` (own
  :class:`~repro.api.ServiceConfig`, own keychain, own Paillier noise pool)
  and encrypts the tenant's database up front, wrapped in a
  :class:`~repro.server.tenant.TenantHandle`;
* **shared execution** — a fixed pool of worker threads drains one bounded
  :class:`~repro.server.admission.AdmissionQueue`; workloads from different
  tenants run concurrently, workloads of one tenant serialize on the
  tenant's session lock;
* **admission control** — :meth:`submit` admits a workload and returns a
  ``concurrent.futures.Future``; a full queue blocks (backpressure) or, with
  ``wait=False``, raises :class:`~repro.api.errors.ServerOverloaded`;
  :meth:`stream` always takes the blocking path, throttling producers to
  the workers' pace;
* **fault tolerance** — per the config's
  :class:`~repro.api.ReliabilityConfig`: retries with backoff inside each
  tenant's sessions, a per-tenant :class:`~repro.api.CircuitBreaker`
  checked at admission (an open circuit raises
  :class:`~repro.api.errors.CircuitOpen` before a queue slot is consumed),
  and a :class:`~repro.api.Deadline` stamped on every task at admission so
  queued-out-of-budget work cancels cooperatively with
  :class:`~repro.api.errors.DeadlineExceeded`;
* **metrics** — :meth:`stats` returns a typed
  :class:`~repro.server.stats.ServerStats` (queue counters plus per-tenant
  serving/crypto/exposure snapshots) and :meth:`metrics` the same as a
  JSON-serialisable payload.

The ``P5`` benchmark (``benchmarks/bench_p5_concurrent.py``) gates the
point of the thread pool: N concurrent tenants must sustain at least twice
the throughput of the same N served sequentially, with every tenant's
results bit-for-bit equal to a sequential reference run.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from concurrent.futures import Future

from repro.api.config import ServerConfig, ServiceConfig
from repro.api.errors import ConfigError, ServerError
from repro.api.results import WorkloadResult
from repro.api.service import EncryptedMiningService
from repro.core.dpe import LogContext
from repro.crypto.keys import KeyChain
from repro.cryptdb.proxy import JoinGroupSpec, StreamSink
from repro.db.database import Database
from repro.reliability.policy import CircuitBreaker, Deadline
from repro.server.admission import AdmissionQueue
from repro.server.stats import ServerStats
from repro.server.tenant import TenantHandle
from repro.sql.ast import Query
from repro.sql.log import QueryLog

#: Poll interval of idle worker threads (seconds between stop-event checks).
_WORKER_POLL_SECONDS = 0.05

#: One admitted unit of work: the future to resolve and the thunk to run.
_Task = tuple["Future[object]", Callable[[], object]]


class MiningServer:
    """A threaded server multiplexing N tenants over shared workers.

    Construction is cheap (no threads yet); workers start lazily on the
    first :meth:`submit`/:meth:`stream` or explicitly via :meth:`start`.
    The server is a context manager — leaving the ``with`` block closes it:
    workers are joined, undrained tasks are cancelled, and every tenant's
    session is released.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        """Build the server from ``config`` (defaults to ``ServerConfig()``)."""
        if config is None:
            config = ServerConfig()
        if not isinstance(config, ServerConfig):
            raise ConfigError(f"MiningServer expects a ServerConfig, got {config!r}")
        self._config = config
        self._queue: AdmissionQueue[_Task] = AdmissionQueue(config.max_pending)
        self._tenants: dict[str, TenantHandle] = {}
        self._lock = threading.RLock()
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._closed = False

    # -- introspection --------------------------------------------------- #

    @property
    def config(self) -> ServerConfig:
        """The concurrency configuration this server was built from."""
        return self._config

    @property
    def is_running(self) -> bool:
        """Whether the worker pool has been started and not yet closed."""
        with self._lock:
            return self._started and not self._closed

    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names, in registration order."""
        with self._lock:
            return tuple(self._tenants)

    def tenant(self, name: str) -> TenantHandle:
        """The handle of tenant ``name``; unknown names fail loudly."""
        with self._lock:
            handle = self._tenants.get(name)
            if handle is None:
                raise ServerError(
                    f"unknown tenant {name!r}; registered tenants: {sorted(self._tenants)}"
                )
            return handle

    # -- tenant lifecycle -------------------------------------------------- #

    def add_tenant(
        self,
        name: str,
        config: ServiceConfig | None = None,
        *,
        keychain: KeyChain | None = None,
        database: Database | None = None,
        join_groups: Iterable[JoinGroupSpec] = (),
    ) -> TenantHandle:
        """Register tenant ``name``: build its service and encrypt its database.

        ``config`` is the tenant's own :class:`~repro.api.ServiceConfig`
        (defaults apply per tenant — two tenants never share one service);
        ``keychain`` overrides key derivation exactly as for
        :class:`~repro.api.EncryptedMiningService`; ``database`` is the
        tenant's plaintext database (defaults to the config's generated
        workload-profile database).  Registration encrypts up front, so a
        registered tenant is immediately servable.
        """
        with self._lock:
            if self._closed:
                raise ServerError("cannot add a tenant to a closed server")
            if name in self._tenants:
                raise ServerError(
                    f"tenant {name!r} is already registered; "
                    f"registered tenants: {sorted(self._tenants)}"
                )
        service = EncryptedMiningService(config, keychain=keychain, join_groups=join_groups)
        plain = database if database is not None else service.build_database()
        service.encrypt(plain)
        handle = TenantHandle(name, service, breaker=self._build_breaker(name))
        with self._lock:
            if self._closed:
                raise ServerError("cannot add a tenant to a closed server")
            if name in self._tenants:
                raise ServerError(f"tenant {name!r} was registered concurrently")
            self._tenants[name] = handle
        return handle

    def _build_breaker(self, tenant: str) -> CircuitBreaker | None:
        """The tenant's own circuit breaker per the reliability config."""
        reliability = self._config.reliability
        if not reliability.breaker_enabled:
            return None
        return CircuitBreaker(
            failure_rate_threshold=reliability.breaker_failure_rate,
            min_calls=reliability.breaker_min_calls,
            window=reliability.breaker_window,
            cooldown_seconds=reliability.breaker_cooldown_seconds,
            tenant=tenant,
        )

    def _stamp_deadline(self, deadline: Deadline | None) -> Deadline | None:
        """The task's deadline: the caller's, else one from ``deadline_ms``.

        Stamped at admission, so time a task spends queued counts against
        its budget — a task that waits out its budget is cancelled
        cooperatively when a worker finally picks it up, instead of running
        stale.
        """
        if deadline is not None:
            return deadline
        budget_ms = self._config.reliability.deadline_ms
        if budget_ms is None:
            return None
        return Deadline.after_ms(budget_ms)

    # -- worker pool ------------------------------------------------------- #

    def start(self) -> None:
        """Start the worker pool (idempotent; :meth:`submit` auto-starts)."""
        with self._lock:
            if self._closed:
                raise ServerError("cannot start a closed server")
            if self._started:
                return
            self._started = True
            for index in range(self._config.workers):
                worker = threading.Thread(
                    target=self._worker_loop, name=f"mining-server-worker-{index}", daemon=True
                )
                self._workers.append(worker)
                worker.start()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            task = self._queue.take(timeout=_WORKER_POLL_SECONDS)
            if task is None:
                continue
            self._run_task(task)

    def _run_task(self, task: _Task) -> None:
        future, thunk = task
        if not future.set_running_or_notify_cancel():
            # Cancelled while queued; it consumed a slot, so account for it.
            self._queue.mark_completed()
            return
        try:
            result = thunk()
        except BaseException as error:  # noqa: BLE001 - stored on the future
            self._queue.mark_failed()
            future.set_exception(error)
        else:
            self._queue.mark_completed()
            future.set_result(result)

    # -- submission -------------------------------------------------------- #

    def _admit(
        self,
        thunk: Callable[[], object],
        *,
        wait: bool,
        timeout: float | None,
        tenant: str | None = None,
    ) -> "Future[object]":
        with self._lock:
            if self._closed:
                raise ServerError("cannot submit to a closed server")
        self.start()
        future: "Future[object]" = Future()
        effective = timeout if timeout is not None else self._config.submit_timeout
        self._queue.submit((future, thunk), wait=wait, timeout=effective, tenant=tenant)
        return future

    def submit(
        self,
        tenant: str,
        queries: QueryLog | Iterable[Query | str],
        *,
        wait: bool = True,
        timeout: float | None = None,
        deadline: Deadline | None = None,
    ) -> "Future[object]":
        """Admit one workload for ``tenant`` and return its future.

        The future resolves to the tenant's
        :class:`~repro.api.WorkloadResult` (or carries the serving
        exception).  A full queue blocks for ``timeout`` seconds (default:
        the config's ``submit_timeout``); ``wait=False`` turns a full queue
        into an immediate :class:`~repro.api.errors.ServerOverloaded`
        carrying the queue depth and tenant.  When the tenant's circuit
        breaker is open, admission fails up front with
        :class:`~repro.api.errors.CircuitOpen`.  ``deadline`` (default: one
        built from the config's ``deadline_ms``, if set) is stamped at
        admission and checked cooperatively while the workload runs;
        exceeding it resolves the future with
        :class:`~repro.api.errors.DeadlineExceeded`.
        """
        handle = self.tenant(tenant)
        handle.check_admission()
        effective = self._stamp_deadline(deadline)
        return self._admit(
            lambda: handle.run_workload(queries, deadline=effective),
            wait=wait,
            timeout=timeout,
            tenant=tenant,
        )

    def run_workload(
        self,
        tenant: str,
        queries: QueryLog | Iterable[Query | str],
        *,
        timeout: float | None = None,
    ) -> WorkloadResult:
        """Submit one workload and block for its result (convenience path)."""
        result = self.submit(tenant, queries, wait=True, timeout=timeout).result()
        assert isinstance(result, WorkloadResult)
        return result

    def stream(
        self,
        tenant: str,
        queries: QueryLog | Iterable[Query | str],
        *,
        into: StreamSink,
        timeout: float | None = None,
        deadline: Deadline | None = None,
    ) -> "Future[object]":
        """Admit one streamed batch for ``tenant`` (always with backpressure).

        The batch is rewritten on a worker thread and appended to ``into``
        (a streaming log or incremental mining matrix); the future resolves
        to the tuple of encrypted queries that entered the sink.  Streaming
        always takes the blocking admission path — a full queue throttles
        the producer to the workers' pace rather than rejecting, which is
        the backpressure contract of admission control.  Breaker and
        deadline semantics follow :meth:`submit`.
        """
        handle = self.tenant(tenant)
        handle.check_admission()
        effective = self._stamp_deadline(deadline)
        return self._admit(
            lambda: handle.stream(queries, into=into, deadline=effective),
            wait=True,
            timeout=timeout,
            tenant=tenant,
        )

    def mine(
        self,
        tenant: str,
        context: LogContext | QueryLog | Iterable[Query | str],
        *,
        wait: bool = True,
        timeout: float | None = None,
        deadline: Deadline | None = None,
    ) -> "Future[object]":
        """Admit one mining run for ``tenant`` and return its future.

        The future resolves to the tenant's
        :class:`~repro.api.MiningResult`; the tenant's own
        :class:`~repro.api.MiningConfig` decides between the exact matrix
        pipeline and the pivot-indexed sublinear path (``approx=True``).
        Admission, breaker and deadline semantics follow :meth:`submit`'s
        contract: a full queue blocks for ``timeout`` seconds, or rejects
        immediately with ``wait=False``; the deadline is checked once
        before the mining run starts.
        """
        handle = self.tenant(tenant)
        handle.check_admission()
        effective = self._stamp_deadline(deadline)
        return self._admit(
            lambda: handle.mine(context, deadline=effective),
            wait=wait,
            timeout=timeout,
            tenant=tenant,
        )

    # -- metrics ----------------------------------------------------------- #

    def stats(self) -> ServerStats:
        """A typed snapshot: workers, queue counters, one entry per tenant."""
        with self._lock:
            handles = tuple(self._tenants.values())
        return ServerStats(
            workers=self._config.workers,
            queue=self._queue.stats(),
            tenants=tuple(handle.stats() for handle in handles),
        )

    def metrics(self) -> dict[str, object]:
        """The metrics endpoint: :meth:`stats` as a JSON-serialisable payload."""
        return self.stats().to_dict()

    # -- lifecycle --------------------------------------------------------- #

    def close(self) -> None:
        """Stop workers, cancel undrained tasks, close tenants (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            handles = tuple(self._tenants.values())
        self._stop.set()
        for worker in workers:
            worker.join()
        # Drain what the workers left behind so no submitter blocks forever
        # on a future that will never run.
        while True:
            task = self._queue.take(timeout=0)
            if task is None:
                break
            future, _ = task
            future.cancel()
            self._queue.mark_completed()
        for handle in handles:
            handle.close()

    def __enter__(self) -> "MiningServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["MiningServer"]
