"""K-medoids clustering (PAM-style) over a precomputed distance matrix.

Follows the "simple and fast" k-medoids algorithm of Park & Jun (2009) cited
by the paper: initial medoids are the points minimising the sum of distances
to all others (a deterministic seeding), then the algorithm alternates
assignment and medoid-update steps until the medoid set is stable.

All tie-breaks are by smallest index, so the outcome is a deterministic
function of the distance matrix — identical matrices yield identical
clusterings, which is what the encrypted-vs-plaintext experiments check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import pairwise_view


@dataclass(frozen=True)
class KMedoidsResult:
    """Labels, medoid indices and total cost of a k-medoids run."""

    labels: tuple[int, ...]
    medoids: tuple[int, ...]
    cost: float
    iterations: int

    def cluster_members(self, cluster: int) -> tuple[int, ...]:
        """Indices of the points assigned to cluster ``cluster``."""
        return tuple(i for i, label in enumerate(self.labels) if label == cluster)


def k_medoids(
    distance_matrix: np.ndarray, *, k: int, max_iterations: int = 100
) -> KMedoidsResult:
    """Cluster items into ``k`` groups around medoids.

    Accepts the square form or a condensed
    :class:`~repro.mining.matrix.CondensedDistanceMatrix`.
    """
    matrix = pairwise_view(distance_matrix)
    n = matrix.n_items
    if not 1 <= k <= n:
        raise MiningError(f"k must be between 1 and {n}, got {k}")

    # Deterministic seeding (Park & Jun): pick the k points with the smallest
    # total distance to all other points.
    totals = np.array([matrix.row(i).sum() for i in range(n)])
    medoids = list(np.argsort(totals, kind="stable")[:k])

    labels = _assign(matrix, medoids)
    cost = _cost(matrix, medoids, labels)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_medoids = _update_medoids(matrix, labels, medoids)
        new_labels = _assign(matrix, new_medoids)
        new_cost = _cost(matrix, new_medoids, new_labels)
        if sorted(new_medoids) == sorted(medoids) and new_cost >= cost - 1e-12:
            break
        medoids, labels, cost = new_medoids, new_labels, new_cost

    ordered = sorted(medoids)
    relabel = {medoid: index for index, medoid in enumerate(ordered)}
    final_labels = tuple(relabel[medoids[label]] for label in labels)
    return KMedoidsResult(
        labels=final_labels,
        medoids=tuple(ordered),
        cost=float(_cost(matrix, ordered, [relabel[medoids[label]] for label in labels])),
        iterations=iterations,
    )


def _assign(matrix, medoids: list[int]) -> list[int]:
    """Assign every point to its nearest medoid (ties: lowest medoid position)."""
    distances = matrix.columns(medoids)
    return [int(np.argmin(row)) for row in distances]


def _cost(matrix, medoids: list[int], labels: list[int]) -> float:
    return float(sum(matrix.value(i, medoids[labels[i]]) for i in range(matrix.n_items)))


def _update_medoids(matrix, labels: list[int], medoids: list[int]) -> list[int]:
    """Within each cluster, pick the point minimising intra-cluster distance."""
    new_medoids: list[int] = []
    for cluster_index in range(len(medoids)):
        members = [i for i, label in enumerate(labels) if label == cluster_index]
        if not members:
            new_medoids.append(medoids[cluster_index])
            continue
        within = matrix.submatrix(members).sum(axis=1)
        best = members[int(np.argmin(within))]
        new_medoids.append(best)
    return new_medoids
