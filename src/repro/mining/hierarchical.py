"""Complete-link agglomerative clustering (Defays, 1977).

The algorithm repeatedly merges the two clusters with the smallest
complete-link (maximum pairwise) distance and records the merge tree as a
:class:`Dendrogram`.  :func:`cut_dendrogram` produces flat clusterings either
at a distance threshold or at a target cluster count.

Tie-breaking is deterministic (lowest index pair), so the dendrogram is a
pure function of the distance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import pairwise_view


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: the two merged clusters and their distance."""

    left: int
    right: int
    distance: float
    new_id: int


@dataclass(frozen=True)
class Dendrogram:
    """The full merge history of an agglomerative clustering run."""

    n_items: int
    merges: tuple[Merge, ...]

    def heights(self) -> tuple[float, ...]:
        """The merge distances, in merge order (non-decreasing for complete link)."""
        return tuple(merge.distance for merge in self.merges)


def complete_link(distance_matrix: np.ndarray) -> Dendrogram:
    """Build the complete-link dendrogram for a distance matrix.

    Accepts the square form or a condensed
    :class:`~repro.mining.matrix.CondensedDistanceMatrix`.
    """
    pairwise = pairwise_view(distance_matrix)
    n = pairwise.n_items

    # Active clusters: id -> set of member indices.  Item i starts as cluster i;
    # merged clusters get ids n, n+1, ...
    members: dict[int, frozenset[int]] = {i: frozenset({i}) for i in range(n)}
    # Complete-link distances between active clusters.
    distances: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            distances[(i, j)] = pairwise.value(i, j)

    merges: list[Merge] = []
    next_id = n
    while len(members) > 1:
        (left, right), height = _closest_pair(distances)
        merged = members.pop(left) | members.pop(right)
        _drop_cluster(distances, left)
        _drop_cluster(distances, right)
        for other, other_members in members.items():
            linkage = max(
                pairwise.value(a, b) for a in merged for b in other_members
            )
            distances[_ordered(other, next_id)] = linkage
        members[next_id] = merged
        merges.append(Merge(left, right, height, next_id))
        next_id += 1

    return Dendrogram(n_items=n, merges=tuple(merges))


def cut_dendrogram(
    dendrogram: Dendrogram,
    *,
    n_clusters: int | None = None,
    height: float | None = None,
) -> tuple[int, ...]:
    """Cut a dendrogram into a flat clustering.

    Exactly one of ``n_clusters`` (stop when that many clusters remain) or
    ``height`` (apply only merges with distance <= height) must be given.
    Labels are renumbered 0..k-1 by smallest member index.
    """
    if (n_clusters is None) == (height is None):
        raise MiningError("specify exactly one of n_clusters or height")
    n = dendrogram.n_items
    if n_clusters is not None and not 1 <= n_clusters <= n:
        raise MiningError(f"n_clusters must be between 1 and {n}")

    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    clusters_remaining = n
    for merge in dendrogram.merges:
        if n_clusters is not None and clusters_remaining <= n_clusters:
            break
        if height is not None and merge.distance > height:
            break
        parent[find(merge.left)] = merge.new_id
        parent[find(merge.right)] = merge.new_id
        parent.setdefault(merge.new_id, merge.new_id)
        clusters_remaining -= 1

    roots = [find(i) for i in range(n)]
    label_of: dict[int, int] = {}
    labels = []
    for root in roots:
        if root not in label_of:
            label_of[root] = len(label_of)
        labels.append(label_of[root])
    return tuple(labels)


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _closest_pair(distances: dict[tuple[int, int], float]) -> tuple[tuple[int, int], float]:
    best_pair = min(distances, key=lambda pair: (distances[pair], pair))
    return best_pair, distances[best_pair]


def _drop_cluster(distances: dict[tuple[int, int], float], cluster: int) -> None:
    for pair in [pair for pair in distances if cluster in pair]:
        del distances[pair]
