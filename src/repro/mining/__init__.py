"""Distance-based data-mining algorithms.

The paper's motivation is that many mining algorithms only consume pairwise
distances, so distance-preserving encryption makes their results identical on
plain-text and cipher-text data.  This package provides the cited families of
algorithms, all operating on a precomputed distance matrix so they can be run
on either side without modification:

* :func:`~repro.mining.dbscan.dbscan` — density-based clustering (Ester et
  al. [4]),
* :func:`~repro.mining.kmedoids.k_medoids` — k-medoids / PAM clustering
  (Park & Jun [5]),
* :func:`~repro.mining.hierarchical.complete_link` — complete-link
  agglomerative clustering (Defays [3]),
* :func:`~repro.mining.outliers.distance_based_outliers` — DB(p, D)-outliers
  (Knorr et al. [6]),
* :func:`~repro.mining.knn.k_nearest_neighbors` — k-nearest-neighbour queries,
* :mod:`~repro.mining.evaluation` — clustering/outlier comparison metrics
  (ARI, NMI, exact label equivalence) used to verify that mining results
  coincide.

Two subsystems scale the distance computation itself:

* :mod:`~repro.mining.parallel` — sharded multi-process computation of the
  condensed matrix (:func:`~repro.mining.parallel.compute_distance_matrix`),
  bit-for-bit equal to the serial pipeline;
* :mod:`~repro.mining.incremental` — append-only streaming logs
  (:class:`~repro.mining.incremental.StreamingQueryLog`) whose distance
  matrix, kNN, outlier and DBSCAN artefacts update per append
  (:class:`~repro.mining.incremental.IncrementalDistanceMatrix`) instead of
  via full recompute;
* :mod:`~repro.mining.approx` — sublinear mining that replaces the all-pairs
  matrix with a pivot (landmark) index
  (:class:`~repro.mining.approx.PivotIndex`): triangle-inequality bounds
  prune or certify most pairs, duplicate groups collapse the rest, sliding
  windows (:class:`~repro.mining.approx.SlidingWindowQueryLog`) bound
  memory, and sharded appends
  (:class:`~repro.mining.approx.ShardedIncrementalMatrix`) amortise ingest;
* :mod:`~repro.mining.selection` — deterministic ``argpartition``-based
  partial selection shared by the incremental and approximate layers.
"""

from repro.mining.approx import (
    ApproxStreamMiner,
    CandidateStats,
    PivotIndex,
    ShardedIncrementalMatrix,
    SlidingWindowQueryLog,
    approx_dbscan,
    approx_knn,
    approx_knn_all,
    approx_outliers,
)
from repro.mining.association import (
    AssociationRule,
    FrequentItemset,
    apriori,
    association_rules,
    mine_query_log,
)
from repro.mining.dbscan import DbscanResult, dbscan
from repro.mining.evaluation import (
    adjusted_rand_index,
    clusterings_equivalent,
    confusion_counts,
    normalized_mutual_information,
)
from repro.mining.hierarchical import Dendrogram, complete_link, cut_dendrogram
from repro.mining.incremental import IncrementalDistanceMatrix, StreamingQueryLog
from repro.mining.kmedoids import KMedoidsResult, k_medoids
from repro.mining.knn import k_nearest_neighbors, knn_classify
from repro.mining.matrix import (
    CondensedDistanceMatrix,
    check_distance_matrix,
    condensed_length,
    condensed_to_square,
    n_items_from_condensed,
    pairwise_view,
    square_to_condensed,
)
from repro.mining.outliers import OutlierResult, distance_based_outliers, top_n_outliers
from repro.mining.parallel import (
    compute_distance_matrix,
    parallel_condensed_distances,
    plan_row_blocks,
)

__all__ = [
    "ApproxStreamMiner",
    "AssociationRule",
    "CandidateStats",
    "CondensedDistanceMatrix",
    "DbscanResult",
    "FrequentItemset",
    "IncrementalDistanceMatrix",
    "PivotIndex",
    "ShardedIncrementalMatrix",
    "SlidingWindowQueryLog",
    "StreamingQueryLog",
    "approx_dbscan",
    "approx_knn",
    "approx_knn_all",
    "approx_outliers",
    "compute_distance_matrix",
    "parallel_condensed_distances",
    "plan_row_blocks",
    "apriori",
    "association_rules",
    "mine_query_log",
    "Dendrogram",
    "KMedoidsResult",
    "OutlierResult",
    "adjusted_rand_index",
    "check_distance_matrix",
    "clusterings_equivalent",
    "complete_link",
    "condensed_length",
    "condensed_to_square",
    "confusion_counts",
    "cut_dendrogram",
    "dbscan",
    "distance_based_outliers",
    "k_medoids",
    "k_nearest_neighbors",
    "knn_classify",
    "n_items_from_condensed",
    "normalized_mutual_information",
    "pairwise_view",
    "square_to_condensed",
    "top_n_outliers",
]
