"""Sharded multi-process computation of the condensed distance matrix.

The distance pipeline of :mod:`repro.core.dpe` is CPU-bound: after the
characteristics are extracted, filling the ``n(n-1)/2`` condensed entries is
pure computation with no shared mutable state.  This module shards that work
across worker *processes* (the measures are plain Python, so threads would
serialize on the GIL):

1. **partition** — :func:`plan_row_blocks` splits the rows of the strict
   upper triangle into contiguous blocks of approximately equal *pair*
   counts (row ``i`` owns ``n - 1 - i`` pairs, so equal row counts would be
   badly skewed);
2. **shard** — each worker process receives the measure and the full
   characteristics list once, via the pool initializer, and caches them in
   process-local state; tasks are then just ``(start, stop)`` row ranges;
3. **merge** — a row block of the triangle is a *contiguous slice* of the
   condensed array (rows are stored row-major), so the parent writes each
   returned slice at its row offset.  The merge is deterministic regardless
   of task completion order.

Bit-for-bit equality with the serial pipeline is a hard invariant, not an
approximation: every measure computes a row block with
:meth:`~repro.core.dpe.DistanceMeasure.condensed_row_block`, whose
implementations produce exactly the floats of the serial
``condensed_distances`` (exact integer arithmetic for the Jaccard measures,
exact dyadic sums for the access-area measure, and the identical scalar
calls otherwise).  ``distance_matrix_reference`` remains the independent
oracle; tests compare all three.

Entry points
------------

* :func:`compute_distance_matrix` — the one-call API:
  ``compute_distance_matrix(measure, context, workers=4)`` returns the
  memoized :class:`~repro.mining.matrix.CondensedDistanceMatrix`.
* :func:`parallel_condensed_distances` — the lower-level array API over an
  already-extracted characteristics list.
* :func:`plan_row_blocks` — the partitioning strategy (exposed for tests and
  for the ``--chunk-size`` experiment axis).
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

import multiprocessing
import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import CondensedDistanceMatrix, condensed_length

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dpe imports matrix)
    from repro.core.dpe import DistanceMeasure, LogContext

#: Below this pair count the pool overhead dominates and the serial path runs.
MIN_PARALLEL_PAIRS = 512

#: Process-local worker state: measure and characteristics, sent once per
#: worker through the pool initializer instead of once per task.
_WORKER_STATE: dict[str, object] = {}


def row_block_offset(n: int, row: int) -> int:
    """Condensed-array offset where ``row``'s pairs start (row-major layout)."""
    return row * (2 * n - row - 1) // 2


def plan_row_blocks(
    n: int, *, workers: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Partition rows ``0 .. n-2`` into contiguous blocks of ~equal pair counts.

    ``chunk_size`` is the target number of *pairs* per block; the default
    oversubscribes the pool four-to-one (``total_pairs / (4 * workers)``) so
    the tail rows — which own few pairs — cannot leave workers idle.  Blocks
    are returned as ``(start, stop)`` half-open row ranges covering every
    pair exactly once.
    """
    if workers < 1:
        raise MiningError("workers must be at least 1")
    if chunk_size is not None and chunk_size < 1:
        raise MiningError("chunk_size must be at least 1")
    if n < 2:
        return []
    pairs = condensed_length(n)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(pairs / (4 * workers)))
    blocks: list[tuple[int, int]] = []
    start = 0
    accumulated = 0
    for row in range(n - 1):
        accumulated += n - 1 - row
        if accumulated >= chunk_size or row == n - 2:
            blocks.append((start, row + 1))
            start = row + 1
            accumulated = 0
    return blocks


def _initialize_worker(payload: bytes) -> None:
    """Pool initializer: unpack the measure and characteristics once per worker."""
    measure, characteristics = pickle.loads(payload)
    _WORKER_STATE["measure"] = measure
    _WORKER_STATE["characteristics"] = characteristics


def _compute_block(block: tuple[int, int]) -> tuple[int, np.ndarray]:
    """Worker task: one row block of the condensed triangle."""
    start, stop = block
    measure = _WORKER_STATE["measure"]
    characteristics = _WORKER_STATE["characteristics"]
    return start, measure.condensed_row_block(characteristics, start, stop)  # type: ignore[union-attr]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap on Linux); fall back to spawn elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def parallel_condensed_distances(
    measure: "DistanceMeasure",
    characteristics: list[object],
    *,
    workers: int,
    chunk_size: int | None = None,
) -> np.ndarray:
    """All pairwise distances, condensed, computed on ``workers`` processes.

    Falls back to the measure's serial ``condensed_distances`` when a pool
    cannot pay for itself (``workers == 1``, fewer than
    :data:`MIN_PARALLEL_PAIRS` pairs, or a single planned block); both paths
    return bit-for-bit identical arrays, so the fallback is unobservable.
    """
    blocks = plan_row_blocks(len(characteristics), workers=workers, chunk_size=chunk_size)
    n = len(characteristics)
    if workers == 1 or condensed_length(n) < MIN_PARALLEL_PAIRS or len(blocks) <= 1:
        return np.asarray(measure.condensed_distances(list(characteristics)), dtype=float)
    payload = pickle.dumps(
        (measure, list(characteristics)), protocol=pickle.HIGHEST_PROTOCOL
    )
    out = np.zeros(condensed_length(n), dtype=float)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_initialize_worker,
        initargs=(payload,),
    ) as pool:
        for start, values in pool.map(_compute_block, blocks):
            offset = row_block_offset(n, start)
            out[offset : offset + values.shape[0]] = values
    return out


def compute_distance_matrix(
    measure: "DistanceMeasure",
    context: "LogContext",
    *,
    workers: int = 1,
    chunk_size: int | None = None,
) -> CondensedDistanceMatrix:
    """The memoized condensed distance matrix of ``context``, sharded over processes.

    Functional alias for
    ``measure.condensed_distance_matrix(context, workers=..., chunk_size=...)``:
    characteristics are extracted (and memoized) once in the parent, the pair
    distances are sharded over ``workers`` processes, and the result lands in
    the same per-context cache the mining entry points read — so a parallel
    computation warms the cache for every subsequent mining call.
    """
    return measure.condensed_distance_matrix(context, workers=workers, chunk_size=chunk_size)


__all__ = [
    "MIN_PARALLEL_PAIRS",
    "compute_distance_matrix",
    "parallel_condensed_distances",
    "plan_row_blocks",
    "row_block_offset",
]
