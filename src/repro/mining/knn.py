"""k-nearest-neighbour queries over a precomputed distance matrix."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import pairwise_view


def k_nearest_neighbors(
    distance_matrix: np.ndarray, index: int, *, k: int
) -> tuple[int, ...]:
    """The indices of the ``k`` nearest neighbours of item ``index``.

    The item itself is excluded; ties are broken by smaller index so the
    result is deterministic.  Accepts the square form or a condensed
    :class:`~repro.mining.matrix.CondensedDistanceMatrix` — only one row of
    distances is ever materialised.
    """
    matrix = pairwise_view(distance_matrix)
    n = matrix.n_items
    if not 0 <= index < n:
        raise MiningError(f"index {index} out of range for {n} items")
    if not 1 <= k <= n - 1:
        raise MiningError(f"k must be between 1 and {n - 1}")
    row = matrix.row(index)
    candidates = [(float(row[j]), j) for j in range(n) if j != index]
    candidates.sort()
    return tuple(j for _, j in candidates[:k])


def knn_classify(
    distance_matrix: np.ndarray,
    labels: list[int | str],
    index: int,
    *,
    k: int,
) -> int | str:
    """Majority-vote k-NN classification of item ``index``.

    ``labels`` provides the class of every item; the label of ``index``
    itself is ignored.  Ties between classes are broken by the class of the
    nearest neighbour among the tied classes, keeping the outcome
    deterministic.
    """
    matrix = pairwise_view(distance_matrix)
    if len(labels) != matrix.n_items:
        raise MiningError("labels must have one entry per item")
    neighbors = k_nearest_neighbors(matrix, index, k=k)
    votes = Counter(labels[j] for j in neighbors)
    best_count = max(votes.values())
    tied = {label for label, count in votes.items() if count == best_count}
    for j in neighbors:
        if labels[j] in tied:
            return labels[j]
    raise MiningError("unreachable: no neighbour carried a tied label")
