"""k-nearest-neighbour queries over a precomputed distance matrix."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import check_distance_matrix


def k_nearest_neighbors(
    distance_matrix: np.ndarray, index: int, *, k: int
) -> tuple[int, ...]:
    """The indices of the ``k`` nearest neighbours of item ``index``.

    The item itself is excluded; ties are broken by smaller index so the
    result is deterministic.
    """
    matrix = check_distance_matrix(distance_matrix)
    n = matrix.shape[0]
    if not 0 <= index < n:
        raise MiningError(f"index {index} out of range for {n} items")
    if not 1 <= k <= n - 1:
        raise MiningError(f"k must be between 1 and {n - 1}")
    candidates = [(float(matrix[index, j]), j) for j in range(n) if j != index]
    candidates.sort()
    return tuple(j for _, j in candidates[:k])


def knn_classify(
    distance_matrix: np.ndarray,
    labels: list[int | str],
    index: int,
    *,
    k: int,
) -> int | str:
    """Majority-vote k-NN classification of item ``index``.

    ``labels`` provides the class of every item; the label of ``index``
    itself is ignored.  Ties between classes are broken by the class of the
    nearest neighbour among the tied classes, keeping the outcome
    deterministic.
    """
    matrix = check_distance_matrix(distance_matrix)
    if len(labels) != matrix.shape[0]:
        raise MiningError("labels must have one entry per item")
    neighbors = k_nearest_neighbors(matrix, index, k=k)
    votes = Counter(labels[j] for j in neighbors)
    best_count = max(votes.values())
    tied = {label for label, count in votes.items() if count == best_count}
    for j in neighbors:
        if labels[j] in tied:
            return labels[j]
    raise MiningError("unreachable: no neighbour carried a tied label")
