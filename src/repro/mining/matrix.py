"""Distance-matrix helpers shared by the mining algorithms."""

from __future__ import annotations

import numpy as np

from repro.exceptions import MiningError


def check_distance_matrix(matrix: np.ndarray, *, tolerance: float = 1e-9) -> np.ndarray:
    """Validate a distance matrix: square, symmetric, zero diagonal, non-negative.

    Returns the matrix as a float array; raises :class:`MiningError` on any
    violation.  Every mining entry point funnels its input through this check
    so that a malformed matrix fails loudly instead of producing nonsense
    clusters.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise MiningError(f"distance matrix must be square, got shape {array.shape}")
    if array.shape[0] == 0:
        raise MiningError("distance matrix must contain at least one item")
    if np.any(array < -tolerance):
        raise MiningError("distance matrix contains negative entries")
    if np.any(np.abs(np.diagonal(array)) > tolerance):
        raise MiningError("distance matrix has a non-zero diagonal")
    if np.any(np.abs(array - array.T) > tolerance):
        raise MiningError("distance matrix is not symmetric")
    return array


def square_to_condensed(matrix: np.ndarray) -> np.ndarray:
    """Flatten the strict upper triangle of a square distance matrix."""
    array = check_distance_matrix(matrix)
    n = array.shape[0]
    return array[np.triu_indices(n, k=1)]


def condensed_to_square(condensed: np.ndarray, n: int) -> np.ndarray:
    """Rebuild a square matrix from its condensed upper-triangle form."""
    expected = n * (n - 1) // 2
    values = np.asarray(condensed, dtype=float)
    if values.shape != (expected,):
        raise MiningError(
            f"condensed form for {n} items must have {expected} entries, got {values.shape}"
        )
    square = np.zeros((n, n), dtype=float)
    square[np.triu_indices(n, k=1)] = values
    return square + square.T
