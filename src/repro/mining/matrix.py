"""Distance-matrix representations shared by the mining algorithms.

Two representations of the pairwise distances over ``n`` items coexist:

* a dense square ``(n, n)`` numpy array (the classic form), and
* a :class:`CondensedDistanceMatrix` — the strict upper triangle flattened
  row-major into ``n * (n - 1) / 2`` values, the same layout scipy's
  ``pdist`` uses.  For large logs this halves memory and lets callers avoid
  ever materialising the square form.

Every mining entry point funnels its input through :func:`pairwise_view`,
which accepts either representation (plus a bare 1-D array interpreted as
condensed) and returns an object with a uniform row/value/submatrix
protocol.  Square inputs keep their exact seed semantics (rows are views
into the validated array); condensed inputs reconstruct rows on demand from
the same stored floats, so mining results are bit-identical across
representations.

The row-major condensed layout is also what the scaling subsystems build
on.  Row ``i`` occupies the contiguous slice starting at
``i * (2n - i - 1) / 2``, so a *row block* of the triangle is a contiguous
slice of ``values`` — :mod:`repro.mining.parallel` exploits this to merge
worker results by offset, deterministically and without reordering.
Appending items, by contrast, interleaves new entries into every row, which
is why :mod:`repro.mining.incremental` maintains a growing square buffer
internally and emits the condensed form on demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import MiningError


def check_distance_matrix(matrix: np.ndarray, *, tolerance: float = 1e-9) -> np.ndarray:
    """Validate a distance matrix: square, symmetric, zero diagonal, non-negative.

    Returns the matrix as a float array; raises :class:`MiningError` on any
    violation.  Every mining entry point funnels its input through this check
    so that a malformed matrix fails loudly instead of producing nonsense
    clusters.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise MiningError(f"distance matrix must be square, got shape {array.shape}")
    if array.shape[0] == 0:
        raise MiningError("distance matrix must contain at least one item")
    if np.any(array < -tolerance):
        raise MiningError("distance matrix contains negative entries")
    if np.any(np.abs(np.diagonal(array)) > tolerance):
        raise MiningError("distance matrix has a non-zero diagonal")
    if np.any(np.abs(array - array.T) > tolerance):
        raise MiningError("distance matrix is not symmetric")
    return array


def condensed_length(n: int) -> int:
    """Number of strict-upper-triangle entries for ``n`` items."""
    return n * (n - 1) // 2


def n_items_from_condensed(length: int) -> int:
    """Recover the item count from a condensed length (``length = n(n-1)/2``).

    A length of 0 is taken to mean a single item (the smallest log with no
    pairs); anything that is not a triangular number is rejected.
    """
    if length == 0:
        return 1
    n = (1 + math.isqrt(1 + 8 * length)) // 2
    if condensed_length(n) != length:
        raise MiningError(f"{length} is not a valid condensed-matrix length n(n-1)/2")
    return n


@dataclass(frozen=True, eq=False)
class CondensedDistanceMatrix:
    """Pairwise distances stored as the flattened strict upper triangle.

    ``values[k]`` holds ``d(i, j)`` for the k-th pair in row-major order
    (``(0,1), (0,2), ..., (0,n-1), (1,2), ...``).  The array is frozen
    (non-writeable) because instances are shared through measure-level
    caches.  Instances compare (and hash) by identity — the dataclass
    default would try to ``==`` the ndarray field and raise; compare
    ``values`` explicitly (e.g. ``np.array_equal``) for value equality.
    """

    values: np.ndarray
    n: int

    def __post_init__(self) -> None:
        array = np.asarray(self.values, dtype=float)
        if array.ndim != 1:
            raise MiningError(f"condensed values must be 1-D, got shape {array.shape}")
        if self.n < 1:
            raise MiningError("condensed matrix needs at least one item")
        if array.shape[0] != condensed_length(self.n):
            raise MiningError(
                f"condensed form for {self.n} items must have "
                f"{condensed_length(self.n)} entries, got {array.shape[0]}"
            )
        if array.size and float(array.min()) < -1e-9:
            raise MiningError("distance matrix contains negative entries")
        array = array.copy() if array is self.values else array
        array.setflags(write=False)
        object.__setattr__(self, "values", array)

    # -- constructors -------------------------------------------------------- #

    @classmethod
    def from_square(cls, matrix: np.ndarray) -> "CondensedDistanceMatrix":
        """Condense a validated square matrix (strict upper triangle)."""
        array = check_distance_matrix(matrix)
        n = array.shape[0]
        return cls(values=array[np.triu_indices(n, k=1)], n=n)

    # -- the pairwise-view protocol ------------------------------------------ #

    @property
    def n_items(self) -> int:
        """Number of items (protocol alias for ``n``)."""
        return self.n

    def index(self, i: int, j: int) -> int:
        """Position of the (unordered) pair ``{i, j}`` inside ``values``."""
        if i == j:
            raise MiningError("the diagonal is not stored in condensed form")
        if i > j:
            i, j = j, i
        if not 0 <= i < j < self.n:
            raise MiningError(f"pair ({i}, {j}) out of range for {self.n} items")
        return i * (2 * self.n - i - 1) // 2 + (j - i - 1)

    def value(self, i: int, j: int) -> float:
        """The stored distance ``d(i, j)`` (0.0 on the diagonal)."""
        if i == j:
            return 0.0
        return float(self.values[self.index(i, j)])

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` of the square form, rebuilt from the stored values."""
        n = self.n
        if not 0 <= i < n:
            raise MiningError(f"index {i} out of range for {n} items")
        out = np.zeros(n, dtype=float)
        if i + 1 < n:
            start = i * (2 * n - i - 1) // 2
            out[i + 1 :] = self.values[start : start + (n - i - 1)]
        if i > 0:
            js = np.arange(i, dtype=np.int64)
            out[:i] = self.values[js * (2 * n - js - 1) // 2 + (i - js - 1)]
        return out

    def columns(self, indices: list[int]) -> np.ndarray:
        """The ``(n, len(indices))`` slice of the square form (by symmetry)."""
        return np.stack([self.row(i) for i in indices], axis=1)

    def submatrix(self, indices: list[int]) -> np.ndarray:
        """The square sub-matrix over ``indices`` × ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        return np.stack([self.row(int(i))[idx] for i in indices], axis=0)

    def condensed(self) -> np.ndarray:
        """The condensed values themselves (read-only view)."""
        return self.values

    def to_square(self) -> np.ndarray:
        """Materialise the full square matrix (fresh, writeable array)."""
        square = np.zeros((self.n, self.n), dtype=float)
        square[np.triu_indices(self.n, k=1)] = self.values
        return square + square.T


class _SquareView:
    """Pairwise-view adapter over a validated square matrix.

    Rows are views into the array, so mining algorithms behave exactly as
    they did when they indexed the square matrix directly.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    @property
    def n_items(self) -> int:
        return self.matrix.shape[0]

    def value(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def row(self, i: int) -> np.ndarray:
        n = self.matrix.shape[0]
        if not 0 <= i < n:
            raise MiningError(f"index {i} out of range for {n} items")
        return self.matrix[i]

    def columns(self, indices: list[int]) -> np.ndarray:
        return self.matrix[:, indices]

    def submatrix(self, indices: list[int]) -> np.ndarray:
        return self.matrix[np.ix_(indices, indices)]

    def condensed(self) -> np.ndarray:
        n = self.matrix.shape[0]
        return self.matrix[np.triu_indices(n, k=1)]

    def to_square(self) -> np.ndarray:
        return self.matrix


def pairwise_view(distances) -> "CondensedDistanceMatrix | _SquareView":
    """Normalise any distance input into the row/value/submatrix protocol.

    Accepts a square 2-D array (validated as before), a
    :class:`CondensedDistanceMatrix`, a bare 1-D array (interpreted as
    condensed, with the item count recovered from the length), or an
    already-built view (returned unchanged).
    """
    if isinstance(distances, (CondensedDistanceMatrix, _SquareView)):
        return distances
    array = np.asarray(distances, dtype=float)
    if array.ndim == 1:
        return CondensedDistanceMatrix(values=array, n=n_items_from_condensed(array.shape[0]))
    return _SquareView(check_distance_matrix(array))


def square_to_condensed(matrix: np.ndarray) -> np.ndarray:
    """Flatten the strict upper triangle of a square distance matrix."""
    array = check_distance_matrix(matrix)
    n = array.shape[0]
    return array[np.triu_indices(n, k=1)]


def condensed_to_square(condensed: np.ndarray, n: int) -> np.ndarray:
    """Rebuild a square matrix from its condensed upper-triangle form."""
    expected = condensed_length(n)
    values = np.asarray(condensed, dtype=float)
    if values.shape != (expected,):
        raise MiningError(
            f"condensed form for {n} items must have {expected} entries, got {values.shape}"
        )
    square = np.zeros((n, n), dtype=float)
    square[np.triu_indices(n, k=1)] = values
    return square + square.T
