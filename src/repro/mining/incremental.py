"""Streaming query logs with incrementally maintained mining artefacts.

The batch pipeline recomputes the full ``O(n²)`` condensed matrix whenever
the log changes — prohibitive for an append-only production log.  This
module exploits the structure of appends: adding ``k`` queries to an
``n``-query log only creates ``n·k + k(k-1)/2`` *new* pairs; every old
pairwise distance is unchanged.  Two pieces make that incremental:

* :class:`StreamingQueryLog` — an append-only
  :class:`~repro.sql.log.QueryLog` that notifies subscribers of each
  appended batch.  It *is* a query log, so it can be wrapped in a
  :class:`~repro.core.dpe.LogContext` and passed to any existing entry
  point; an encrypted stream is just a second instance fed through a DPE
  scheme or a :meth:`~repro.cryptdb.proxy.ProxySession.stream` call.
* :class:`IncrementalDistanceMatrix` — subscribes to a stream and maintains,
  per append: the grown distance matrix (only new pairs are computed), the
  k-nearest-neighbour lists, the DB(p, D)-outlier counts, and the ε-neighbour
  graph from which DBSCAN labels are produced.

Equality with batch recompute is the hard invariant (it is what makes the
paper's result carry over to streams): every artefact equals the one a full
recompute over the grown log would produce, bit for bit —

* **distances**: new pairs go through the measure's scalar
  ``distance_between``, which the vectorized batch paths are documented (and
  tested) to match exactly;
* **kNN**: the true k nearest of a grown set are always a subset of the old
  k nearest plus the new items, so merging the two candidate lists under the
  same ``(distance, index)`` tie-break is exact;
* **outliers**: the far-counts are integers, incremented per append; the
  fractions divide the same integers batch recompute divides;
* **DBSCAN**: appended items have larger indices, so extending each ε-list
  keeps it sorted, and the label pass is the same breadth-first expansion
  :func:`~repro.mining.dbscan.dbscan` runs — the expensive O(n²) distance
  work is incremental, the cheap O(n + edges) labelling is re-run per call.

The measure-level per-context cache is deliberately bypassed: it snapshots
the log by identity and would go stale as the stream grows.  The
incremental matrix owns its state instead and invalidates the measure's
cache after every append so mixed batch/incremental use stays correct.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.crypto.integrity import (
    ChainCheckpoint,
    LogHashChain,
    sign_checkpoint,
    verify_log_entries,
)
from repro.exceptions import MiningError
from repro.mining.dbscan import NOISE, DbscanResult
from repro.mining.matrix import CondensedDistanceMatrix
from repro.mining.outliers import OutlierResult
from repro.mining.selection import largest_indices, smallest_indices
from repro.sql.ast import Query
from repro.sql.log import LogEntry, QueryLog
from repro.sql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - cycle guard (dpe imports mining.matrix)
    from repro.core.dpe import DistanceMeasure, LogContext
    from repro.core.domains import DomainCatalog
    from repro.db.database import Database


class StreamingQueryLog(QueryLog):
    """An append-only query log that notifies subscribers of appended batches.

    Unlike the base :class:`~repro.sql.log.QueryLog` (immutable by
    convention), a streaming log grows over time: :meth:`append` adds a
    batch of entries and pushes it to every subscriber — typically an
    :class:`IncrementalDistanceMatrix`, which extends its artefacts by the
    new pairs only.  Batches accept parsed queries, SQL strings or full
    :class:`~repro.sql.log.LogEntry` objects interchangeably.

    Appends from concurrent streaming sessions are serialized by a
    re-entrant :attr:`lock` — each batch (entry extension *and* subscriber
    notification) is atomic, so two racing appends land as two complete
    batches in some order, never interleaved.  Subscribers maintaining
    derived state (the incremental matrix) take the same lock in their
    accessors, making "log grew + artefacts extended" one atomic step from
    any reader's point of view.
    """

    def __init__(self, entries: Iterable[LogEntry] = ()) -> None:
        super().__init__(entries)
        self._subscribers: list[Callable[[tuple[LogEntry, ...]], None]] = []  # guarded-by: _lock
        self._appends = 0  # guarded-by: _lock
        # Re-entrant: subscribers run under the append lock and may read the
        # log (or re-enter accessors that take the lock) while notified.
        self._lock = threading.RLock()
        # Hash chain over every *ingested* entry (see chain_head); the
        # initial entries count as the first ingested prefix.
        self._chain = LogHashChain()  # guarded-by: _lock
        self._extend_chain(tuple(self._entries))

    @property
    def lock(self) -> threading.RLock:
        """The lock serializing appends (shared with derived-state readers)."""
        return self._lock

    @property
    def appends(self) -> int:
        """Number of append batches accepted so far."""
        with self._lock:
            return self._appends

    # -- integrity: hash-chain commitments over appends ----------------- #

    def _extend_chain(self, batch: tuple[LogEntry, ...]) -> None:  # holds: _lock
        """Fold a batch into the ingest hash chain (call under :attr:`lock`)."""
        for entry in batch:
            self._chain.extend(entry.sql)

    @property
    def chain_head(self) -> str:
        """Hash-chain head (hex) over every entry ingested so far."""
        with self._lock:
            return self._chain.head

    @property
    def chain_length(self) -> int:
        """Number of entries folded into the ingest hash chain."""
        with self._lock:
            return self._chain.length

    def checkpoint(self, key: bytes) -> ChainCheckpoint:
        """Sign the current chain state as a :class:`ChainCheckpoint`.

        The owner keeps the checkpoint (or its key); a later
        :meth:`verify_chain` against it detects any rollback of the log past
        this point, because the provider cannot forge the HMAC signature.
        """
        with self._lock:
            return sign_checkpoint(key, self._chain.length, self._chain.head)

    def verify_chain(self, checkpoint: ChainCheckpoint, key: bytes) -> str:
        """Verify the log is an exact prefix-extension of ``checkpoint``.

        Recomputes the hash chain from the entries currently in the log (not
        from the internal chain state, which a tampering provider could have
        recomputed after truncating) and accepts iff the signed checkpoint
        commits to a prefix of exactly those entries.  Raises
        :class:`~repro.exceptions.IntegrityError` on rollback or mutation;
        returns the recomputed head on success.
        """
        with self._lock:
            return verify_log_entries(
                [entry.sql for entry in self._entries], checkpoint, key
            )

    def subscribe(self, callback: Callable[[tuple[LogEntry, ...]], None]) -> None:
        """Register ``callback`` to receive every future appended batch."""
        with self._lock:
            self._subscribers.append(callback)

    def append(self, items: Iterable[LogEntry | Query | str]) -> tuple[LogEntry, ...]:
        """Append a batch of queries and notify subscribers.

        Returns the normalized entries that were appended.  Subscribers run
        synchronously, in subscription order, after the entries are visible
        in the log — a subscriber reading ``len(log)`` sees the grown log.
        The whole step runs under :attr:`lock`, so concurrent appends are
        serialized batch-at-a-time.
        """
        batch = tuple(self._normalize(item) for item in items)
        if not batch:
            return batch
        with self._lock:
            self._entries.extend(batch)
            self._extend_chain(batch)
            self._appends += 1
            for callback in self._subscribers:
                callback(batch)
        return batch

    @staticmethod
    def _normalize(item: LogEntry | Query | str) -> LogEntry:
        if isinstance(item, LogEntry):
            return item
        if isinstance(item, Query):
            return LogEntry(item)
        if isinstance(item, str):
            return LogEntry(parse_query(item))
        raise MiningError(f"cannot append {type(item).__name__} to a streaming log")


class IncrementalDistanceMatrix:
    """Mining artefacts over a streaming log, updated per append.

    Construction subscribes to ``stream`` (and ingests anything already in
    it); when no stream is given, the matrix owns a fresh
    :class:`StreamingQueryLog`, reachable via :attr:`stream`, and batches can
    be pushed through :meth:`append` directly — the matrix satisfies the
    :class:`~repro.cryptdb.proxy.StreamSink` protocol.
    Each appended batch of ``k`` queries triggers exactly
    ``n·k + k(k-1)/2`` distance evaluations (``n`` = items before the
    append); :attr:`pairs_computed` exposes the running total so tests can
    prove no full recompute happened.  All artefact accessors return values
    equal — bit for bit — to a batch recompute over the grown log.

    The matrix is safe to read while other threads append: appends arrive
    through the stream's re-entrant lock (see
    :attr:`StreamingQueryLog.lock`), and every artefact accessor takes the
    same lock, so a reader always observes a matrix consistent with some
    complete prefix of batches — never a half-ingested append.

    Mining parameters are fixed at construction because the incremental
    state (far-counts, ε-lists, kNN lists) depends on them:

    ``knn_k``
        neighbours maintained per item (also the maximum ``k`` for
        :meth:`top_outliers`),
    ``outlier_p`` / ``outlier_d``
        the DB(p, D)-outlier definition served by :meth:`outliers`,
    ``dbscan_eps`` / ``dbscan_min_points``
        the density parameters served by :meth:`dbscan`.
    """

    def __init__(
        self,
        measure: "DistanceMeasure",
        stream: StreamingQueryLog | None = None,
        *,
        database: "Database | None" = None,
        domains: "DomainCatalog | None" = None,
        knn_k: int = 3,
        outlier_p: float = 0.95,
        outlier_d: float = 0.9,
        dbscan_eps: float = 0.5,
        dbscan_min_points: int = 3,
    ) -> None:
        if knn_k < 1:
            raise MiningError("knn_k must be at least 1")
        if not 0.0 < outlier_p <= 1.0:
            raise MiningError("outlier_p must lie in (0, 1]")
        if outlier_d < 0:
            raise MiningError("outlier_d must be non-negative")
        if dbscan_eps < 0:
            raise MiningError("dbscan_eps must be non-negative")
        if dbscan_min_points < 1:
            raise MiningError("dbscan_min_points must be at least 1")
        from repro.core.dpe import LogContext

        if stream is None:
            stream = StreamingQueryLog()
        self._measure = measure
        self._stream = stream
        self._context: "LogContext" = LogContext(
            log=stream, database=database, domains=domains
        )
        self._knn_k = knn_k
        self._outlier_p = outlier_p
        self._outlier_d = outlier_d
        self._dbscan_eps = dbscan_eps
        self._dbscan_min_points = dbscan_min_points

        self._n = 0
        self._capacity = 16
        self._square = np.zeros((self._capacity, self._capacity), dtype=float)
        self._characteristics: list[object] = []
        #: Per item: ascending list of (distance, neighbour) pairs, length
        #: min(knn_k, n - 1) — the same (d, j) tie-break k_nearest_neighbors uses.
        self._knn: list[list[tuple[float, int]]] = []
        #: Per item: how many *other* items lie strictly farther than outlier_d.
        self._far_counts: list[int] = []
        #: Per item: sorted indices with d <= dbscan_eps (including itself).
        self._neighborhoods: list[list[int]] = []
        #: Per-k memo of the top_outliers score vector, valid for the current
        #: item count only — cleared on every append.
        self._scores_cache: dict[int, np.ndarray] = {}
        self.pairs_computed = 0

        # Atomic subscribe-and-catch-up: a batch appended between the
        # subscription and the initial ingest would otherwise be counted
        # twice (once via the callback, once via tuple(stream)).
        with stream.lock:
            stream.subscribe(self._on_append)
            if len(stream):
                self._extend(tuple(stream))

    # -- growth ---------------------------------------------------------- #

    @property
    def n_items(self) -> int:
        """Number of log entries currently covered by the matrix."""
        with self._stream.lock:
            return self._n

    @property
    def measure(self) -> "DistanceMeasure":
        """The distance measure the matrix is maintained under."""
        return self._measure

    @property
    def stream(self) -> StreamingQueryLog:
        """The streaming log feeding this matrix."""
        return self._stream

    def append(self, items: Iterable[LogEntry | Query | str]) -> tuple[LogEntry, ...]:
        """Append a batch to the underlying stream (and thus to the matrix).

        This makes the matrix itself a
        :class:`~repro.cryptdb.proxy.StreamSink`, so a
        :meth:`~repro.cryptdb.proxy.ProxySession.stream` call can feed
        encrypted queries straight into the mining artefacts without the
        caller holding a separate :class:`StreamingQueryLog` reference.  The
        batch still goes *through* the stream, so every other subscriber
        sees it too.
        """
        return self._stream.append(items)

    def _on_append(self, batch: tuple[LogEntry, ...]) -> None:
        self._extend(batch)

    def _grow_storage(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, capacity), dtype=float)
        grown[: self._n, : self._n] = self._square[: self._n, : self._n]
        self._square = grown
        self._capacity = capacity

    def _extend(self, batch: tuple[LogEntry, ...]) -> None:
        """Ingest ``k`` appended entries: n·k + k(k-1)/2 new distances."""
        k = len(batch)
        if k == 0:
            return
        n_old = self._n
        n_new = n_old + k
        self._grow_storage(n_new)
        self._scores_cache.clear()
        new_characteristics = self._measure.characteristics(
            [entry.query for entry in batch], self._context
        )
        # The measure's per-context memo snapshots the log by identity and
        # cannot see the growth; drop it so batch calls stay correct.
        self._measure.invalidate_cache(self._context)
        square = self._square
        eps = self._dbscan_eps
        threshold = self._outlier_d
        for offset, characteristic in enumerate(new_characteristics):
            j = n_old + offset
            self._characteristics.append(characteristic)
            self._knn.append([])
            self._far_counts.append(0)
            self._neighborhoods.append([])
            for i in range(j):
                value = self._measure.distance_between(
                    self._characteristics[i], characteristic
                )
                square[i, j] = value
                square[j, i] = value
                self.pairs_computed += 1
                if value > threshold:
                    self._far_counts[i] += 1
                    self._far_counts[j] += 1
                if value <= eps:
                    self._neighborhoods[i].append(j)
                    self._neighborhoods[j].append(i)
            # An item is always inside its own ε-neighbourhood (d(i, i) = 0).
            self._neighborhoods[j].append(j)
            self._n = j + 1
        self._update_knn(n_old, k)

    def _update_knn(self, n_old: int, k: int) -> None:
        """Merge the new items into every kNN list under the (d, j) order.

        For an existing item the true k nearest of the grown set are a
        subset of its old k nearest plus the new items (anything else was
        already beaten by the old k-th).  New items consider everyone, via
        :func:`~repro.mining.selection.smallest_indices` — O(n) partial
        selection with the same ``(distance, index)`` tie-break a full sort
        would apply.
        """
        n_new = n_old + k
        square = self._square
        limit = self._knn_k
        new_indices = range(n_old, n_new)
        for i in range(n_old):
            candidates = self._knn[i] + [
                (float(square[i, j]), j) for j in new_indices
            ]
            candidates.sort()
            self._knn[i] = candidates[: min(limit, n_new - 1)]
        for j in new_indices:
            row = square[j, :n_new].copy()
            # Distances live in [0, 1], so +inf excludes the item itself
            # from selection without shifting any tie-break.
            row[j] = np.inf
            chosen = smallest_indices(row, min(limit, n_new - 1))
            self._knn[j] = [(float(row[other]), int(other)) for other in chosen]

    # -- artefact accessors ----------------------------------------------- #

    def _require_items(self, minimum: int = 1) -> None:
        if self._n < minimum:
            raise MiningError(
                f"streaming matrix holds {self._n} items, need at least {minimum}"
            )

    def square(self) -> np.ndarray:
        """The current full symmetric distance matrix (a fresh copy)."""
        with self._stream.lock:
            self._require_items()
            return self._square[: self._n, : self._n].copy()

    def condensed(self) -> CondensedDistanceMatrix:
        """The current distances in condensed form (no distance recomputation)."""
        with self._stream.lock:
            self._require_items()
            n = self._n
            return CondensedDistanceMatrix(
                values=self._square[:n, :n][np.triu_indices(n, k=1)], n=n
            )

    def knn(self, index: int) -> tuple[int, ...]:
        """The ``knn_k`` nearest neighbours of ``index``, ties by smaller index."""
        with self._stream.lock:
            self._require_items(2)
            if not 0 <= index < self._n:
                raise MiningError(f"index {index} out of range for {self._n} items")
            if self._knn_k > self._n - 1:
                raise MiningError(f"k must be between 1 and {self._n - 1}")
            return tuple(j for _, j in self._knn[index])

    def knn_all(self) -> tuple[tuple[int, ...], ...]:
        """The maintained kNN lists of every item."""
        with self._stream.lock:
            return tuple(self.knn(i) for i in range(self._n))

    def outliers(self) -> OutlierResult:
        """The DB(p, D)-outliers of the current log (equal to a batch scan)."""
        with self._stream.lock:
            self._require_items()
            n = self._n
            if n == 1:
                return OutlierResult(
                    outliers=(), fraction_far=(0.0,), p=self._outlier_p, d=self._outlier_d
                )
            fractions = [count / (n - 1) for count in self._far_counts]
            flagged = tuple(
                i for i, fraction in enumerate(fractions) if fraction >= self._outlier_p
            )
            return OutlierResult(
                outliers=flagged,
                fraction_far=tuple(fractions),
                p=self._outlier_p,
                d=self._outlier_d,
            )

    def top_outliers(self, n_outliers: int, *, k: int | None = None) -> tuple[int, ...]:
        """Top ``n_outliers`` by k-th-nearest-neighbour distance, from the kNN lists.

        ``k`` defaults to the maintained ``knn_k`` and must not exceed it —
        the k-th nearest distance of anything beyond the maintained horizon
        is unknown without recomputation.  The score vector is memoized per
        append (repeated calls between appends gather no scores) and ranked
        by :func:`~repro.mining.selection.largest_indices` — partial
        selection under the same ``(-score, index)`` order the previous
        full-sort implementation applied.
        """
        with self._stream.lock:
            self._require_items(2)
            k = self._knn_k if k is None else k
            if not 1 <= k <= self._knn_k:
                raise MiningError(
                    f"k must be between 1 and the maintained knn_k={self._knn_k}"
                )
            if k >= self._n:
                raise MiningError(f"k must be between 1 and {self._n - 1}")
            if not 1 <= n_outliers <= self._n:
                raise MiningError(f"n_outliers must be between 1 and {self._n}")
            scores = self._scores_cache.get(k)
            if scores is None:
                scores = np.array([self._knn[i][k - 1][0] for i in range(self._n)])
                self._scores_cache[k] = scores
            return tuple(int(i) for i in largest_indices(scores, n_outliers))

    def dbscan(self) -> DbscanResult:
        """DBSCAN labels over the maintained ε-graph (equal to a batch run).

        The ε-neighbourhood lists are maintained incrementally (appends only
        ever *extend* them, keeping the ascending order the batch
        ``np.flatnonzero`` produces); the label pass re-runs the same
        deterministic breadth-first expansion over the graph, which costs
        O(n + edges) — no distances are recomputed.
        """
        from collections import deque

        with self._stream.lock:
            self._require_items()
            n = self._n
            # Snapshot under the lock; the label pass below runs lock-free on
            # the copies (appends never mutate existing prefixes in place,
            # but a half-extended list must not be observed).
            neighborhoods = [list(self._neighborhoods[i]) for i in range(n)]
        # Sort once per call: each list is "ascending old neighbours, then
        # ascending new neighbours, then self" — sorted() restores the exact
        # flatnonzero order cheaply (Timsort exploits the runs).
        ordered = [sorted(neighborhoods[i]) for i in range(n)]
        is_core = [len(ordered[i]) >= self._dbscan_min_points for i in range(n)]
        labels = [NOISE] * n
        cluster = 0
        for start in range(n):
            if labels[start] != NOISE or not is_core[start]:
                continue
            labels[start] = cluster
            queue: deque[int] = deque(ordered[start])
            while queue:
                point = queue.popleft()
                if labels[point] == NOISE:
                    labels[point] = cluster
                    if is_core[point]:
                        queue.extend(ordered[point])
            cluster += 1
        return DbscanResult(
            labels=tuple(labels),
            core_points=frozenset(i for i in range(n) if is_core[i]),
            n_clusters=cluster,
        )


__all__ = ["IncrementalDistanceMatrix", "StreamingQueryLog"]
