"""Mining algorithms over a :class:`~repro.mining.approx.pivots.PivotIndex`.

Each function mirrors an exact entry point — :func:`~repro.mining.dbscan.dbscan`,
:func:`~repro.mining.outliers.distance_based_outliers`,
:func:`~repro.mining.knn.k_nearest_neighbors` — but resolves distances through
the pivot index's certify/prune/evaluate split instead of a materialised
matrix, and additionally returns :class:`~repro.mining.approx.pivots.CandidateStats`.

**Exactness.**  Whenever the returned stats report ``certified_complete``
(always, unless a ``max_candidates`` budget truncated a query), the results
are bit-for-bit equal to running the exact pipeline over the same items in
id order.  The arguments, per algorithm:

* *DBSCAN* — items of one duplicate group share a distance row, so
  core-ness is a group property (the neighbourhood count is the summed size
  of in-range groups) and clusters are connected components of the
  core-group graph.  The exact algorithm numbers clusters by their
  smallest-index unlabelled core start and fully expands one cluster before
  the next starts, so component numbering by minimum core item id and
  border assignment to the minimum-numbered adjacent core component
  reproduce its labels exactly.
* *outliers* — the far count of an item in group ``g`` is
  ``n − Σ size(h)`` over in-range groups ``h`` (its own group is in range at
  distance zero, and ``D ≥ 0`` means same-group pairs are never far), an
  integer; dividing by ``n − 1`` yields the identical float the exact scan
  divides.
* *kNN* — the candidate set provably covers every true k-nearest member
  (see :meth:`PivotIndex._group_knn_candidates`) and carries the same
  ``distance_between`` floats, so sorting candidates under the exact
  ``(distance, id)`` tie-break and truncating at ``k`` is the exact answer.

Item ids are the caller-assigned insertion ids; result vectors (labels,
fractions) are positional over ``index.item_ids()`` — for a batch-built
index that is log order, making the equality literal.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import MiningError
from repro.mining.approx.pivots import CandidateStats, PivotIndex, _Scan
from repro.mining.dbscan import NOISE, DbscanResult
from repro.mining.outliers import OutlierResult


def approx_dbscan(
    index: PivotIndex,
    *,
    eps: float,
    min_points: int,
    max_candidates: int | None = None,
    cache: dict | None = None,
) -> tuple[DbscanResult, CandidateStats]:
    """DBSCAN through pruned eps-range queries (exact when uncapped).

    ``cache`` may be shared across calls against the same (unmutated) index
    so repeated group pairs are evaluated once.
    """
    if eps < 0:
        raise MiningError("eps must be non-negative")
    if min_points < 1:
        raise MiningError("min_points must be at least 1")
    ids = index.item_ids()
    if not ids:
        raise MiningError("pivot index holds no items")
    index._ensure_pivots()
    scan = _Scan(cache)
    groups = index._groups
    n_groups = len(groups)
    sizes = [len(group.members) for group in groups]
    neighbor_rows = [
        index._range_rows(row, eps, scan, max_candidates) for row in range(n_groups)
    ]
    is_core = [
        sum(sizes[other] for other in neighbor_rows[row]) >= min_points
        for row in range(n_groups)
    ]

    # Connected components over core groups (edges symmetrised so a capped,
    # one-sided range result still yields well-defined clusters).
    adjacency: list[set[int]] = [set() for _ in range(n_groups)]
    for row in range(n_groups):
        if not is_core[row]:
            continue
        for other in neighbor_rows[row]:
            if other != row and is_core[other]:
                adjacency[row].add(other)
                adjacency[other].add(row)
    component = [-1] * n_groups
    components: list[list[int]] = []
    for row in range(n_groups):
        if not is_core[row] or component[row] >= 0:
            continue
        label = len(components)
        members = [row]
        component[row] = label
        queue = deque([row])
        while queue:
            current = queue.popleft()
            for other in sorted(adjacency[current]):
                if component[other] < 0:
                    component[other] = label
                    members.append(other)
                    queue.append(other)
        components.append(members)

    # The exact algorithm numbers clusters by their smallest-index core
    # start point; with positional order = id order that is the rank of the
    # component's minimum core item id.
    reps = [
        min(min(groups[row].members) for row in members) for members in components
    ]
    numbering = [0] * len(components)
    for rank, label in enumerate(sorted(range(len(components)), key=lambda c: reps[c])):
        numbering[label] = rank

    row_labels = [NOISE] * n_groups
    for row in range(n_groups):
        if is_core[row]:
            row_labels[row] = numbering[component[row]]
            continue
        adjacent = [
            numbering[component[other]]
            for other in neighbor_rows[row]
            if is_core[other]
        ]
        if adjacent:
            # Lower-numbered clusters expand earlier, so the first cluster
            # to reach a border point is the minimum-numbered adjacent one.
            row_labels[row] = min(adjacent)

    # Results are positional over the ascending live ids (for a batch-built
    # index ids are positions, so this is the identity) — including
    # ``core_points``, matching the exact pipeline's positional contract.
    position = {item_id: pos for pos, item_id in enumerate(ids)}
    labels = [NOISE] * len(ids)
    core_points: set[int] = set()
    for row in range(n_groups):
        for member in groups[row].members:
            labels[position[member]] = row_labels[row]
        if is_core[row]:
            core_points.update(position[member] for member in groups[row].members)
    result = DbscanResult(
        labels=tuple(labels),
        core_points=frozenset(core_points),
        n_clusters=len(components),
    )
    return result, index._snapshot(scan)


def approx_outliers(
    index: PivotIndex,
    *,
    p: float,
    d: float,
    max_candidates: int | None = None,
    cache: dict | None = None,
) -> tuple[OutlierResult, CandidateStats]:
    """DB(p, D)-outliers through pruned range queries (exact when uncapped).

    The far counts are integers derived from group sizes, so the reported
    fractions are bitwise identical to the exact scan's.
    """
    if not 0.0 < p <= 1.0:
        raise MiningError("p must lie in (0, 1]")
    if d < 0:
        raise MiningError("d must be non-negative")
    ids = index.item_ids()
    n = len(ids)
    if n == 0:
        raise MiningError("pivot index holds no items")
    if n == 1:
        empty = index._snapshot(_Scan(cache))
        return OutlierResult(outliers=(), fraction_far=(0.0,), p=p, d=d), empty
    index._ensure_pivots()
    scan = _Scan(cache)
    groups = index._groups
    sizes = [len(group.members) for group in groups]
    position = {item_id: pos for pos, item_id in enumerate(ids)}
    fractions = [0.0] * n
    for row in range(len(groups)):
        near = sum(
            sizes[other] for other in index._range_rows(row, d, scan, max_candidates)
        )
        fraction = float(n - near) / (n - 1)
        for member in groups[row].members:
            fractions[position[member]] = fraction
    flagged = tuple(pos for pos in range(n) if fractions[pos] >= p)
    result = OutlierResult(outliers=flagged, fraction_far=tuple(fractions), p=p, d=d)
    return result, index._snapshot(scan)


def approx_knn(
    index: PivotIndex,
    item_id: int,
    *,
    k: int,
    max_candidates: int | None = None,
    cache: dict | None = None,
) -> tuple[tuple[int, ...], CandidateStats]:
    """The k nearest live items of ``item_id`` (exact when uncapped).

    Ties break by smaller item id, matching
    :func:`~repro.mining.knn.k_nearest_neighbors`.
    """
    group = index._require_item(item_id)
    if not 1 <= k <= index.n_items - 1:
        raise MiningError(f"k must be between 1 and {index.n_items - 1}")
    index._ensure_pivots()
    scan = _Scan(cache)
    candidates = index._group_knn_candidates(group, k, scan, max_candidates)
    merged = index._assemble_knn(group, item_id, candidates)
    return tuple(j for _, j in merged[:k]), index._snapshot(scan)


def approx_knn_all(
    index: PivotIndex,
    *,
    k: int,
    max_candidates: int | None = None,
    cache: dict | None = None,
) -> tuple[dict[int, tuple[int, ...]], CandidateStats]:
    """The k nearest neighbours of every live item, keyed by item id.

    One candidate search per *group* serves all of its members: the
    covering radius already accounts for the same-group companions, and the
    per-member answer only swaps which zero-distance companion is excluded.
    """
    n = index.n_items
    if not 1 <= k <= n - 1:
        raise MiningError(f"k must be between 1 and {n - 1}")
    index._ensure_pivots()
    scan = _Scan(cache)
    groups = index._groups
    result: dict[int, tuple[int, ...]] = {}
    for group in groups:
        candidates = index._group_knn_candidates(group, k, scan, max_candidates)
        cross = sorted(
            (distance, member)
            for distance, other in candidates
            for member in groups[other].members
        )
        own = group.members
        for item_id in own:
            own_pairs = [(0.0, member) for member in own if member != item_id]
            result[item_id] = _merge_first_k(own_pairs, cross, k)
    return result, index._snapshot(scan)


def _merge_first_k(
    left: list[tuple[float, int]], right: list[tuple[float, int]], k: int
) -> tuple[int, ...]:
    """First ``k`` ids of the merged ``(distance, id)``-sorted sequences."""
    out: list[int] = []
    i = j = 0
    while len(out) < k:
        if i < len(left) and (j >= len(right) or left[i] <= right[j]):
            out.append(left[i][1])
            i += 1
        elif j < len(right):
            out.append(right[j][1])
            j += 1
        else:  # pragma: no cover - caller guarantees k <= available items
            break
    return tuple(out)


__all__ = ["approx_dbscan", "approx_knn", "approx_knn_all", "approx_outliers"]
