"""Pivot (landmark) index over query-log characteristics.

The exact pipeline materialises all ``n(n-1)/2`` pairwise distances.  A
:class:`PivotIndex` stores two far smaller things instead:

* a **duplicate grouping** — items are grouped by
  :meth:`~repro.core.dpe.DistanceMeasure.characteristic_key`, so the ``g``
  distinct characteristics (``g ≪ n`` for real logs, which repeat query
  templates heavily) are the unit of all distance work; and
* a **g×m pivot table** — the distances from every group to ``m ≪ g``
  landmark groups picked by maxmin (farthest-first) selection.

For a metric measure (``measure.is_metric``) the table yields, for any two
groups ``a``/``b``, the triangle-inequality sandwich

``LB(a, b) = max_p |D[a, p] − D[b, p]|  ≤  d(a, b)  ≤  min_p (D[a, p] + D[b, p]) = UB(a, b)``

so a range query resolves most groups from the table alone: ``UB ≤ t`` is
certified in-range, ``LB > t`` is pruned, and only the narrow gap between
the bounds pays an exact ``distance_between`` call.  Non-metric measures
(the access-area distance — see
:data:`~repro.core.dpe.DistanceMeasure.is_metric`) get **no pivots**: the
bounds degenerate to ``[0, ∞)`` and every distinct-group pair is evaluated
exactly, which still collapses ``n²`` item pairs to ``g²`` group pairs.

Results stay *bit-for-bit exact* as long as no candidate budget truncates a
query (see ``max_candidates`` in :mod:`repro.mining.approx.algorithms`):
bound comparisons carry a float tolerance so rounding can never wrongly
prune or certify, and everything inside the gap is decided by the same
``distance_between`` floats the exact pipeline sorts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import MiningError

if TYPE_CHECKING:  # pragma: no cover - cycle guard (dpe imports mining.matrix)
    from repro.core.dpe import DistanceMeasure, LogContext

#: Absolute slack applied to every bound comparison.  Distances here live in
#: [0, 1] and ``distance_between`` agrees with the real-valued distance to
#: ~1e-15, so 1e-9 dominates any accumulated rounding while never moving a
#: decision that matters: pairs inside the slack fall into the exact gap.
BOUND_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CandidateStats:
    """Work accounting for a pivot-pruned mining call.

    The exact pipeline evaluates every item pair; these counters show where
    the pivot index avoided that.  ``table_distances`` is the index-lifetime
    cost of building the group-to-pivot table (including pivot selection);
    the per-call counters split the group comparisons the call made into
    ``pruned_pairs`` (lower bound above the threshold — no evaluation),
    ``certified_pairs`` (upper bound below it — in-range without
    evaluation) and ``exact_distances`` (the gap, plus kNN survivors).

    ``certified_complete`` is the exactness certificate: ``True`` means no
    candidate budget truncated any query, so every returned artefact is
    bit-for-bit equal to the exact pipeline's.  ``False`` means a
    ``max_candidates`` cap dropped low-priority candidates somewhere and the
    results are approximate.
    """

    n_items: int
    n_groups: int
    n_pivots: int
    table_distances: int
    exact_distances: int
    pruned_pairs: int
    certified_pairs: int
    certified_complete: bool

    @property
    def group_pairs_examined(self) -> int:
        """Total group comparisons the call resolved (by any means)."""
        return self.exact_distances + self.pruned_pairs + self.certified_pairs

    @classmethod
    def merge(cls, first: "CandidateStats", *rest: "CandidateStats") -> "CandidateStats":
        """Combine the accounting of several calls against one index.

        Counters add, the completeness certificate survives only if every
        constituent call kept it, and the index-shape fields (items, groups,
        pivots, table cost) take the maximum — the calls may have been made
        while the index grew.
        """
        stats = (first, *rest)
        return cls(
            n_items=max(s.n_items for s in stats),
            n_groups=max(s.n_groups for s in stats),
            n_pivots=max(s.n_pivots for s in stats),
            table_distances=max(s.table_distances for s in stats),
            exact_distances=sum(s.exact_distances for s in stats),
            pruned_pairs=sum(s.pruned_pairs for s in stats),
            certified_pairs=sum(s.certified_pairs for s in stats),
            certified_complete=all(s.certified_complete for s in stats),
        )

    def to_dict(self) -> dict:
        """Plain-dict form for reports and JSON artifacts."""
        return {
            "n_items": self.n_items,
            "n_groups": self.n_groups,
            "n_pivots": self.n_pivots,
            "table_distances": self.table_distances,
            "exact_distances": self.exact_distances,
            "pruned_pairs": self.pruned_pairs,
            "certified_pairs": self.certified_pairs,
            "certified_complete": self.certified_complete,
        }


class _Group:
    """A distinct-characteristic group: one table row, many item ids."""

    __slots__ = ("characteristic", "created", "members", "row")

    def __init__(self, characteristic: object, created: int, row: int) -> None:
        self.characteristic = characteristic
        self.created = created
        #: Member item ids, ascending (ids are assigned monotonically on add;
        #: removals keep the order).
        self.members: list[int] = []
        #: Current row in the pivot table (mutated by swap-deletes).
        self.row = row


class _Scan:
    """Mutable per-call accounting plus the shared exact-distance cache.

    The cache is keyed by unordered group-key pairs, so several algorithm
    calls in one mining pass (DBSCAN + outliers + kNN) share evaluations;
    ``exact_distances`` counts only cache misses — genuinely new
    ``distance_between`` work.
    """

    __slots__ = ("cache", "certified", "complete", "exact", "pruned")

    def __init__(self, cache: dict | None = None) -> None:
        self.cache: dict = {} if cache is None else cache
        self.exact = 0
        self.pruned = 0
        self.certified = 0
        self.complete = True


class PivotIndex:
    """Incremental pivot index over one distance measure's characteristics.

    Items enter through :meth:`add` (or :meth:`from_context` for a whole
    log) under caller-chosen integer ids that must be assigned in increasing
    order — they are the tie-break identity that keeps results equal to the
    exact pipeline.  :meth:`remove` supports sliding windows: the table row
    of a drained group is swap-deleted, and pivot characteristics are held
    independently of their source groups so evicting a pivot's group keeps
    its table column valid.

    Pivot selection is lazy and deterministic: the first landmark is drawn
    by a ``random.Random(seed)`` over the groups in creation order, the rest
    by maxmin (each new landmark maximises its distance to the chosen ones,
    ties to the earliest-created group).  Selection tops itself up as the
    index grows, never exceeding ``n_pivots``; a non-metric measure keeps
    zero pivots and relies purely on duplicate grouping.
    """

    def __init__(
        self,
        measure: "DistanceMeasure",
        *,
        n_pivots: int = 8,
        seed: int = 0,
    ) -> None:
        if n_pivots < 1:
            raise MiningError("n_pivots must be at least 1")
        self._measure = measure
        self._metric = bool(measure.is_metric)
        self._target_pivots = n_pivots if self._metric else 0
        self._seed = seed
        self._rng = random.Random(seed)
        self._groups: list[_Group] = []
        self._key_to_group: dict[object, _Group] = {}
        self._item_to_group: dict[int, _Group] = {}
        self._pivots: list[object] = []
        self._row_capacity = 16
        self._table = np.zeros((self._row_capacity, max(self._target_pivots, 1)))
        self._created = 0
        self._n_items = 0
        self._last_id: int | None = None
        #: Lifetime count of distance evaluations spent on the pivot table
        #: (row fills for new groups + column fills during selection).
        self.table_distances = 0

    # -- introspection ---------------------------------------------------- #

    @property
    def measure(self) -> "DistanceMeasure":
        """The distance measure the index is built over."""
        return self._measure

    @property
    def seed(self) -> int:
        """The RNG seed pivot selection was constructed with."""
        return self._seed

    @property
    def n_items(self) -> int:
        """Number of live items."""
        return self._n_items

    @property
    def n_groups(self) -> int:
        """Number of live distinct-characteristic groups."""
        return len(self._groups)

    @property
    def n_pivots(self) -> int:
        """Number of landmarks selected so far (0 for non-metric measures)."""
        return len(self._pivots)

    def item_ids(self) -> tuple[int, ...]:
        """The live item ids, ascending — the positional order of results."""
        return tuple(sorted(self._item_to_group))

    # -- construction ------------------------------------------------------ #

    @classmethod
    def from_context(
        cls,
        measure: "DistanceMeasure",
        context: "LogContext",
        *,
        n_pivots: int = 8,
        seed: int = 0,
    ) -> "PivotIndex":
        """Index a whole log at once (ids = log positions).

        Characteristics come from the measure's batch hook, so the
        vectorised extraction paths (and the per-context cache) are reused.
        """
        index = cls(measure, n_pivots=n_pivots, seed=seed)
        characteristics = measure.characteristics(
            [entry.query for entry in context.log], context
        )
        for item_id, characteristic in enumerate(characteristics):
            index.add(item_id, characteristic)
        return index

    def add(self, item_id: int, characteristic: object) -> None:
        """Register ``characteristic`` under ``item_id`` (ids must ascend)."""
        if self._last_id is not None and item_id <= self._last_id:
            raise MiningError(
                f"item ids must be added in increasing order "
                f"({item_id} after {self._last_id})"
            )
        if item_id in self._item_to_group:
            raise MiningError(f"item id {item_id} is already indexed")
        key = self._measure.characteristic_key(characteristic)
        group = self._key_to_group.get(key)
        if group is None:
            group = self._new_group(characteristic)
            self._key_to_group[key] = group
        group.members.append(item_id)
        self._item_to_group[item_id] = group
        self._n_items += 1
        self._last_id = item_id

    def remove(self, item_id: int) -> None:
        """Drop ``item_id``; an emptied group's table row is swap-deleted."""
        group = self._item_to_group.pop(item_id, None)
        if group is None:
            raise MiningError(f"item id {item_id} is not indexed")
        # Ids are unique, so list.remove drops exactly this member.
        group.members.remove(item_id)
        self._n_items -= 1
        if group.members:
            return
        key = self._measure.characteristic_key(group.characteristic)
        del self._key_to_group[key]
        last = self._groups.pop()
        if last is not group:
            self._table[group.row, :] = self._table[last.row, :]
            last.row = group.row
            self._groups[group.row] = last

    def _new_group(self, characteristic: object) -> _Group:
        row = len(self._groups)
        if row >= self._row_capacity:
            capacity = self._row_capacity
            while capacity <= row:
                capacity *= 2
            grown = np.zeros((capacity, self._table.shape[1]))
            grown[: self._row_capacity] = self._table
            self._table = grown
            self._row_capacity = capacity
        group = _Group(characteristic, self._created, row)
        self._created += 1
        self._groups.append(group)
        for column, pivot in enumerate(self._pivots):
            self._table[row, column] = self._measure.distance_between(
                pivot, characteristic
            )
            self.table_distances += 1
        return group

    # -- pivot selection --------------------------------------------------- #

    def _ensure_pivots(self) -> None:
        """Top up maxmin landmark selection to the target (lazy, on query)."""
        while len(self._pivots) < self._target_pivots and (
            len(self._groups) > len(self._pivots)
        ):
            if not self._pivots:
                in_creation_order = sorted(self._groups, key=lambda g: g.created)
                chosen = in_creation_order[self._rng.randrange(len(in_creation_order))]
            else:
                m = len(self._pivots)
                mins = self._table[: len(self._groups), :m].min(axis=1)
                best = None
                for group in self._groups:
                    score = (mins[group.row], -group.created)
                    if best is None or score > best[0]:
                        best = (score, group)
                chosen = best[1]
                # A zero maxmin radius means every group coincides with a
                # pivot already — more landmarks cannot tighten any bound.
                if mins[chosen.row] <= 0.0:
                    return
            column = len(self._pivots)
            self._pivots.append(chosen.characteristic)
            for group in self._groups:
                self._table[group.row, column] = self._measure.distance_between(
                    chosen.characteristic, group.characteristic
                )
                self.table_distances += 1

    # -- bounds and queries ------------------------------------------------ #

    def _bounds(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(LB, UB) arrays from ``row``'s group to every live group."""
        n_groups = len(self._groups)
        m = len(self._pivots)
        if m == 0:
            return np.zeros(n_groups), np.full(n_groups, np.inf)
        table = self._table[:n_groups, :m]
        source = table[row]
        lower = np.abs(table - source).max(axis=1)
        upper = (table + source).min(axis=1)
        return lower, upper

    def _pair_key(self, a: _Group, b: _Group) -> tuple[int, int]:
        if a.created <= b.created:
            return (a.created, b.created)
        return (b.created, a.created)

    def _exact(self, a: _Group, b: _Group, scan: _Scan) -> float:
        key = self._pair_key(a, b)
        value = scan.cache.get(key)
        if value is None:
            value = self._measure.distance_between(a.characteristic, b.characteristic)
            scan.cache[key] = value
            scan.exact += 1
        return value

    def _cap_gap(
        self, gap: list[int], lower: np.ndarray, max_candidates: int | None, scan: _Scan
    ) -> list[int]:
        if max_candidates is None or len(gap) <= max_candidates:
            return gap
        scan.complete = False
        groups = self._groups
        gap.sort(key=lambda r: (lower[r], groups[r].created))
        return gap[:max_candidates]

    def _range_rows(
        self,
        row: int,
        threshold: float,
        scan: _Scan,
        max_candidates: int | None = None,
    ) -> list[int]:
        """Rows of all groups within ``threshold`` of ``row`` (inclusive).

        The decision for every returned row is the exact pipeline's
        ``d <= threshold`` — certified rows have ``UB`` below the threshold
        by more than the float tolerance, and gap rows are evaluated with
        ``distance_between`` itself.  ``max_candidates`` bounds the exact
        evaluations; overflow rows are treated as out of range and the
        scan's completeness certificate is dropped.
        """
        lower, upper = self._bounds(row)
        n_groups = len(self._groups)
        rows_in = [row]
        gap: list[int] = []
        certified = upper <= threshold - BOUND_TOLERANCE
        pruned = lower > threshold + BOUND_TOLERANCE
        for other in range(n_groups):
            if other == row:
                continue
            if certified[other]:
                rows_in.append(other)
                scan.certified += 1
            elif pruned[other]:
                scan.pruned += 1
            else:
                gap.append(other)
        source = self._groups[row]
        for other in self._cap_gap(gap, lower, max_candidates, scan):
            if self._exact(source, self._groups[other], scan) <= threshold:
                rows_in.append(other)
        rows_in.sort()
        return rows_in

    def range_query(
        self, item_id: int, threshold: float, *, max_candidates: int | None = None
    ) -> tuple[tuple[int, ...], CandidateStats]:
        """Live item ids within ``threshold`` of ``item_id`` (inclusive, with self).

        Equal to filtering the exact distance row — the group-level
        certify/prune/evaluate split never changes a ``d <= threshold``
        decision (see :meth:`_range_rows`).
        """
        group = self._require_item(item_id)
        self._ensure_pivots()
        scan = _Scan()
        rows = self._range_rows(group.row, threshold, scan, max_candidates)
        neighbors = sorted(
            member for row in rows for member in self._groups[row].members
        )
        return tuple(neighbors), self._snapshot(scan)

    def knn_candidates(
        self, item_id: int, k: int, *, max_candidates: int | None = None
    ) -> tuple[tuple[tuple[float, int], ...], CandidateStats]:
        """The ``(distance, id)``-sorted candidates covering the true kNN.

        The first ``k`` entries are exactly the exact pipeline's k nearest
        neighbours of ``item_id`` under the ``(distance, index)`` tie-break
        whenever the returned stats certify completeness; see
        :func:`repro.mining.approx.algorithms.approx_knn` for the argument.
        """
        group = self._require_item(item_id)
        if not 1 <= k <= self._n_items - 1:
            raise MiningError(f"k must be between 1 and {self._n_items - 1}")
        self._ensure_pivots()
        scan = _Scan()
        candidates = self._group_knn_candidates(group, k, scan, max_candidates)
        merged = self._assemble_knn(group, item_id, candidates)
        return tuple(merged), self._snapshot(scan)

    def _group_knn_candidates(
        self,
        group: _Group,
        k: int,
        scan: _Scan,
        max_candidates: int | None = None,
    ) -> list[tuple[float, int]]:
        """Cross-group ``(distance, row)`` pairs covering any member's kNN.

        The covering radius ``r`` is the smallest upper bound at which the
        cumulative size of covered groups (plus the ``len(members) - 1``
        same-group companions at distance zero) reaches ``k`` — so at least
        ``k`` items other than the query certainly lie within ``r``, and any
        true kNN member (distance ≤ the k-th smallest ≤ ``r``) lives in a
        group with ``LB ≤ r``, which is exactly the set evaluated here.
        """
        lower, upper = self._bounds(group.row)
        groups = self._groups
        coverage: list[tuple[float, int]] = [(0.0, len(group.members) - 1)]
        for other in groups:
            if other is not group:
                coverage.append((float(upper[other.row]), len(other.members)))
        coverage.sort(key=lambda pair: pair[0])
        covered = 0
        radius = np.inf
        for bound, size in coverage:
            covered += size
            if covered >= k:
                radius = bound
                break
        candidates: list[int] = []
        for other in range(len(groups)):
            if other == group.row:
                continue
            if lower[other] <= radius + BOUND_TOLERANCE:
                candidates.append(other)
            else:
                scan.pruned += 1
        candidates = self._cap_gap(candidates, lower, max_candidates, scan)
        return [
            (self._exact(group, groups[other], scan), other) for other in candidates
        ]

    def _assemble_knn(
        self, group: _Group, item_id: int, candidates: list[tuple[float, int]]
    ) -> list[tuple[float, int]]:
        """Expand group candidates to ``(distance, id)`` pairs, sorted."""
        groups = self._groups
        merged = [(0.0, member) for member in group.members if member != item_id]
        for distance, other in candidates:
            merged.extend((distance, member) for member in groups[other].members)
        merged.sort()
        return merged

    def _require_item(self, item_id: int) -> _Group:
        group = self._item_to_group.get(item_id)
        if group is None:
            raise MiningError(f"item id {item_id} is not indexed")
        if self._n_items < 2:
            raise MiningError("pivot index holds fewer than 2 items")
        return group

    def _snapshot(self, scan: _Scan) -> CandidateStats:
        return CandidateStats(
            n_items=self._n_items,
            n_groups=len(self._groups),
            n_pivots=len(self._pivots),
            table_distances=self.table_distances,
            exact_distances=scan.exact,
            pruned_pairs=scan.pruned,
            certified_pairs=scan.certified,
            certified_complete=scan.complete,
        )


__all__ = ["BOUND_TOLERANCE", "CandidateStats", "PivotIndex"]
