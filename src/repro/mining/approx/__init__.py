"""Sublinear mining over encrypted query logs via pivot indexing.

The exact pipeline's all-pairs distance matrix is Θ(n²) space and time — a
dead end past ~10⁵ logged queries.  Because the paper's DPE schemes
preserve distances *exactly*, metric-space indexing is sound on the
ciphertext side without decrypting anything; this package exploits that:

* :class:`~repro.mining.approx.pivots.PivotIndex` — duplicate-group
  collapsing plus an m-landmark (LAESA-style) distance table answering
  range and kNN candidate queries through triangle-inequality bounds, with
  exact evaluation only inside the bound gap;
* :mod:`~repro.mining.approx.algorithms` — ``approx_dbscan``,
  ``approx_outliers``, ``approx_knn`` / ``approx_knn_all`` built on those
  queries, bit-for-bit equal to the exact algorithms whenever the returned
  :class:`~repro.mining.approx.pivots.CandidateStats` certify completeness;
* :class:`~repro.mining.approx.window.SlidingWindowQueryLog` and
  :class:`~repro.mining.approx.window.ApproxStreamMiner` — bounded-memory
  streaming with seeded, decayed eviction;
* :class:`~repro.mining.approx.sharded.ShardedIncrementalMatrix` — O(1)
  sharded appends merged into the index at mine time.

The non-metric access-area measure (Definition 5 averages over a
pair-dependent attribute union, which breaks the triangle inequality) is
handled safely: it declares ``is_metric = False`` and gets no pivots, so
its queries fall back to a full — still exact — distinct-group scan.
"""

from repro.mining.approx.algorithms import (
    approx_dbscan,
    approx_knn,
    approx_knn_all,
    approx_outliers,
)
from repro.mining.approx.pivots import BOUND_TOLERANCE, CandidateStats, PivotIndex
from repro.mining.approx.sharded import ShardedIncrementalMatrix
from repro.mining.approx.window import ApproxStreamMiner, SlidingWindowQueryLog

__all__ = [
    "ApproxStreamMiner",
    "BOUND_TOLERANCE",
    "CandidateStats",
    "PivotIndex",
    "ShardedIncrementalMatrix",
    "SlidingWindowQueryLog",
    "approx_dbscan",
    "approx_knn",
    "approx_knn_all",
    "approx_outliers",
]
