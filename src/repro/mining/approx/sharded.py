"""Sharded ingestion for the pivot index: cheap appends, merge at mine time.

:class:`~repro.mining.incremental.IncrementalDistanceMatrix` pays Θ(n) per
appended query *inside the append*, serialised on one lock — at serving-layer
concurrency the appending sessions queue up behind the distance work.  A
:class:`ShardedIncrementalMatrix` decouples the two: :meth:`append` only
assigns global ids and buffers entries into one of ``n_shards`` shards
(per-shard locks, O(1) per entry), and the pivot-table work — O(m) per
*distinct* new characteristic — happens in :meth:`drain`, which merges all
shard buffers in global id order the first time an artefact is requested.

Because mining happens over the merged, id-ordered sequence, the artefacts
are independent of which thread appended which batch given the id
assignment order, and carry the same exactness certificate as every
pivot-index consumer (see :mod:`repro.mining.approx.algorithms`).  The
class satisfies the :class:`~repro.cryptdb.proxy.StreamSink` protocol, so
:meth:`~repro.cryptdb.proxy.ProxySession.stream` can feed it directly.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.exceptions import MiningError
from repro.mining.approx.algorithms import (
    approx_dbscan,
    approx_knn,
    approx_knn_all,
    approx_outliers,
)
from repro.mining.approx.pivots import CandidateStats, PivotIndex
from repro.mining.dbscan import DbscanResult
from repro.mining.incremental import StreamingQueryLog
from repro.mining.outliers import OutlierResult
from repro.sql.ast import Query
from repro.sql.log import LogEntry

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.dpe import DistanceMeasure
    from repro.core.domains import DomainCatalog
    from repro.db.database import Database


class _Shard:
    """One append buffer with its own lock."""

    __slots__ = ("buffer", "lock")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.buffer: list[tuple[int, LogEntry]] = []


class ShardedIncrementalMatrix:
    """Pivot-indexed mining artefacts with sharded, O(1)-per-entry appends.

    ``append`` distributes entries across shards by ``id % n_shards``
    (deterministic given the id assignment order) without touching the
    index; ``drain`` — called implicitly by every artefact accessor —
    merges the buffered entries in global id order, characterises them in
    batch and adds them to the shared
    :class:`~repro.mining.approx.pivots.PivotIndex`.  Entries also land in
    an internal append-only log so the measure's batch characterisation
    sees a real :class:`~repro.core.dpe.LogContext`.

    Mining parameters mirror
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix`; accessors
    return ``(result, stats)`` pairs whose stats certify exactness unless a
    ``max_candidates`` budget capped a query.
    """

    def __init__(
        self,
        measure: "DistanceMeasure",
        *,
        n_shards: int = 4,
        n_pivots: int = 8,
        seed: int = 0,
        max_candidates: int | None = None,
        database: "Database | None" = None,
        domains: "DomainCatalog | None" = None,
        knn_k: int = 3,
        outlier_p: float = 0.95,
        outlier_d: float = 0.9,
        dbscan_eps: float = 0.5,
        dbscan_min_points: int = 3,
    ) -> None:
        from repro.core.dpe import LogContext

        if n_shards < 1:
            raise MiningError("n_shards must be at least 1")
        self._measure = measure
        self._shards = [_Shard() for _ in range(n_shards)]
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._log = StreamingQueryLog()
        self._context = LogContext(log=self._log, database=database, domains=domains)
        self._index = PivotIndex(measure, n_pivots=n_pivots, seed=seed)
        self._merge_lock = threading.RLock()
        self._max_candidates = max_candidates
        self._knn_k = knn_k
        self._outlier_p = outlier_p
        self._outlier_d = outlier_d
        self._dbscan_eps = dbscan_eps
        self._dbscan_min_points = dbscan_min_points

    @property
    def n_shards(self) -> int:
        """Number of append shards."""
        return len(self._shards)

    @property
    def n_items(self) -> int:
        """Number of entries merged into the index so far."""
        with self._merge_lock:
            return self._index.n_items

    @property
    def pending(self) -> int:
        """Entries buffered in shards, not yet merged."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.buffer)
        return total

    @property
    def index(self) -> PivotIndex:
        """The merged pivot index (drained state only)."""
        return self._index

    def append(self, items: Iterable[LogEntry | Query | str]) -> tuple[LogEntry, ...]:
        """Buffer a batch across the shards (no distance work).

        Ids are assigned atomically for the whole batch, so a batch is
        contiguous in the merged order even under concurrent appends.
        Returns the normalized entries, making the matrix a
        :class:`~repro.cryptdb.proxy.StreamSink`.
        """
        batch = tuple(StreamingQueryLog._normalize(item) for item in items)
        if not batch:
            return batch
        with self._id_lock:
            start = self._next_id
            self._next_id += len(batch)
        per_shard: dict[int, list[tuple[int, LogEntry]]] = {}
        for offset, entry in enumerate(batch):
            item_id = start + offset
            per_shard.setdefault(item_id % len(self._shards), []).append(
                (item_id, entry)
            )
        for shard_id, chunk in per_shard.items():
            shard = self._shards[shard_id]
            with shard.lock:
                shard.buffer.extend(chunk)
        return batch

    def drain(self) -> int:
        """Merge all buffered entries into the index, in global id order.

        Returns the number of entries merged.  Idempotent and cheap when
        nothing is pending; every artefact accessor calls it first.
        """
        with self._merge_lock:
            pending: list[tuple[int, LogEntry]] = []
            for shard in self._shards:
                with shard.lock:
                    if shard.buffer:
                        pending.extend(shard.buffer)
                        shard.buffer = []
            if not pending:
                return 0
            pending.sort(key=lambda pair: pair[0])
            entries = tuple(entry for _, entry in pending)
            self._log.append(entries)
            characteristics = self._measure.characteristics(
                [entry.query for entry in entries], self._context
            )
            # The per-context memo snapshots the log by identity; drop it so
            # the next drain (over the grown log) recharacterises correctly.
            self._measure.invalidate_cache(self._context)
            for (item_id, _), characteristic in zip(pending, characteristics):
                self._index.add(item_id, characteristic)
            return len(pending)

    # -- artefact accessors ------------------------------------------------ #

    def item_ids(self) -> tuple[int, ...]:
        """All merged item ids, ascending (drains first)."""
        with self._merge_lock:
            self.drain()
            return self._index.item_ids()

    def dbscan(self) -> tuple[DbscanResult, CandidateStats]:
        """DBSCAN over every appended entry (drains first)."""
        with self._merge_lock:
            self.drain()
            return approx_dbscan(
                self._index,
                eps=self._dbscan_eps,
                min_points=self._dbscan_min_points,
                max_candidates=self._max_candidates,
            )

    def outliers(self) -> tuple[OutlierResult, CandidateStats]:
        """DB(p, D)-outliers over every appended entry (drains first)."""
        with self._merge_lock:
            self.drain()
            return approx_outliers(
                self._index,
                p=self._outlier_p,
                d=self._outlier_d,
                max_candidates=self._max_candidates,
            )

    def knn(self, item_id: int) -> tuple[tuple[int, ...], CandidateStats]:
        """The ``knn_k`` nearest entries of ``item_id`` (drains first)."""
        with self._merge_lock:
            self.drain()
            return approx_knn(
                self._index,
                item_id,
                k=min(self._knn_k, max(self._index.n_items - 1, 1)),
                max_candidates=self._max_candidates,
            )

    def knn_all(self) -> tuple[dict[int, tuple[int, ...]], CandidateStats]:
        """The nearest neighbours of every entry, keyed by id (drains first)."""
        with self._merge_lock:
            self.drain()
            return approx_knn_all(
                self._index,
                k=min(self._knn_k, max(self._index.n_items - 1, 1)),
                max_candidates=self._max_candidates,
            )


__all__ = ["ShardedIncrementalMatrix"]
