"""Sliding-window streaming logs with pivot-indexed mining.

An unbounded :class:`~repro.mining.incremental.StreamingQueryLog` grows its
artefacts forever; a :class:`SlidingWindowQueryLog` caps the live set at
``window`` entries, evicting one entry per overflow.  Eviction is governed
by a *decay* parameter: ``decay = 0`` is plain FIFO (always evict the
oldest), while ``0 < decay < 1`` evicts a geometrically age-biased victim —
the entry ``a`` positions from the oldest is chosen with probability
proportional to ``decay^a`` — so recent entries survive longer in
expectation but old entries are not immortal.  The draw comes from a
``random.Random(seed)`` owned by the log, never module-level state, so a
fixed seed and append sequence replays the identical eviction (and
therefore mining) history.

:class:`ApproxStreamMiner` subscribes to such a window and maintains a
:class:`~repro.mining.approx.pivots.PivotIndex` over exactly the live
entries — evictions remove items, so the pivot table stays O(window · m)
no matter how long the stream runs.  The miner satisfies the
:class:`~repro.cryptdb.proxy.StreamSink` protocol, so
:meth:`~repro.cryptdb.proxy.ProxySession.stream` can feed encrypted queries
straight into windowed sublinear mining.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.crypto.integrity import GENESIS_HEAD, ChainCheckpoint, verify_checkpoint
from repro.exceptions import IntegrityError, MiningError
from repro.mining.approx.algorithms import (
    approx_dbscan,
    approx_knn,
    approx_knn_all,
    approx_outliers,
)
from repro.mining.approx.pivots import CandidateStats, PivotIndex
from repro.mining.dbscan import DbscanResult
from repro.mining.incremental import StreamingQueryLog
from repro.mining.outliers import OutlierResult
from repro.sql.ast import Query
from repro.sql.log import LogEntry

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.dpe import DistanceMeasure
    from repro.core.domains import DomainCatalog
    from repro.db.database import Database


class SlidingWindowQueryLog(StreamingQueryLog):
    """A streaming log holding at most ``window`` live entries.

    Each entry receives a monotonically increasing *id* at append time; ids
    are stable for the entry's lifetime and are how window-aware consumers
    (the :class:`ApproxStreamMiner`) track evictions.  Plain positional
    indexing still works — positions shift as entries leave, so consumers
    that assume append-only growth (the unbounded
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix`) must not
    subscribe to a window; use the id-aware subscriptions instead.

    Appends, eviction draws and all subscriber notifications run atomically
    under the inherited :attr:`~repro.mining.incremental.StreamingQueryLog.lock`.
    """

    def __init__(
        self,
        entries: Iterable[LogEntry] = (),
        *,
        window: int,
        decay: float = 0.0,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise MiningError("window must be at least 1")
        if not 0.0 <= decay < 1.0:
            raise MiningError("decay must lie in [0, 1)")
        super().__init__(())
        self._window = window
        self._decay = decay
        self._eviction_rng = random.Random(seed)
        self._ids: list[int] = []
        self._next_id = 0
        self._evicted = 0
        self._id_subscribers: list[
            Callable[[tuple[int, ...], tuple[LogEntry, ...]], None]
        ] = []
        self._eviction_subscribers: list[
            Callable[[tuple[tuple[int, LogEntry], ...]], None]
        ] = []
        # Head after each ingested entry: eviction removes live entries but
        # never touches the ingest chain, so verify_chain() needs recorded
        # heads to check prefixes that recomputation can no longer reach.
        # (The base __init__ above only folds an empty batch, so this is
        # safe to initialize afterwards.)
        self._chain_heads: list[str] = []  # guarded-by: _lock
        if entries:
            self.append(entries)

    @property
    def window(self) -> int:
        """Maximum number of live entries."""
        return self._window

    @property
    def decay(self) -> float:
        """Eviction age bias (0 = FIFO, towards 1 = nearly uniform)."""
        return self._decay

    @property
    def evictions(self) -> int:
        """Total entries evicted so far."""
        with self._lock:
            return self._evicted

    @property
    def total_appended(self) -> int:
        """Total entries ever appended (live + evicted)."""
        with self._lock:
            return self._next_id

    def live_ids(self) -> tuple[int, ...]:
        """The ids of the live entries, oldest first (ascending)."""
        with self._lock:
            return tuple(self._ids)

    def subscribe_with_ids(
        self, callback: Callable[[tuple[int, ...], tuple[LogEntry, ...]], None]
    ) -> None:
        """Register ``callback(ids, batch)`` for every future appended batch."""
        with self._lock:
            self._id_subscribers.append(callback)

    def subscribe_evictions(
        self, callback: Callable[[tuple[tuple[int, LogEntry], ...]], None]
    ) -> None:
        """Register ``callback(((id, entry), ...))`` for every eviction round."""
        with self._lock:
            self._eviction_subscribers.append(callback)

    def append(self, items: Iterable[LogEntry | Query | str]) -> tuple[LogEntry, ...]:
        """Append a batch, then evict down to the window capacity.

        Append subscribers (positional and id-aware) observe the grown log
        *before* eviction; eviction subscribers run after, still inside the
        same atomic step, so derived state never sees a half-applied batch.
        """
        batch = tuple(self._normalize(item) for item in items)
        if not batch:
            return batch
        with self._lock:
            start = self._next_id
            ids = tuple(range(start, start + len(batch)))
            self._next_id += len(batch)
            self._entries.extend(batch)
            self._extend_chain(batch)
            self._ids.extend(ids)
            self._appends += 1
            for callback in self._subscribers:
                callback(batch)
            for id_callback in self._id_subscribers:
                id_callback(ids, batch)
            evicted = self._evict_overflow()
            if evicted:
                for eviction_callback in self._eviction_subscribers:
                    eviction_callback(evicted)
        return batch

    def _extend_chain(self, batch: tuple[LogEntry, ...]) -> None:  # holds: _lock
        """Fold a batch into the ingest chain, recording per-entry heads."""
        for entry in batch:
            self._chain_heads.append(self._chain.extend(entry.sql))

    def verify_chain(self, checkpoint: ChainCheckpoint, key: bytes) -> str:
        """Verify the window's *ingest history* extends ``checkpoint``.

        A window legitimately discards live entries (eviction), so the
        chain commits to the sequence of *appends*, not the live set:
        recomputing from the surviving entries is impossible once eviction
        ran.  Verification instead checks the recorded head at the
        checkpoint's length — a provider that rolls the window back
        (pretending later appends never happened) shortens the ingest chain
        below the signed length, or presents a mismatching head, and is
        rejected with :class:`~repro.exceptions.IntegrityError`.  Returns
        the current ingest head on success.
        """
        verify_checkpoint(key, checkpoint)
        with self._lock:
            if checkpoint.length > self._chain.length:
                raise IntegrityError(
                    f"window log rollback detected: checkpoint commits to "
                    f"{checkpoint.length} ingested entries but the window has "
                    f"seen only {self._chain.length}"
                )
            if checkpoint.length == 0:
                head = GENESIS_HEAD
            else:
                head = self._chain_heads[checkpoint.length - 1]
            if head != checkpoint.head:
                raise IntegrityError(
                    f"window log history mutated: ingest head after "
                    f"{checkpoint.length} entries does not match the signed checkpoint"
                )
            return self._chain.head

    def _evict_overflow(self) -> tuple[tuple[int, LogEntry], ...]:
        evicted: list[tuple[int, LogEntry]] = []
        while len(self._entries) > self._window:
            live = len(self._entries)
            if self._decay <= 0.0:
                position = 0
            else:
                draw = self._eviction_rng.random()
                # Inverse-CDF of the geometric distribution with success
                # probability (1 - decay): age rank a (0 = oldest) is evicted
                # with weight decay^a, clamped to the live set — old entries
                # go preferentially, recent ones survive in expectation.
                position = min(
                    int(math.log(max(draw, 1e-300)) / math.log(self._decay)),
                    live - 1,
                )
            evicted.append((self._ids.pop(position), self._entries.pop(position)))
            self._evicted += 1
        return tuple(evicted)


class ApproxStreamMiner:
    """Pivot-indexed mining artefacts over a sliding window's live entries.

    Subscribes to a :class:`SlidingWindowQueryLog` (creating one when none
    is given) and keeps a :class:`~repro.mining.approx.pivots.PivotIndex`
    in lock-step with it: appended entries are characterised in batch and
    added under their window ids, evicted entries are removed.  The miner
    is a :class:`~repro.cryptdb.proxy.StreamSink` — :meth:`append` forwards
    to the window — and every accessor runs under the window's lock, so
    results always reflect a complete prefix of appends.

    Mining parameters mirror
    :class:`~repro.mining.incremental.IncrementalDistanceMatrix`; each
    accessor returns ``(result, stats)`` where the stats certify bit-for-bit
    equality with the exact pipeline over the live entries (in id order)
    unless ``max_candidates`` capped a query.
    """

    def __init__(
        self,
        measure: "DistanceMeasure",
        window_log: SlidingWindowQueryLog | None = None,
        *,
        window: int = 1024,
        decay: float = 0.0,
        seed: int = 0,
        n_pivots: int = 8,
        max_candidates: int | None = None,
        database: "Database | None" = None,
        domains: "DomainCatalog | None" = None,
        knn_k: int = 3,
        outlier_p: float = 0.95,
        outlier_d: float = 0.9,
        dbscan_eps: float = 0.5,
        dbscan_min_points: int = 3,
    ) -> None:
        from repro.core.dpe import LogContext

        if window_log is None:
            window_log = SlidingWindowQueryLog(window=window, decay=decay, seed=seed)
        self._measure = measure
        self._window_log = window_log
        self._context = LogContext(log=window_log, database=database, domains=domains)
        self._index = PivotIndex(measure, n_pivots=n_pivots, seed=seed)
        self._max_candidates = max_candidates
        self._knn_k = knn_k
        self._outlier_p = outlier_p
        self._outlier_d = outlier_d
        self._dbscan_eps = dbscan_eps
        self._dbscan_min_points = dbscan_min_points
        with window_log.lock:
            window_log.subscribe_with_ids(self._on_append)
            window_log.subscribe_evictions(self._on_evict)
            live = window_log.live_ids()
            if live:
                self._ingest(live, tuple(window_log))

    @property
    def window_log(self) -> SlidingWindowQueryLog:
        """The sliding window feeding this miner."""
        return self._window_log

    @property
    def index(self) -> PivotIndex:
        """The maintained pivot index (live entries only)."""
        return self._index

    @property
    def n_items(self) -> int:
        """Number of live (indexed) entries."""
        with self._window_log.lock:
            return self._index.n_items

    def item_ids(self) -> tuple[int, ...]:
        """Live window ids, ascending — the positional order of results."""
        with self._window_log.lock:
            return self._index.item_ids()

    def append(self, items: Iterable[LogEntry | Query | str]) -> tuple[LogEntry, ...]:
        """Append a batch to the window (and thus to the index).

        Makes the miner a :class:`~repro.cryptdb.proxy.StreamSink`, so a
        proxy session can stream rewritten queries directly into windowed
        mining.
        """
        return self._window_log.append(items)

    def _on_append(self, ids: tuple[int, ...], batch: tuple[LogEntry, ...]) -> None:
        self._ingest(ids, batch)

    def _ingest(self, ids: tuple[int, ...], batch: tuple[LogEntry, ...]) -> None:
        characteristics = self._measure.characteristics(
            [entry.query for entry in batch], self._context
        )
        # The measure's per-context memo snapshots the log by identity and
        # cannot see growth or eviction; drop it so batch calls stay correct.
        self._measure.invalidate_cache(self._context)
        for item_id, characteristic in zip(ids, characteristics):
            self._index.add(item_id, characteristic)

    def _on_evict(self, evicted: tuple[tuple[int, LogEntry], ...]) -> None:
        for item_id, _entry in evicted:
            self._index.remove(item_id)
        self._measure.invalidate_cache(self._context)

    # -- artefact accessors ------------------------------------------------ #

    def dbscan(self) -> tuple[DbscanResult, CandidateStats]:
        """DBSCAN over the live window (positional over ascending ids)."""
        with self._window_log.lock:
            return approx_dbscan(
                self._index,
                eps=self._dbscan_eps,
                min_points=self._dbscan_min_points,
                max_candidates=self._max_candidates,
            )

    def outliers(self) -> tuple[OutlierResult, CandidateStats]:
        """DB(p, D)-outliers over the live window."""
        with self._window_log.lock:
            return approx_outliers(
                self._index,
                p=self._outlier_p,
                d=self._outlier_d,
                max_candidates=self._max_candidates,
            )

    def knn(self, item_id: int) -> tuple[tuple[int, ...], CandidateStats]:
        """The ``knn_k`` nearest live items of window id ``item_id``."""
        with self._window_log.lock:
            return approx_knn(
                self._index,
                item_id,
                k=min(self._knn_k, max(self._index.n_items - 1, 1)),
                max_candidates=self._max_candidates,
            )

    def knn_all(self) -> tuple[dict[int, tuple[int, ...]], CandidateStats]:
        """The nearest neighbours of every live item, keyed by window id."""
        with self._window_log.lock:
            return approx_knn_all(
                self._index,
                k=min(self._knn_k, max(self._index.n_items - 1, 1)),
                max_candidates=self._max_candidates,
            )


__all__ = ["ApproxStreamMiner", "SlidingWindowQueryLog"]
