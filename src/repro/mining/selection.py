"""Deterministic partial selection over distance arrays.

The mining artefacts are defined with explicit tie-breaks — k-nearest
neighbours order candidates by ``(distance, index)`` ascending, outlier
rankings by ``(-score, index)`` — so a plain ``np.argpartition`` is not
enough: partitioning compares distances only and returns ties in an
arbitrary (platform-dependent) order.  The helpers here combine
``argpartition``'s O(n) selection with an explicit tie-break pass: partition
to find the k-th order statistic, take *every* element on the boundary
value, sort only that (small) candidate set under the documented tie-break,
and truncate.  The result is bit-for-bit equal to fully sorting the input —
tested against the sort-based reference — at partial-selection cost.

Used by :class:`~repro.mining.incremental.IncrementalDistanceMatrix` (kNN
maintenance and the memoized ``top_outliers`` ranking) and by the pivot
index layer (:mod:`repro.mining.approx`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MiningError


def smallest_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest ``values``, ties broken by smaller index.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` (bit-for-bit,
    including NaN-free ordering of ties) but runs in O(n + t log t) where
    ``t`` is the candidate set around the k-th order statistic instead of
    O(n log n).
    """
    array = np.asarray(values)
    n = array.shape[0]
    if not 0 <= k <= n:
        raise MiningError(f"cannot select {k} smallest of {n} values")
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k == n:
        return np.argsort(array, kind="stable").astype(np.int64, copy=False)
    partitioned = np.argpartition(array, k - 1)
    boundary = array[partitioned[k - 1]]
    # Everything strictly below the boundary is certainly selected; the
    # boundary value itself may be tied, so gather all of its occurrences
    # and resolve the tie by index.
    candidates = np.flatnonzero(array <= boundary)
    order = np.argsort(array[candidates], kind="stable")
    return candidates[order][:k].astype(np.int64, copy=False)


def largest_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest ``values``, ties broken by smaller index.

    The descending counterpart of :func:`smallest_indices`: equivalent to
    sorting by ``(-value, index)`` and truncating, at partial-selection
    cost.  This is the ranking order of
    :func:`~repro.mining.outliers.top_n_outliers`.
    """
    array = np.asarray(values)
    n = array.shape[0]
    if not 0 <= k <= n:
        raise MiningError(f"cannot select {k} largest of {n} values")
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k == n:
        return np.argsort(-array, kind="stable").astype(np.int64, copy=False)
    partitioned = np.argpartition(-array, k - 1)
    boundary = array[partitioned[k - 1]]
    candidates = np.flatnonzero(array >= boundary)
    order = np.argsort(-array[candidates], kind="stable")
    return candidates[order][:k].astype(np.int64, copy=False)


__all__ = ["largest_indices", "smallest_indices"]
