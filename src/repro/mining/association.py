"""Association-rule mining over query logs (Apriori).

The paper's conclusion points out that result/feature equivalence also makes
*association-rule mining over encrypted SQL logs* possible (Aligon et al.
[17] mine OLAP query logs for proactive personalisation).  This module
provides the classic Apriori algorithm over transactions of hashable items —
for query logs, the transactions are the per-query feature sets (or token
sets), so the same run works on plaintext and on DET-encrypted items and
produces isomorphic itemsets and rules.

The implementation is deliberately itemset-generic; nothing in it knows about
SQL.  ``mine_query_log`` adapts a :class:`~repro.sql.log.QueryLog` by using
each query's feature set as its transaction.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations

from repro.exceptions import MiningError
from repro.sql.features import feature_set
from repro.sql.log import QueryLog

#: A transaction is a set of hashable items.
Transaction = frozenset


@dataclass(frozen=True)
class FrequentItemset:
    """An itemset together with its absolute support count."""

    items: frozenset
    support_count: int

    def support(self, n_transactions: int) -> float:
        """Relative support in a database of ``n_transactions`` transactions."""
        return self.support_count / n_transactions


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with support and confidence."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        left = ", ".join(sorted(map(str, self.antecedent)))
        right = ", ".join(sorted(map(str, self.consequent)))
        return f"{{{left}}} -> {{{right}}} (supp={self.support:.2f}, conf={self.confidence:.2f})"


def apriori(
    transactions: Sequence[Iterable],
    *,
    min_support: float,
    max_length: int | None = None,
) -> list[FrequentItemset]:
    """Find all frequent itemsets with relative support >= ``min_support``.

    The standard level-wise Apriori: candidates of size k are joined from
    frequent itemsets of size k-1 and pruned by the downward-closure
    property before counting.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError("min_support must lie in (0, 1]")
    transaction_sets = [frozenset(t) for t in transactions]
    if not transaction_sets:
        raise MiningError("cannot mine an empty transaction database")
    n = len(transaction_sets)
    min_count = max(1, math.ceil(min_support * n - 1e-9))

    # L1
    counts: dict[frozenset, int] = {}
    for transaction in transaction_sets:
        for item in transaction:
            key = frozenset({item})
            counts[key] = counts.get(key, 0) + 1
    current = {itemset for itemset, count in counts.items() if count >= min_count}
    frequent: dict[frozenset, int] = {
        itemset: counts[itemset] for itemset in current
    }

    size = 1
    while current and (max_length is None or size < max_length):
        size += 1
        candidates = _generate_candidates(current, size)
        if not candidates:
            break
        candidate_counts = {candidate: 0 for candidate in candidates}
        for transaction in transaction_sets:
            for candidate in candidates:
                if candidate <= transaction:
                    candidate_counts[candidate] += 1
        current = {
            candidate for candidate, count in candidate_counts.items() if count >= min_count
        }
        for candidate in current:
            frequent[candidate] = candidate_counts[candidate]

    return sorted(
        (FrequentItemset(items, count) for items, count in frequent.items()),
        key=lambda f: (len(f.items), -f.support_count, sorted(map(str, f.items))),
    )


def _generate_candidates(previous_level: set[frozenset], size: int) -> set[frozenset]:
    """Join step + prune step of Apriori candidate generation."""
    candidates = set()
    previous = list(previous_level)
    for i in range(len(previous)):
        for j in range(i + 1, len(previous)):
            union = previous[i] | previous[j]
            if len(union) != size:
                continue
            # Downward closure: every (size-1)-subset must be frequent.
            if all(
                frozenset(subset) in previous_level for subset in combinations(union, size - 1)
            ):
                candidates.add(union)
    return candidates


def association_rules(
    itemsets: Sequence[FrequentItemset],
    n_transactions: int,
    *,
    min_confidence: float,
) -> list[AssociationRule]:
    """Derive all rules with confidence >= ``min_confidence`` from frequent itemsets."""
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError("min_confidence must lie in (0, 1]")
    support_of = {itemset.items: itemset.support_count for itemset in itemsets}
    rules: list[AssociationRule] = []
    for itemset in itemsets:
        if len(itemset.items) < 2:
            continue
        for antecedent_size in range(1, len(itemset.items)):
            for antecedent_items in combinations(sorted(itemset.items, key=str), antecedent_size):
                antecedent = frozenset(antecedent_items)
                if antecedent not in support_of:
                    continue
                confidence = itemset.support_count / support_of[antecedent]
                if confidence >= min_confidence:
                    rules.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=itemset.items - antecedent,
                            support=itemset.support_count / n_transactions,
                            confidence=confidence,
                        )
                    )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(sorted(map(str, r.antecedent)))))
    return rules


def mine_query_log(
    log: QueryLog,
    *,
    min_support: float = 0.2,
    min_confidence: float = 0.7,
    transaction_of: Callable | None = None,
) -> tuple[list[FrequentItemset], list[AssociationRule]]:
    """Mine frequent feature sets and association rules from a query log.

    ``transaction_of`` maps a query to its transaction; the default is the
    SnipSuggest feature set, so running this on a log encrypted with the
    structure (or token) scheme yields itemsets/rules that are the encryption
    of the plaintext ones — the property the paper's conclusion points to.
    """
    transaction_of = transaction_of or feature_set
    transactions = [transaction_of(entry.query) for entry in log]
    itemsets = apriori(transactions, min_support=min_support)
    rules = association_rules(itemsets, len(transactions), min_confidence=min_confidence)
    return itemsets, rules
