"""DBSCAN over a precomputed distance matrix (Ester et al., KDD 1996).

The implementation is the textbook algorithm: points with at least
``min_points`` neighbours within ``eps`` (including themselves) are core
points; clusters are the transitive closure of density-reachability from core
points; non-core points within ``eps`` of a core point join its cluster
(border points); everything else is noise (label ``-1``).

Determinism: points are visited in index order and clusters are numbered in
order of discovery, so the labelling is a pure function of the distance
matrix — identical matrices (plaintext vs encrypted) yield identical labels,
which is exactly what the mining-equality experiments assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import pairwise_view

#: Label used for noise points.
NOISE = -1


@dataclass(frozen=True)
class DbscanResult:
    """Labels plus bookkeeping from a DBSCAN run."""

    labels: tuple[int, ...]
    core_points: frozenset[int]
    n_clusters: int

    def cluster_members(self, label: int) -> tuple[int, ...]:
        """Indices of the points assigned to ``label``."""
        return tuple(i for i, assigned in enumerate(self.labels) if assigned == label)

    def noise_points(self) -> tuple[int, ...]:
        """Indices labelled as noise."""
        return self.cluster_members(NOISE)


def dbscan(distance_matrix: np.ndarray, *, eps: float, min_points: int) -> DbscanResult:
    """Cluster items given their pairwise distances.

    Parameters
    ----------
    distance_matrix:
        Square symmetric matrix of pairwise distances, or a
        :class:`~repro.mining.matrix.CondensedDistanceMatrix` (the square
        form is never materialised in that case).
    eps:
        Neighbourhood radius (inclusive: ``d <= eps``).
    min_points:
        Minimum neighbourhood size (including the point itself) for a core point.
    """
    if eps < 0:
        raise MiningError("eps must be non-negative")
    if min_points < 1:
        raise MiningError("min_points must be at least 1")
    distances = pairwise_view(distance_matrix)
    n = distances.n_items

    neighborhoods = [np.flatnonzero(distances.row(i) <= eps) for i in range(n)]
    is_core = np.array([len(neighborhoods[i]) >= min_points for i in range(n)])

    labels = np.full(n, NOISE, dtype=int)
    cluster = 0
    for start in range(n):
        if labels[start] != NOISE or not is_core[start]:
            continue
        # Breadth-first expansion of the density-reachable set from `start`.
        labels[start] = cluster
        queue: deque[int] = deque(neighborhoods[start].tolist())
        while queue:
            point = queue.popleft()
            if labels[point] == NOISE:
                labels[point] = cluster
                if is_core[point]:
                    queue.extend(neighborhoods[point].tolist())
        cluster += 1

    return DbscanResult(
        labels=tuple(int(label) for label in labels),
        core_points=frozenset(int(i) for i in np.flatnonzero(is_core)),
        n_clusters=cluster,
    )
