"""Comparing mining results: cluster-agreement metrics.

The paper's correctness claim is that mining results on encrypted data equal
those on plaintext data.  Exact equality of label vectors is too strict in
general (cluster numbering is arbitrary), so the experiments use:

* :func:`clusterings_equivalent` — equality up to a relabelling (the right
  notion of "the same clustering"),
* :func:`adjusted_rand_index` — 1.0 iff the partitions agree, robust partial
  credit otherwise (reported in EXPERIMENTS.md),
* :func:`normalized_mutual_information` — a second agreement score to guard
  against metric-specific artefacts.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence

from repro.exceptions import MiningError


def _check_same_length(labels_a: Sequence[object], labels_b: Sequence[object]) -> int:
    if len(labels_a) != len(labels_b):
        raise MiningError("label vectors must have the same length")
    if not labels_a:
        raise MiningError("label vectors must not be empty")
    return len(labels_a)


def clusterings_equivalent(labels_a: Sequence[object], labels_b: Sequence[object]) -> bool:
    """True if the two label vectors describe the same partition.

    The mapping between label values may differ; what must agree is which
    items are grouped together.
    """
    n = _check_same_length(labels_a, labels_b)
    forward: dict[object, object] = {}
    backward: dict[object, object] = {}
    for i in range(n):
        a, b = labels_a[i], labels_b[i]
        if forward.setdefault(a, b) != b:
            return False
        if backward.setdefault(b, a) != a:
            return False
    return True


def confusion_counts(
    labels_a: Sequence[object], labels_b: Sequence[object]
) -> dict[tuple[object, object], int]:
    """The contingency table of two labelings as a sparse dictionary."""
    _check_same_length(labels_a, labels_b)
    table: dict[tuple[object, object], int] = defaultdict(int)
    for a, b in zip(labels_a, labels_b):
        table[(a, b)] += 1
    return dict(table)


def adjusted_rand_index(labels_a: Sequence[object], labels_b: Sequence[object]) -> float:
    """Adjusted Rand index between two labelings (1.0 = identical partitions)."""
    n = _check_same_length(labels_a, labels_b)
    table = confusion_counts(labels_a, labels_b)
    counts_a = Counter(labels_a)
    counts_b = Counter(labels_b)

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    sum_cells = sum(comb2(count) for count in table.values())
    sum_a = sum(comb2(count) for count in counts_a.values())
    sum_b = sum(comb2(count) for count in counts_b.values())
    total = comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    maximum = (sum_a + sum_b) / 2.0
    if math.isclose(maximum, expected):
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def normalized_mutual_information(
    labels_a: Sequence[object], labels_b: Sequence[object]
) -> float:
    """Normalized mutual information between two labelings (1.0 = identical)."""
    n = _check_same_length(labels_a, labels_b)
    table = confusion_counts(labels_a, labels_b)
    counts_a = Counter(labels_a)
    counts_b = Counter(labels_b)

    mutual_information = 0.0
    for (a, b), joint in table.items():
        p_joint = joint / n
        p_a = counts_a[a] / n
        p_b = counts_b[b] / n
        mutual_information += p_joint * math.log(p_joint / (p_a * p_b))

    def entropy(counts: Counter) -> float:
        return -sum((c / n) * math.log(c / n) for c in counts.values())

    h_a, h_b = entropy(counts_a), entropy(counts_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    denominator = math.sqrt(h_a * h_b)
    if denominator == 0.0:
        return 1.0 if mutual_information == 0.0 else 0.0
    return max(0.0, min(1.0, mutual_information / denominator))
