"""Distance-based outlier detection (Knorr, Ng & Tucakov, VLDBJ 2000).

An object ``o`` is a *DB(p, D)-outlier* if at least fraction ``p`` of all
objects lie at distance greater than ``D`` from ``o``.  The module also
provides the common "top-n by k-NN distance" ranking variant, which the
benchmark harness uses to compare outlier rankings between the plaintext and
encrypted sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MiningError
from repro.mining.matrix import pairwise_view


@dataclass(frozen=True)
class OutlierResult:
    """Outcome of a DB(p, D)-outlier scan."""

    outliers: tuple[int, ...]
    fraction_far: tuple[float, ...]
    p: float
    d: float

    def is_outlier(self, index: int) -> bool:
        """True if the item at ``index`` was flagged."""
        return index in set(self.outliers)


def distance_based_outliers(
    distance_matrix: np.ndarray, *, p: float, d: float
) -> OutlierResult:
    """Find all DB(p, D)-outliers.

    Parameters
    ----------
    distance_matrix:
        Square symmetric matrix of pairwise distances, or a condensed
        :class:`~repro.mining.matrix.CondensedDistanceMatrix` (rows are
        scanned one at a time, the square form is never materialised).
    p:
        Required fraction (0 < p <= 1) of objects farther than ``d``.
    d:
        Distance threshold ``D``.
    """
    if not 0.0 < p <= 1.0:
        raise MiningError("p must lie in (0, 1]")
    if d < 0:
        raise MiningError("d must be non-negative")
    matrix = pairwise_view(distance_matrix)
    n = matrix.n_items
    if n == 1:
        return OutlierResult(outliers=(), fraction_far=(0.0,), p=p, d=d)

    fractions: list[float] = []
    outliers: list[int] = []
    for i in range(n):
        others = np.delete(matrix.row(i), i)
        fraction = float(np.count_nonzero(others > d)) / (n - 1)
        fractions.append(fraction)
        if fraction >= p:
            outliers.append(i)
    return OutlierResult(
        outliers=tuple(outliers), fraction_far=tuple(fractions), p=p, d=d
    )


def top_n_outliers(distance_matrix: np.ndarray, *, n_outliers: int, k: int = 3) -> tuple[int, ...]:
    """Rank items by their distance to the k-th nearest neighbour, return the top n.

    Ties are broken by smaller index so the ranking is deterministic.
    Accepts the square form or a condensed
    :class:`~repro.mining.matrix.CondensedDistanceMatrix`.
    """
    matrix = pairwise_view(distance_matrix)
    n = matrix.n_items
    if not 1 <= n_outliers <= n:
        raise MiningError(f"n_outliers must be between 1 and {n}")
    if not 1 <= k < n:
        raise MiningError(f"k must be between 1 and {n - 1}")
    scores = []
    for i in range(n):
        others = np.sort(np.delete(matrix.row(i), i))
        scores.append(float(others[k - 1]))
    order = sorted(range(n), key=lambda i: (-scores[i], i))
    return tuple(order[:n_outliers])
