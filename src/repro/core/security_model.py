"""Security models for query-log outsourcing (Step 1 of KIT-DPE).

Step 1 of the KIT-DPE procedure fixes (1) a *threat model* — the passive
attacks the scheme must shield against — and (2) a *high-level encryption
scheme* — which parts of a query are encrypted with which (as yet abstract)
encryption function.

Following Section IV-A and the query-log attack taxonomy of Sanamrad &
Kossmann [9], the passive attacks on encrypted query logs are the query-only,
known-query and chosen-query attacks (instantiating cipher-text-only,
known-plaintext and chosen-plaintext attacks).  The high-level scheme for SQL
logs is the paper's triple ``(EncRel, EncAttr, {EncA.Const : Attribute A})``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SecurityModelError


class AttackType(enum.Enum):
    """Passive attacks on encrypted query logs (Example 3 of the paper / [9])."""

    #: Cipher-text only: the attacker sees only the encrypted log.
    QUERY_ONLY = "query-only"
    #: Known-plain-text: the attacker additionally knows some (plain, encrypted) query pairs.
    KNOWN_QUERY = "known-query"
    #: Chosen-plain-text: the attacker can obtain encryptions of queries of its choice.
    CHOSEN_QUERY = "chosen-query"

    @property
    def strength(self) -> int:
        """Relative attacker strength (higher = stronger attacker)."""
        return {
            AttackType.QUERY_ONLY: 1,
            AttackType.KNOWN_QUERY: 2,
            AttackType.CHOSEN_QUERY: 3,
        }[self]


class QueryPart(enum.Enum):
    """The parts of a query the high-level scheme may encrypt."""

    RELATION_NAMES = "relation names"
    ATTRIBUTE_NAMES = "attribute names"
    CONSTANTS = "constants"
    KEYWORDS = "keywords and operators"


@dataclass(frozen=True)
class ThreatModel:
    """The set of passive attacks a scheme must withstand."""

    attacks: frozenset[AttackType]

    def __post_init__(self) -> None:
        if not self.attacks:
            raise SecurityModelError("a threat model must name at least one attack")

    @classmethod
    def passive_default(cls) -> "ThreatModel":
        """The paper's default: all passive attacks on query logs."""
        return cls(frozenset(AttackType))

    def strongest_attack(self) -> AttackType:
        """The strongest attacker the model considers."""
        return max(self.attacks, key=lambda attack: attack.strength)

    def describe(self) -> str:
        """Human-readable summary."""
        names = ", ".join(sorted(attack.value for attack in self.attacks))
        return f"passive attacks: {names}"


@dataclass(frozen=True)
class HighLevelScheme:
    """Which query parts are encrypted (with distinct abstract functions).

    The paper's scheme for SQL logs encrypts relation names, attribute names
    and constants (with one constant function per attribute) and leaves SQL
    keywords/operators in the clear — hiding the query *structure* is
    explicitly out of scope for the considered threat model.
    """

    encrypted_parts: frozenset[QueryPart]
    per_attribute_constants: bool = True

    @classmethod
    def sql_log_default(cls) -> "HighLevelScheme":
        """The paper's (EncRel, EncAttr, {EncA.Const}) scheme."""
        return cls(
            frozenset(
                {QueryPart.RELATION_NAMES, QueryPart.ATTRIBUTE_NAMES, QueryPart.CONSTANTS}
            ),
            per_attribute_constants=True,
        )

    def encrypts(self, part: QueryPart) -> bool:
        """Return True if ``part`` is encrypted by this scheme."""
        return part in self.encrypted_parts

    def describe(self) -> str:
        """Human-readable summary."""
        parts = ", ".join(sorted(part.value for part in self.encrypted_parts))
        suffix = " (one constant function per attribute)" if self.per_attribute_constants else ""
        return f"encrypt: {parts}{suffix}"


@dataclass(frozen=True)
class SecurityGoal:
    """A natural-language security goal with the query parts it protects."""

    description: str
    protected_parts: frozenset[QueryPart]


@dataclass
class SecurityModel:
    """Step 1 output: threat model + high-level scheme + goals."""

    threat_model: ThreatModel = field(default_factory=ThreatModel.passive_default)
    high_level_scheme: HighLevelScheme = field(default_factory=HighLevelScheme.sql_log_default)
    goals: tuple[SecurityGoal, ...] = ()

    @classmethod
    def sql_log_default(cls) -> "SecurityModel":
        """The security model used in the paper's case study (Section IV-A)."""
        goals = (
            SecurityGoal(
                "the log should not reveal information on the content of the database",
                frozenset({QueryPart.CONSTANTS}),
            ),
            SecurityGoal(
                "the log should not reveal the schema (relation and attribute names)",
                frozenset({QueryPart.RELATION_NAMES, QueryPart.ATTRIBUTE_NAMES}),
            ),
        )
        return cls(goals=goals)

    def validate(self) -> None:
        """Check that every goal's protected parts are actually encrypted."""
        for goal in self.goals:
            missing = goal.protected_parts - self.high_level_scheme.encrypted_parts
            if missing:
                names = ", ".join(sorted(part.value for part in missing))
                raise SecurityModelError(
                    f"goal {goal.description!r} requires encrypting {names}, "
                    "which the high-level scheme leaves in the clear"
                )

    def describe(self) -> str:
        """Multi-line human-readable summary of the security model."""
        lines = [self.threat_model.describe(), self.high_level_scheme.describe()]
        for goal in self.goals:
            lines.append(f"goal: {goal.description}")
        return "\n".join(lines)
