"""DPE schemes for SQL query logs — one per distance measure of Table I.

Every scheme implements the paper's high-level encryption scheme
``(EncRel, EncAttr, {EncA.Const : Attribute A})`` with the encryption classes
the KIT-DPE procedure derives for its measure:

* :class:`~repro.core.schemes.token_scheme.TokenDpeScheme` — DET / DET / DET,
* :class:`~repro.core.schemes.structure_scheme.StructureDpeScheme` — DET /
  DET / PROB,
* :class:`~repro.core.schemes.result_scheme.ResultDpeScheme` — DET / DET /
  via CryptDB (the scheme wraps a :class:`~repro.cryptdb.proxy.CryptDBProxy`),
* :class:`~repro.core.schemes.access_area_scheme.AccessAreaDpeScheme` — DET /
  DET / via CryptDB except HOM (aggregate-only attributes stay PROB).
"""

from repro.core.schemes.access_area_scheme import AccessAreaDpeScheme
from repro.core.schemes.base import QueryLogDpeScheme, QueryNameResolver
from repro.core.schemes.result_scheme import ResultDpeScheme
from repro.core.schemes.structure_scheme import StructureDpeScheme
from repro.core.schemes.token_scheme import TokenDpeScheme

__all__ = [
    "AccessAreaDpeScheme",
    "QueryLogDpeScheme",
    "QueryNameResolver",
    "ResultDpeScheme",
    "StructureDpeScheme",
    "TokenDpeScheme",
]
