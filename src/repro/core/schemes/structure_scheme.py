"""DPE scheme for the query-structure distance (Table I, row 2).

EncRel = DET, EncAttr = DET, EncConst = PROB.

Constants never occur in the SnipSuggest feature set, so they can be
encrypted with a probabilistic scheme — two occurrences of the same constant
become different ciphertexts, which is the highest security level of
Figure 1.  Only the identifiers (which *do* appear in features) need
deterministic encryption.
"""

from __future__ import annotations

import re

from repro.core.dpe import LogContext
from repro.core.measures.structure import StructureDistance
from repro.core.schemes.base import HighLevelSchemeTransformer, QueryLogDpeScheme, QueryNameResolver
from repro.crypto.keys import KeyChain
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import DpeError
from repro.sql.ast import Expression, Literal, Query
from repro.sql.features import Feature
from repro.sql.lexer import KEYWORDS
from repro.sql.visitor import TransformContext

_IDENTIFIER_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class StructureDpeScheme(QueryLogDpeScheme):
    """DET identifiers, PROB constants."""

    def __init__(self, keychain: KeyChain) -> None:
        super().__init__(keychain)
        self.measure = StructureDistance()
        self._constant_scheme = ProbabilisticScheme(
            keychain.key_for("structure-scheme", "constants")
        )

    def _encrypt_literal(self, literal: Literal, context: TransformContext) -> Expression:
        _ = context
        return Literal(self._constant_scheme.encrypt(literal.value))

    # -- QueryLogDpeScheme interface ------------------------------------------- #

    def encrypt_query(self, query: Query) -> Query:
        transformer = HighLevelSchemeTransformer(
            query, self.relation_scheme, self.attribute_scheme, self._encrypt_literal
        )
        return transformer.transform_query(query)

    def encrypt_characteristic(
        self, query: Query, characteristic: object, context: LogContext
    ) -> frozenset[Feature]:
        """Encrypt a feature set: every identifier inside a skeleton is encrypted.

        Feature skeletons are short expression fragments ("A2 >", "R",
        "SUM(price)").  Identifiers (non-keyword word tokens) are replaced
        in place by their EncRel/EncAttr ciphertexts; spacing, operators and
        keywords stay verbatim, so ``Enc(features(Q)) = features(Enc(Q))``.
        """
        _ = context
        if not isinstance(characteristic, frozenset):
            raise DpeError("structure characteristic must be a frozenset of features")
        resolver = QueryNameResolver(query)
        return frozenset(
            Feature(feature.clause, self._encrypt_skeleton(feature.skeleton, resolver))
            for feature in characteristic
        )

    def _encrypt_skeleton(self, skeleton: str, resolver: QueryNameResolver) -> str:
        def replace(match: re.Match[str]) -> str:
            word = match.group(0)
            if word.upper() in KEYWORDS:
                return word
            if resolver.is_relation(word):
                return self.relation_scheme.encrypt_identifier(word)
            return self.attribute_scheme.encrypt_identifier(word)

        return _IDENTIFIER_PATTERN.sub(replace, skeleton)
