"""DPE scheme for the query-access-area distance (Table I, row 4).

EncRel = DET, EncAttr = DET, EncConst = via CryptDB, **except HOM**.

Constant encryption follows the attribute's usage across the whole log
(mirroring how CryptDB adjusts onions to the workload):

* attributes occurring in **range predicates** anywhere in the log get a
  per-attribute OPE function — every constant compared against them
  (including equality constants) is OPE-encrypted, so interval overlap and
  point membership remain computable over ciphertexts;
* attributes occurring only in **equality predicates** get a per-attribute
  DET function;
* attributes occurring **only inside aggregate arguments** in the SELECT
  clause never influence the access area; their values (and the shared
  domain information about them) are encrypted probabilistically.  This is
  the "except HOM" cell of Table I and the point where the KIT-DPE scheme is
  strictly more secure than running CryptDB as-is, which would expose a HOM
  (or peeled OPE/DET) representation for them.

The scheme is *workload-dependent*: :meth:`fit` analyses the log before any
query can be encrypted, exactly like CryptDB's onion adjustment is driven by
the observed workload.
"""

from __future__ import annotations

import enum

from repro.core.domains import Domain, DomainCatalog
from repro.core.dpe import LogContext
from repro.core.measures.access_area import AccessArea, AccessAreaDistance, Interval
from repro.core.schemes.base import HighLevelSchemeTransformer, QueryLogDpeScheme
from repro.crypto.det import DeterministicScheme
from repro.crypto.keys import KeyChain
from repro.crypto.ope import OrderPreservingScheme
from repro.crypto.prob import ProbabilisticScheme
from repro.exceptions import DpeError
from repro.sql.ast import (
    AggregateCall,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    ComparisonOp,
    Expression,
    InPredicate,
    Literal,
    Query,
)
from repro.sql.log import QueryLog
from repro.sql.visitor import TransformContext, column_refs, walk


class AttributeUsage(enum.Enum):
    """How an attribute is used across the log (decides its constant scheme)."""

    RANGE = "range"
    EQUALITY = "equality"
    AGGREGATE_ONLY = "aggregate-only"
    OTHER = "other"


#: OPE domain for (scaled) constants.
_OPE_DOMAIN = (-(2**40), 2**40 - 1)
#: Fixed-point scale applied to REAL-valued constants before OPE.
_FLOAT_SCALE = 1000


class AccessAreaDpeScheme(QueryLogDpeScheme):
    """Per-attribute OPE/DET constants, PROB for aggregate-only attributes."""

    def __init__(self, keychain: KeyChain, *, overlap_score: float = 0.5) -> None:
        super().__init__(keychain)
        self.measure = AccessAreaDistance(overlap_score=overlap_score)
        self._usage: dict[str, AttributeUsage] | None = None
        self._float_attributes: set[str] = set()
        self._ope_cache: dict[str, OrderPreservingScheme] = {}
        self._det_cache: dict[str, DeterministicScheme] = {}
        self._prob_scheme = ProbabilisticScheme(
            keychain.key_for("access-area-scheme", "aggregate-only")
        )
        self._fallback_det = DeterministicScheme(
            keychain.key_for("access-area-scheme", "fallback")
        )

    # ------------------------------------------------------------------ #
    # workload analysis

    def fit(self, log: QueryLog, domains: DomainCatalog | None = None) -> dict[str, AttributeUsage]:
        """Analyse the log and fix each attribute's usage class.

        Must be called (directly or via :meth:`encrypt_context` /
        :meth:`encrypt_log`) before queries can be encrypted.
        """
        range_attributes: set[str] = set()
        equality_attributes: set[str] = set()
        aggregate_attributes: set[str] = set()
        referenced_outside_aggregates: set[str] = set()
        float_attributes: set[str] = set()

        for entry in log:
            query = entry.query
            for node in walk(query):
                if isinstance(node, AggregateCall):
                    aggregate_attributes.update(ref.name for ref in column_refs(node.argument))
            aggregate_refs_in_query = {
                ref.name
                for node in walk(query)
                if isinstance(node, AggregateCall)
                for ref in column_refs(node.argument)
            }
            for ref in column_refs(query):
                if ref.name not in aggregate_refs_in_query:
                    referenced_outside_aggregates.add(ref.name)
            predicates: list[Expression] = []
            if query.where is not None:
                predicates.append(query.where)
            if query.having is not None:
                predicates.append(query.having)
            for join in query.joins:
                if join.condition is not None:
                    predicates.append(join.condition)
            for predicate in predicates:
                self._collect_predicate_usage(
                    predicate, range_attributes, equality_attributes, float_attributes
                )
            referenced_outside_aggregates.update(
                ref.name for predicate in predicates for ref in column_refs(predicate)
            )

        if domains is not None:
            for domain in domains:
                if domain.is_numeric and (
                    isinstance(domain.minimum, float) or isinstance(domain.maximum, float)
                ):
                    float_attributes.add(domain.attribute)

        usage: dict[str, AttributeUsage] = {}
        all_attributes = (
            range_attributes
            | equality_attributes
            | aggregate_attributes
            | referenced_outside_aggregates
        )
        for attribute in all_attributes:
            if attribute in range_attributes:
                usage[attribute] = AttributeUsage.RANGE
            elif attribute in equality_attributes:
                usage[attribute] = AttributeUsage.EQUALITY
            elif attribute in aggregate_attributes and attribute not in referenced_outside_aggregates:
                usage[attribute] = AttributeUsage.AGGREGATE_ONLY
            else:
                usage[attribute] = AttributeUsage.OTHER
        self._usage = usage
        self._float_attributes = float_attributes
        return dict(usage)

    @staticmethod
    def _collect_predicate_usage(
        predicate: Expression,
        range_attributes: set[str],
        equality_attributes: set[str],
        float_attributes: set[str],
    ) -> None:
        for node in walk(predicate):
            if isinstance(node, BinaryOp) and isinstance(node.op, ComparisonOp):
                refs = [r for r in (node.left, node.right) if isinstance(r, ColumnRef)]
                literals = [l for l in (node.left, node.right) if isinstance(l, Literal)]
                for ref in refs:
                    if node.op in (ComparisonOp.EQ, ComparisonOp.NEQ):
                        equality_attributes.add(ref.name)
                    else:
                        range_attributes.add(ref.name)
                    if any(isinstance(lit.value, float) for lit in literals):
                        float_attributes.add(ref.name)
            elif isinstance(node, BetweenPredicate) and isinstance(node.operand, ColumnRef):
                range_attributes.add(node.operand.name)
                for bound in (node.low, node.high):
                    if isinstance(bound, Literal) and isinstance(bound.value, float):
                        float_attributes.add(node.operand.name)
            elif isinstance(node, InPredicate) and isinstance(node.operand, ColumnRef):
                equality_attributes.add(node.operand.name)
                if any(
                    isinstance(value, Literal) and isinstance(value.value, float)
                    for value in node.values
                ):
                    float_attributes.add(node.operand.name)

    def usage_of(self, attribute: str) -> AttributeUsage:
        """The fitted usage class of ``attribute`` (OTHER if never seen)."""
        if self._usage is None:
            raise DpeError("AccessAreaDpeScheme.fit() must be called before encryption")
        return self._usage.get(attribute, AttributeUsage.OTHER)

    # ------------------------------------------------------------------ #
    # per-attribute constant encryption

    def _scale_for(self, attribute: str) -> int:
        return _FLOAT_SCALE if attribute in self._float_attributes else 1

    def _ope_for(self, attribute: str) -> OrderPreservingScheme:
        if attribute not in self._ope_cache:
            self._ope_cache[attribute] = OrderPreservingScheme(
                self.keychain.key_for("access-area-scheme", "constants", attribute, "ope"),
                domain_min=_OPE_DOMAIN[0],
                domain_max=_OPE_DOMAIN[1],
            )
        return self._ope_cache[attribute]

    def _det_for(self, attribute: str) -> DeterministicScheme:
        if attribute not in self._det_cache:
            self._det_cache[attribute] = DeterministicScheme(
                self.keychain.key_for("access-area-scheme", "constants", attribute, "det")
            )
        return self._det_cache[attribute]

    def encrypt_constant_for(self, attribute: str, value: object) -> object:
        """Encrypt one constant compared against ``attribute`` (per its usage)."""
        usage = self.usage_of(attribute)
        if usage is AttributeUsage.RANGE:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                # A text constant compared against a range attribute can only
                # come from an equality predicate; DET keeps it comparable.
                return self._det_for(attribute).encrypt(value)  # type: ignore[arg-type]
            scaled = round(value * self._scale_for(attribute))
            return self._ope_for(attribute).encrypt(scaled)
        if usage is AttributeUsage.AGGREGATE_ONLY:
            return self._prob_scheme.encrypt(value)  # type: ignore[arg-type]
        return self._det_for(attribute).encrypt(value)  # type: ignore[arg-type]

    def _encrypt_literal(self, literal: Literal, context: TransformContext) -> Expression:
        if context.aggregate is not None:
            return Literal(self._prob_scheme.encrypt(literal.value))
        compared = context.compared_column()
        if compared is not None:
            return Literal(self.encrypt_constant_for(compared.name, literal.value))
        return Literal(self._fallback_det.encrypt(literal.value))

    # ------------------------------------------------------------------ #
    # QueryLogDpeScheme interface

    def encrypt_query(self, query: Query) -> Query:
        if self._usage is None:
            raise DpeError("AccessAreaDpeScheme.fit() must be called before encrypt_query()")
        transformer = HighLevelSchemeTransformer(
            query,
            self.relation_scheme,
            self.attribute_scheme,
            self._encrypt_literal,
            # Negative constants must keep their sign inside the OPE
            # ciphertext so that interval arithmetic over ciphertexts mirrors
            # the plaintext intervals.
            fold_signed_constants=True,
        )
        return transformer.transform_query(query)

    def encrypt_log(self, log: QueryLog) -> QueryLog:
        if self._usage is None:
            self.fit(log)
        return log.map_queries(self.encrypt_query)

    def encrypt_context(self, context: LogContext) -> LogContext:
        """Encrypt the log and the shared domains (Table I: Log + Domains)."""
        domains = context.domains
        if self._usage is None:
            self.fit(context.log, domains)
        encrypted_domains = None if domains is None else self.encrypt_domains(domains)
        return LogContext(
            log=self.encrypt_log(context.log),
            domains=encrypted_domains,
            labels={"encrypted": True},
        )

    def encrypt_domains(self, domains: DomainCatalog) -> DomainCatalog:
        """Encrypt the shared domain catalog.

        Only range attributes need ordered (OPE-encrypted) domain bounds; the
        access areas of equality-only and aggregate-only attributes never use
        interval arithmetic, so their domains are omitted from the shared
        catalog (sharing less is strictly more secure).
        """
        encrypted = DomainCatalog()
        for domain in domains:
            attribute = domain.attribute
            if self.usage_of(attribute) is not AttributeUsage.RANGE or not domain.is_numeric:
                continue
            scale = self._scale_for(attribute)
            ope = self._ope_for(attribute)
            encrypted.add(
                Domain(
                    self.attribute_scheme.encrypt_identifier(attribute),
                    minimum=ope.encrypt(round(domain.minimum * scale)),  # type: ignore[arg-type]
                    maximum=ope.encrypt(round(domain.maximum * scale)),  # type: ignore[arg-type]
                )
            )
        return encrypted

    def encrypt_characteristic(
        self, query: Query, characteristic: object, context: LogContext
    ) -> dict[str, AccessArea]:
        """Encrypt per-attribute access areas: Enc(access_A(Q)) of Definition 2."""
        _ = query, context
        if not isinstance(characteristic, dict):
            raise DpeError("access-area characteristic must be a dict of attribute -> area")
        encrypted: dict[str, AccessArea] = {}
        for attribute, area in characteristic.items():
            encrypted_name = self.attribute_scheme.encrypt_identifier(attribute)
            encrypted[encrypted_name] = self._encrypt_area(attribute, area)
        return encrypted

    def _encrypt_area(self, attribute: str, area: AccessArea) -> AccessArea:
        if area.full:
            return AccessArea.full_domain()
        points = frozenset(
            self.encrypt_constant_for(attribute, point) for point in area.points
        )
        intervals = frozenset(
            Interval(
                None if i.low is None else self.encrypt_constant_for(attribute, i.low),
                None if i.high is None else self.encrypt_constant_for(attribute, i.high),
                i.low_inclusive,
                i.high_inclusive,
            )
            for i in area.intervals
        )
        return AccessArea(intervals=intervals, points=points).canonical()
