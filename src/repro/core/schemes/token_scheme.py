"""DPE scheme for the token-based query-string distance (Table I, row 1).

EncRel = DET, EncAttr = DET, EncConst = DET.

One refinement over the paper's table is made explicit here: the token set of
a query does not retain *which attribute* a constant was compared against, so
for distances **across** queries the constant-encryption functions must agree
on common constants.  We therefore use a single DET function for all
constants by default (``per_attribute_constants=False``).  Switching the flag
on reproduces the paper's literal per-attribute formulation; each query still
satisfies c-equivalence, but pairwise distances can change when the same
constant is compared against different attributes in different queries — the
ablation experiment (A1) demonstrates exactly this.
"""

from __future__ import annotations

from repro.core.dpe import LogContext
from repro.core.measures.token import TokenDistance
from repro.core.schemes.base import HighLevelSchemeTransformer, QueryLogDpeScheme, QueryNameResolver
from repro.crypto.det import DeterministicScheme
from repro.crypto.keys import KeyChain
from repro.exceptions import DpeError
from repro.sql.ast import Expression, Literal, Query
from repro.sql.lexer import TokenType
from repro.sql.tokens import QueryToken
from repro.sql.visitor import TransformContext


class TokenDpeScheme(QueryLogDpeScheme):
    """Deterministic encryption of relation names, attribute names and constants."""

    def __init__(self, keychain: KeyChain, *, per_attribute_constants: bool = False) -> None:
        super().__init__(keychain)
        self.measure = TokenDistance()
        self.per_attribute_constants = per_attribute_constants
        self._shared_constant_scheme = DeterministicScheme(
            keychain.key_for("token-scheme", "constants")
        )
        self._per_attribute_cache: dict[str, DeterministicScheme] = {}

    # -- constant handling --------------------------------------------------- #

    def _constant_scheme(self, attribute: str | None) -> DeterministicScheme:
        if not self.per_attribute_constants or attribute is None:
            return self._shared_constant_scheme
        if attribute not in self._per_attribute_cache:
            self._per_attribute_cache[attribute] = DeterministicScheme(
                self.keychain.key_for("token-scheme", "constants", attribute)
            )
        return self._per_attribute_cache[attribute]

    def _encrypt_literal(self, literal: Literal, context: TransformContext) -> Expression:
        attribute = None
        compared = context.compared_column()
        if compared is not None:
            attribute = compared.name
        scheme = self._constant_scheme(attribute)
        return Literal(scheme.encrypt(literal.value))

    # -- QueryLogDpeScheme interface ------------------------------------------- #

    def encrypt_query(self, query: Query) -> Query:
        transformer = HighLevelSchemeTransformer(
            query, self.relation_scheme, self.attribute_scheme, self._encrypt_literal
        )
        return transformer.transform_query(query)

    def encrypt_characteristic(
        self, query: Query, characteristic: object, context: LogContext
    ) -> frozenset[QueryToken]:
        """Encrypt a token set: Enc(tokens(Q)) of Definition 2.

        Keywords, operators and punctuation stay as they are; identifiers go
        through EncRel or EncAttr depending on their role in ``query``;
        number and string tokens go through the constant function.  The
        per-attribute variant cannot be applied here because the token set
        has lost the attribute context — exactly the refinement discussed in
        the module docstring.
        """
        _ = context
        if not isinstance(characteristic, frozenset):
            raise DpeError("token characteristic must be a frozenset of tokens")
        if self.per_attribute_constants:
            raise DpeError(
                "token sets do not retain attribute context; characteristic-level "
                "encryption requires the shared-constant-key configuration"
            )
        resolver = QueryNameResolver(query)
        encrypted: set[QueryToken] = set()
        for kind, text in characteristic:
            encrypted.add(self._encrypt_token(kind, text, resolver))
        return frozenset(encrypted)

    def _encrypt_token(self, kind: str, text: str, resolver: QueryNameResolver) -> QueryToken:
        if kind == TokenType.IDENTIFIER.value:
            if resolver.is_relation(text):
                return (kind, self.relation_scheme.encrypt_identifier(text))
            return (kind, self.attribute_scheme.encrypt_identifier(text))
        if kind == TokenType.NUMBER.value:
            value: int | float = float(text) if "." in text else int(text)
            return (TokenType.STRING.value, self._shared_constant_scheme.encrypt(value))
        if kind == TokenType.STRING.value:
            return (kind, self._shared_constant_scheme.encrypt(text))
        return (kind, text)
