"""DPE scheme for the query-result distance (Table I, row 3).

EncRel = DET, EncAttr = DET, EncConst = via CryptDB.

The query-result distance needs the queries to remain *executable* over the
encrypted database: both the database content and the constants inside
queries are encrypted through the CryptDB-style layer
(:class:`~repro.cryptdb.proxy.CryptDBProxy`).  The service provider executes
the encrypted queries against the encrypted database and computes Jaccard
distances over the *ciphertext* result tuples; result equivalence
(Definition 4) guarantees those distances equal the plaintext ones.

Supported query fragment: select-project-join with equality and range
predicates and DISTINCT — the fragment on which result tuples are
well-defined database values.  Aggregate results are derived values whose
"encryption" is ambiguous (a HOM ciphertext is probabilistic), so aggregate
queries are rejected by this scheme; they are the domain of the access-area
measure.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.dpe import LogContext
from repro.core.measures.result import ResultDistance
from repro.core.schemes.base import QueryLogDpeScheme
from repro.crypto.keys import KeyChain
from repro.cryptdb.proxy import CryptDBProxy, JoinGroupSpec
from repro.db.backend import DEFAULT_BACKEND
from repro.exceptions import DpeError
from repro.sql.ast import ColumnRef, Query, Star
from repro.sql.log import QueryLog


class ResultDpeScheme(QueryLogDpeScheme):
    """Constants and database content encrypted via the CryptDB layer."""

    def __init__(
        self,
        keychain: KeyChain,
        *,
        join_groups: Iterable[JoinGroupSpec] = (),
        paillier_bits: int = 512,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        super().__init__(keychain)
        self.measure = ResultDistance(backend=backend)
        # The shared EQ-onion key is what makes distance preservation hold
        # *across* queries: Definition 1 compares result tuples from different
        # queries, so SQL-equal values must encrypt identically no matter
        # which column produced them.  (Per-column keys would still satisfy
        # the per-query result equivalence of Definition 4 — the same
        # refinement as for the token scheme, demonstrated in the ablation.)
        self.proxy = CryptDBProxy(
            keychain,
            join_groups=join_groups,
            paillier_bits=paillier_bits,
            shared_det_key=True,
            backend=backend,
        )

    # -- QueryLogDpeScheme interface ------------------------------------------- #

    def encrypt_query(self, query: Query) -> Query:
        """Rewrite ``query`` for execution over the encrypted database."""
        self._check_supported(query)
        return self.proxy.rewrite_query(query)

    def encrypt_log(self, log: QueryLog) -> QueryLog:
        for entry in log:
            self._check_supported(entry.query)
        return log.map_queries(self.proxy.rewrite_query)

    def encrypt_context(self, context: LogContext) -> LogContext:
        """Encrypt the log *and* the database content (Table I: Log + DB-Content)."""
        database = context.require_database()
        encrypted_database = self.proxy.encrypt_database(database)
        return LogContext(
            log=self.encrypt_log(context.log),
            database=encrypted_database,
            labels={"encrypted": True},
        )

    def encrypt_characteristic(
        self, query: Query, characteristic: object, context: LogContext
    ) -> frozenset[tuple[object, ...]]:
        """Encrypt a result-tuple set: Enc(result_tuples(Q)) of Definition 4.

        Each position of a result tuple corresponds to a select item of the
        plaintext query; the value is encrypted with the DET scheme of the
        column that select item projects.
        """
        _ = context
        from repro.cryptdb.column import normalize_equality_value

        if not isinstance(characteristic, frozenset):
            raise DpeError("result characteristic must be a frozenset of tuples")
        columns = self._projected_columns(query)
        encrypted_tuples = set()
        for row in characteristic:
            if len(row) != len(columns):
                raise DpeError("result tuple arity does not match the query's select list")
            encrypted_tuples.add(
                tuple(
                    None
                    if value is None
                    else column.encryption.det.encrypt(normalize_equality_value(value))
                    for value, column in zip(row, columns)
                )
            )
        return frozenset(encrypted_tuples)

    # -- helpers ----------------------------------------------------------------- #

    def _projected_columns(self, query: Query):
        bindings = {ref.binding_name: ref.name for ref in query.tables()}
        columns = []
        for item in query.select_items:
            if not isinstance(item.expression, ColumnRef):
                raise DpeError(
                    "result equivalence is defined for plain column projections; "
                    f"got {type(item.expression).__name__}"
                )
            ref = item.expression
            if ref.table is not None:
                table = bindings.get(ref.table, ref.table)
                columns.append(self.proxy.schema_map.column(table, ref.name))
            else:
                columns.append(
                    self.proxy.schema_map.find_column(ref.name, tuple(bindings.values()))
                )
        return columns

    def _check_supported(self, query: Query) -> None:
        if query.has_aggregates():
            raise DpeError(
                "the result-distance scheme covers the select-project-join fragment; "
                "aggregate queries have no well-defined encrypted result tuples"
            )
        for item in query.select_items:
            if isinstance(item.expression, Star):
                raise DpeError("'*' projections must be expanded before encryption")
