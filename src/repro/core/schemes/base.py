"""Shared machinery for the query-log DPE schemes.

All four schemes instantiate the same high-level scheme from the paper's
Section IV-A: relation names are encrypted with ``EncRel``, attribute names
(and every other identifier: aliases, qualifiers) with ``EncAttr``, and
constants with per-attribute functions ``EncA.Const``.  What differs per
measure is only the encryption *class* of the constant functions — the
structural rewriting of queries is identical and lives here.
"""

from __future__ import annotations

import abc

from repro.core.dpe import DistanceMeasure, LogContext
from repro.core.kitdpe import KitDpeEngine, SchemeDerivation
from repro.crypto.det import DeterministicScheme
from repro.crypto.keys import KeyChain
from repro.sql.ast import ColumnRef, Expression, Literal, Query, TableRef
from repro.sql.log import QueryLog
from repro.sql.visitor import AstTransformer, TransformContext


class QueryNameResolver:
    """Classifies the identifiers of a query: relation names vs. everything else.

    The high-level scheme uses two identifier-encryption functions: EncRel
    for relation names and EncAttr for attribute names.  Aliases and
    qualifiers follow EncAttr (they are user-chosen labels, not schema
    elements, but leaving them plain could leak table names).  Both the query
    transformer and the characteristic-level encryption use the same
    resolver, which is what makes ``Enc(c(x)) = c(Enc(x))`` hold.
    """

    def __init__(self, query: Query) -> None:
        self.relation_names = frozenset(ref.name for ref in query.tables())

    def is_relation(self, identifier: str) -> bool:
        """True if ``identifier`` names a relation in this query."""
        return identifier in self.relation_names


class HighLevelSchemeTransformer(AstTransformer):
    """AST transformer implementing (EncRel, EncAttr, EncConst) rewriting.

    Subclass hooks decide how constants are encrypted (:meth:`encrypt_constant`);
    identifier handling is shared.
    """

    def __init__(
        self,
        query: Query,
        relation_scheme: DeterministicScheme,
        attribute_scheme: DeterministicScheme,
        constant_encryptor,
        *,
        fold_signed_constants: bool = False,
    ) -> None:
        """``fold_signed_constants`` folds ``-5`` (``UnaryMinus(Literal(5))``)
        into ``Literal(-5)`` before encryption.  Schemes whose constants must
        stay numerically comparable (OPE in the access-area scheme) need the
        sign inside the ciphertext; the token scheme keeps the minus operator
        as its own token instead, matching the plaintext token set.
        """
        self._resolver = QueryNameResolver(query)
        self._relation_scheme = relation_scheme
        self._attribute_scheme = attribute_scheme
        self._encrypt_constant = constant_encryptor
        self._fold_signed_constants = fold_signed_constants

    def _encrypt_identifier(self, identifier: str) -> str:
        if self._resolver.is_relation(identifier):
            return self._relation_scheme.encrypt_identifier(identifier)
        return self._attribute_scheme.encrypt_identifier(identifier)

    def transform_table_ref(self, ref: TableRef) -> TableRef:
        alias = None
        if ref.alias is not None:
            alias = self._attribute_scheme.encrypt_identifier(ref.alias)
        return TableRef(self._relation_scheme.encrypt_identifier(ref.name), alias)

    def transform_column_ref(self, ref: ColumnRef, context: TransformContext) -> Expression:
        _ = context
        table = None if ref.table is None else self._encrypt_identifier(ref.table)
        return ColumnRef(self._attribute_scheme.encrypt_identifier(ref.name), table)

    def transform_literal(self, literal: Literal, context: TransformContext) -> Expression:
        # NULL and boolean literals are part of the query structure (IS NULL,
        # TRUE/FALSE keywords), not database content; they stay in the clear
        # under every scheme, mirroring how the lexer treats them as keywords.
        if literal.value is None or isinstance(literal.value, bool):
            return literal
        return self._encrypt_constant(literal, context)

    def _transform_expression(self, expr, context: TransformContext):
        from repro.sql.ast import UnaryMinus

        if (
            self._fold_signed_constants
            and isinstance(expr, UnaryMinus)
            and isinstance(expr.operand, Literal)
            and isinstance(expr.operand.value, (int, float))
            and not isinstance(expr.operand.value, bool)
        ):
            return self.transform_literal(Literal(-expr.operand.value), context)
        return super()._transform_expression(expr, context)

    def transform_query(self, query: Query) -> Query:
        transformed = super().transform_query(query)
        select_items = tuple(
            item
            if item.alias is None
            else type(item)(item.expression, self._attribute_scheme.encrypt_identifier(item.alias))
            for item in transformed.select_items
        )
        return Query(
            select_items=select_items,
            from_table=transformed.from_table,
            joins=transformed.joins,
            where=transformed.where,
            group_by=transformed.group_by,
            having=transformed.having,
            order_by=transformed.order_by,
            limit=transformed.limit,
            distinct=transformed.distinct,
        )


class QueryLogDpeScheme(abc.ABC):
    """Base class of the four measure-specific DPE schemes."""

    #: The distance measure this scheme preserves.
    measure: DistanceMeasure

    def __init__(self, keychain: KeyChain) -> None:
        self.keychain = keychain
        self.relation_scheme = DeterministicScheme(keychain.relation_key())
        self.attribute_scheme = DeterministicScheme(keychain.attribute_key())

    # -- query-level encryption ---------------------------------------------- #

    @abc.abstractmethod
    def encrypt_query(self, query: Query) -> Query:
        """Encrypt a single query (the paper's ``Enc(Q)``, Example 4)."""

    def encrypt_log(self, log: QueryLog) -> QueryLog:
        """Encrypt every entry of a log, preserving order and metadata."""
        return log.map_queries(self.encrypt_query)

    def encrypt_context(self, context: LogContext) -> LogContext:
        """Encrypt a full :class:`LogContext` (log + whatever must be shared).

        The base implementation encrypts only the log; schemes whose measure
        needs more shared information (database content, domains) override
        this and encrypt that information as well.
        """
        return LogContext(log=self.encrypt_log(context.log), labels={"encrypted": True})

    # -- characteristic-level encryption (Definition 2) ------------------------ #

    @abc.abstractmethod
    def encrypt_characteristic(
        self, query: Query, characteristic: object, context: LogContext
    ) -> object:
        """Encrypt a characteristic value ``c(query)`` (the ``Enc(c(x))`` side)."""

    # -- KIT-DPE integration ---------------------------------------------------- #

    def derivation(self, engine: KitDpeEngine | None = None) -> SchemeDerivation:
        """The Table I row KIT-DPE derives for this scheme's measure."""
        return (engine or KitDpeEngine()).derive(self.measure)

    def describe(self) -> dict[str, str]:
        """Human/machine-readable summary of the scheme."""
        derivation = self.derivation()
        return {
            "measure": self.measure.display_name,
            "equivalence_notion": self.measure.equivalence_notion,
            "enc_rel": derivation.enc_rel.chosen.value,
            "enc_attr": derivation.enc_attr.chosen.value,
            "enc_const": derivation.enc_const.summary,
        }
