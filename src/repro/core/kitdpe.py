"""The KIT-DPE procedure (Section III-B) and Definition 6.

KIT-DPE designs a distance-preserving encryption scheme in four steps:

1. **Security model** — threat model + high-level encryption scheme
   (:mod:`repro.core.security_model`).
2. **Equivalence notion** — the characteristic ``c`` each distance measure
   needs preserved (each :class:`~repro.core.dpe.DistanceMeasure` declares
   its notion and its *component requirements*: what EncRel, EncAttr and the
   EncA.Const functions must preserve).
3. **Ensuring the notion** — select, per component, an *appropriate*
   encryption class (Definition 6): among the classes of the taxonomy that
   ensure the requirement, one with the highest possible security.
4. **Security assessment** — since only classes with known security are
   used, the assessment reduces to reporting those classes and their levels.

:class:`KitDpeEngine` implements steps 3 and 4 mechanically; the Table I
experiment checks that the derived rows equal the paper's table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.dpe import DistanceMeasure
from repro.core.security_model import SecurityModel
from repro.crypto.base import EncryptionClass
from repro.crypto.taxonomy import EncryptionTaxonomy, default_taxonomy
from repro.exceptions import DpeError

#: Functional properties of each encryption class, used to decide whether a
#: class *ensures* a component requirement.  (preserves equality, preserves
#: order, supports addition)
CLASS_PROPERTIES: dict[EncryptionClass, tuple[bool, bool, bool]] = {
    EncryptionClass.PROB: (False, False, False),
    EncryptionClass.HOM: (False, False, True),
    EncryptionClass.DET: (True, False, False),
    EncryptionClass.JOIN: (True, False, False),
    EncryptionClass.OPE: (True, True, False),
    EncryptionClass.JOIN_OPE: (True, True, False),
    EncryptionClass.PLAIN: (True, True, True),
}


@dataclass(frozen=True)
class ComponentRequirement:
    """What an encryption function for one query part must preserve."""

    needs_equality: bool = False
    needs_order: bool = False
    needs_addition: bool = False
    note: str = ""

    def satisfied_by(self, encryption_class: EncryptionClass) -> bool:
        """True if ``encryption_class`` ensures this requirement."""
        equality, order, addition = CLASS_PROPERTIES[encryption_class]
        if self.needs_equality and not equality:
            return False
        if self.needs_order and not order:
            return False
        if self.needs_addition and not addition:
            return False
        return True


class ConstantUsage(enum.Enum):
    """How a constant (or an attribute's values) is used by the workload."""

    EQUALITY_PREDICATE = "equality predicate"
    RANGE_PREDICATE = "range predicate"
    AGGREGATE_ARGUMENT = "aggregate argument"
    OTHER = "other"


@dataclass(frozen=True)
class ConstantRequirement:
    """Requirements on the per-attribute constant encryption functions.

    ``uniform`` covers measures whose constants all need the same property
    (token: equality; structure: nothing).  ``per_usage`` covers the
    execution-backed measures, where the requirement depends on how the
    attribute is used; ``via_cryptdb`` marks that query *execution* over the
    encrypted database is needed, i.e. the concrete schemes are the CryptDB
    onion layers.
    """

    uniform: ComponentRequirement | None = None
    per_usage: tuple[tuple[ConstantUsage, ComponentRequirement], ...] = ()
    via_cryptdb: bool = False

    def __post_init__(self) -> None:
        if (self.uniform is None) == (not self.per_usage):
            raise DpeError("exactly one of uniform / per_usage must be provided")


@dataclass(frozen=True)
class EquivalenceRequirements:
    """Step 2 output for one measure: notion name + component requirements."""

    notion: str
    characteristic: str
    relation_names: ComponentRequirement
    attribute_names: ComponentRequirement
    constants: ConstantRequirement


@dataclass(frozen=True)
class ComponentChoice:
    """Step 3 output for one component: the appropriate class(es)."""

    chosen: EncryptionClass
    candidates: tuple[EncryptionClass, ...]
    security_level: int
    note: str = ""


@dataclass(frozen=True)
class ConstantChoice:
    """Step 3 output for the constant functions."""

    summary: str
    uniform: ComponentChoice | None = None
    per_usage: tuple[tuple[ConstantUsage, ComponentChoice], ...] = ()
    via_cryptdb: bool = False

    def usage_choice(self, usage: ConstantUsage) -> ComponentChoice:
        """Return the choice for a specific usage (or the uniform choice)."""
        for candidate_usage, choice in self.per_usage:
            if candidate_usage is usage:
                return choice
        if self.uniform is not None:
            return self.uniform
        raise DpeError(f"no constant choice recorded for usage {usage.value}")


@dataclass(frozen=True)
class SchemeDerivation:
    """A full Table I row derived by the engine for one measure."""

    measure: str
    display_name: str
    shared_information: str
    equivalence_notion: str
    characteristic: str
    enc_rel: ComponentChoice
    enc_attr: ComponentChoice
    enc_const: ConstantChoice

    def as_row(self) -> tuple[str, str, str, str, str, str]:
        """Render the derivation as a Table I row (strings)."""
        return (
            self.display_name,
            self.shared_information,
            self.equivalence_notion,
            self.enc_rel.chosen.value,
            self.enc_attr.chosen.value,
            self.enc_const.summary,
        )


@dataclass(frozen=True)
class SecurityAssessment:
    """Step 4 output: the classes in use and the resulting security levels."""

    measure: str
    classes_in_use: tuple[EncryptionClass, ...]
    minimum_security_level: int
    known_from_literature: bool
    notes: tuple[str, ...] = ()


@dataclass
class KitDpeEngine:
    """Implements steps 3 and 4 of KIT-DPE over a taxonomy and security model."""

    taxonomy: EncryptionTaxonomy = field(default_factory=default_taxonomy)
    security_model: SecurityModel = field(default_factory=SecurityModel.sql_log_default)
    include_plain: bool = False

    # -- Definition 6 -------------------------------------------------------- #

    def appropriate_classes(self, requirement: ComponentRequirement) -> list[EncryptionClass]:
        """All appropriate classes for ``requirement`` (Definition 6).

        Among the taxonomy classes that ensure the requirement, those with
        the highest security level are returned; when a class and one of its
        subclasses both qualify, only the more general class is kept (JOIN is
        a usage mode of DET, HOM a subclass of PROB — choosing the subclass
        would add functionality the requirement does not ask for, which never
        increases security).
        """
        candidates = [
            encryption_class
            for encryption_class in self.taxonomy.classes
            if requirement.satisfied_by(encryption_class)
            and (self.include_plain or encryption_class is not EncryptionClass.PLAIN)
        ]
        if not candidates:
            raise DpeError(f"no encryption class satisfies requirement {requirement}")
        most_secure = self.taxonomy.most_secure(candidates)
        maximal = [
            encryption_class
            for encryption_class in most_secure
            if not any(
                other is not encryption_class
                and self.taxonomy.is_subclass(encryption_class, other)
                for other in most_secure
            )
        ]
        return sorted(maximal or most_secure, key=lambda c: c.value)

    def appropriate_class(self, requirement: ComponentRequirement) -> ComponentChoice:
        """The single appropriate class for ``requirement`` (ties broken lexically)."""
        classes = self.appropriate_classes(requirement)
        chosen = classes[0]
        return ComponentChoice(
            chosen=chosen,
            candidates=tuple(classes),
            security_level=self.taxonomy.security_level(chosen),
            note=requirement.note,
        )

    # -- Step 3: derive a scheme per measure ---------------------------------- #

    def derive(self, measure: DistanceMeasure) -> SchemeDerivation:
        """Derive the Table I row for ``measure``."""
        requirements = self._requirements_of(measure)
        enc_rel = self.appropriate_class(requirements.relation_names)
        enc_attr = self.appropriate_class(requirements.attribute_names)
        enc_const = self._derive_constants(requirements.constants)
        return SchemeDerivation(
            measure=measure.name,
            display_name=measure.display_name,
            shared_information=measure.shared_information.describe(),
            equivalence_notion=requirements.notion,
            characteristic=requirements.characteristic,
            enc_rel=enc_rel,
            enc_attr=enc_attr,
            enc_const=enc_const,
        )

    def derive_table(self, measures: list[DistanceMeasure]) -> list[SchemeDerivation]:
        """Derive the full Table I for a list of measures."""
        return [self.derive(measure) for measure in measures]

    def _requirements_of(self, measure: DistanceMeasure) -> EquivalenceRequirements:
        requirements = getattr(measure, "component_requirements", None)
        if requirements is None:
            raise DpeError(
                f"measure {measure.name!r} does not declare component requirements; "
                "implement component_requirements() to use it with KIT-DPE"
            )
        return requirements()

    def _derive_constants(self, requirement: ConstantRequirement) -> ConstantChoice:
        if requirement.uniform is not None:
            choice = self.appropriate_class(requirement.uniform)
            return ConstantChoice(
                summary=choice.chosen.value, uniform=choice, via_cryptdb=requirement.via_cryptdb
            )
        per_usage = tuple(
            (usage, self.appropriate_class(component))
            for usage, component in requirement.per_usage
        )
        summary = self._summarize_per_usage(per_usage, requirement.via_cryptdb)
        return ConstantChoice(
            summary=summary, per_usage=per_usage, via_cryptdb=requirement.via_cryptdb
        )

    @staticmethod
    def _summarize_per_usage(
        per_usage: tuple[tuple[ConstantUsage, ComponentChoice], ...], via_cryptdb: bool
    ) -> str:
        """Produce the Table I wording for workload-dependent constant choices."""
        choices = dict(per_usage)
        aggregate = choices.get(ConstantUsage.AGGREGATE_ARGUMENT)
        if via_cryptdb:
            if aggregate is not None and aggregate.chosen in (
                EncryptionClass.PROB,
                EncryptionClass.HOM,
            ) and aggregate.chosen is EncryptionClass.PROB:
                return "via CryptDB, except HOM"
            return "via CryptDB"
        parts = [f"{usage.value}: {choice.chosen.value}" for usage, choice in per_usage]
        return "; ".join(parts)

    # -- Step 4: security assessment ------------------------------------------ #

    def assess(self, derivation: SchemeDerivation) -> SecurityAssessment:
        """Security assessment of a derived scheme (Step 4).

        All classes come from the taxonomy (known security characteristics),
        so the assessment reduces to listing them and the weakest level in
        use — "the desired case" of the paper.
        """
        classes: list[EncryptionClass] = [derivation.enc_rel.chosen, derivation.enc_attr.chosen]
        notes: list[str] = []
        if derivation.enc_const.uniform is not None:
            classes.append(derivation.enc_const.uniform.chosen)
        for usage, choice in derivation.enc_const.per_usage:
            classes.append(choice.chosen)
            notes.append(f"constants in {usage.value}: {choice.chosen.value}")
        if derivation.enc_const.via_cryptdb:
            notes.append("constant encryption delegated to CryptDB onion layers")
        minimum = min(self.taxonomy.security_level(c) for c in classes)
        return SecurityAssessment(
            measure=derivation.measure,
            classes_in_use=tuple(dict.fromkeys(classes)),
            minimum_security_level=minimum,
            known_from_literature=True,
            notes=tuple(notes),
        )
