"""c-Equivalence (Definition 2) and its verification.

Definition 2: for a characteristic ``c : S -> S`` an encryption algorithm
``Enc`` ensures *c-equivalence* iff ``Enc(c(x)) = c(Enc(x))`` for every data
item ``x`` in the data set — encryption and characteristic extraction
commute.  This is the per-item property that, together with consistency and
injectivity of the characteristic-level encryption, implies distance
preservation for measures that only look at the characteristic.

A DPE scheme exposes how it encrypts a *characteristic* (e.g. a token set, a
feature set, a result-tuple set) via
:meth:`repro.core.schemes.base.QueryLogDpeScheme.encrypt_characteristic`;
:func:`verify_c_equivalence` then checks commutativity over a whole log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dpe import DistanceMeasure, LogContext
from repro.exceptions import DpeError


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a c-equivalence check over a log."""

    measure: str
    items_checked: int
    violations: tuple[int, ...]

    @property
    def holds(self) -> bool:
        """True if Enc(c(x)) == c(Enc(x)) held for every item."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "HOLDS" if self.holds else f"VIOLATED for items {list(self.violations)}"
        return f"{self.measure} equivalence: {status} over {self.items_checked} items"


def verify_c_equivalence(
    scheme,
    measure: DistanceMeasure,
    plain_context: LogContext,
    encrypted_context: LogContext,
) -> EquivalenceReport:
    """Check Definition 2 for ``scheme`` w.r.t. ``measure`` over a log.

    For every log entry ``x``: compute ``c(x)`` in the plaintext context,
    push it through the scheme's characteristic-level encryption
    (``Enc(c(x))``), and compare against the characteristic of the encrypted
    entry (``c(Enc(x))``) computed in the encrypted context.

    Characteristics come from the measure's memoized batch pipeline
    (:meth:`~repro.core.dpe.DistanceMeasure.prepare`), so a preceding or
    following distance-preservation check on the same contexts shares the
    computation.
    """
    if len(plain_context) != len(encrypted_context):
        raise DpeError("plaintext and encrypted logs differ in length")

    plain_characteristics = measure.prepare(plain_context)
    encrypted_characteristics = measure.prepare(encrypted_context)
    violations: list[int] = []
    for index, plain_entry in enumerate(plain_context.log):
        encrypted_of_plain = scheme.encrypt_characteristic(
            plain_entry.query, plain_characteristics[index], plain_context
        )
        if encrypted_of_plain != encrypted_characteristics[index]:
            violations.append(index)
    return EquivalenceReport(
        measure=measure.name,
        items_checked=len(plain_context),
        violations=tuple(violations),
    )
