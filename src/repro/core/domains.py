"""Attribute domains.

The query-access-area distance (Definition 5) is defined over the *domains*
of the accessed attributes: the access area of a query w.r.t. attribute ``A``
is the part of ``A``'s domain the query touches.  Table I notes that this
measure requires sharing the domains (encrypted) alongside the log.

A :class:`DomainCatalog` maps attribute names to :class:`Domain` objects —
numeric intervals for INTEGER/REAL attributes, finite value sets for
categorical (TEXT/BOOLEAN) attributes.  Attribute names are assumed unique
across the schema (the workload generators guarantee this); this keeps the
access-area bookkeeping, and its encrypted counterpart, unambiguous.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.db.database import Database
from repro.db.schema import ColumnType
from repro.exceptions import DpeError


@dataclass(frozen=True)
class Domain:
    """The domain of one attribute.

    Exactly one of the two representations is populated:

    * numeric domains carry inclusive ``minimum`` / ``maximum`` bounds,
    * categorical domains carry the finite set of admissible ``values``.
    """

    attribute: str
    minimum: int | float | None = None
    maximum: int | float | None = None
    values: frozenset[object] | None = None

    def __post_init__(self) -> None:
        numeric = self.minimum is not None or self.maximum is not None
        categorical = self.values is not None
        if numeric == categorical:
            raise DpeError(
                f"domain of {self.attribute!r} must be either numeric or categorical"
            )
        if numeric and (self.minimum is None or self.maximum is None):
            raise DpeError(f"numeric domain of {self.attribute!r} needs both bounds")
        if numeric and self.minimum > self.maximum:  # type: ignore[operator]
            raise DpeError(f"numeric domain of {self.attribute!r} has inverted bounds")

    @property
    def is_numeric(self) -> bool:
        """True for interval domains."""
        return self.values is None

    def size_hint(self) -> float:
        """A rough size of the domain (used only for reporting)."""
        if self.is_numeric:
            return float(self.maximum - self.minimum)  # type: ignore[operator]
        return float(len(self.values))  # type: ignore[arg-type]


class DomainCatalog:
    """Domains of all attributes relevant to a query log."""

    def __init__(self, domains: Iterable[Domain] = ()) -> None:
        self._domains: dict[str, Domain] = {}
        for domain in domains:
            self.add(domain)

    def add(self, domain: Domain) -> None:
        """Register a domain; duplicate attribute names are rejected."""
        if domain.attribute in self._domains:
            raise DpeError(f"domain for attribute {domain.attribute!r} already registered")
        self._domains[domain.attribute] = domain

    def domain(self, attribute: str) -> Domain:
        """Look up the domain of ``attribute``."""
        try:
            return self._domains[attribute]
        except KeyError:
            raise DpeError(f"no domain registered for attribute {attribute!r}") from None

    def has_domain(self, attribute: str) -> bool:
        """Return True if ``attribute`` has a registered domain."""
        return attribute in self._domains

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes with a registered domain."""
        return tuple(self._domains)

    def __iter__(self) -> Iterator[Domain]:
        return iter(self._domains.values())

    def __len__(self) -> int:
        return len(self._domains)

    @classmethod
    def from_database(cls, database: Database) -> "DomainCatalog":
        """Derive a catalog from a database instance.

        Numeric columns get their observed [min, max] range; categorical
        columns get their observed value set.  Columns whose name collides
        across tables raise, matching the uniqueness assumption.
        """
        catalog = cls()
        for table in database:
            for column in table.schema.columns:
                values = [v for v in table.column_values(column.name) if v is not None]
                if not values:
                    continue
                if column.type.is_numeric:
                    domain = Domain(
                        column.name, minimum=min(values), maximum=max(values)  # type: ignore[type-var]
                    )
                else:
                    domain = Domain(column.name, values=frozenset(values))
                catalog.add(domain)
        return catalog

    @classmethod
    def from_schema_hints(
        cls, hints: dict[str, tuple[ColumnType, object]]
    ) -> "DomainCatalog":
        """Build a catalog from explicit hints.

        ``hints`` maps attribute names to ``(type, spec)`` where ``spec`` is a
        ``(min, max)`` pair for numeric types or an iterable of values for
        categorical types.
        """
        catalog = cls()
        for attribute, (column_type, spec) in hints.items():
            if column_type.is_numeric:
                minimum, maximum = spec  # type: ignore[misc]
                catalog.add(Domain(attribute, minimum=minimum, maximum=maximum))
            else:
                catalog.add(Domain(attribute, values=frozenset(spec)))  # type: ignore[arg-type]
        return catalog
