"""Core of the reproduction: distance-preserving encryption and KIT-DPE.

Public surface:

* Definitions — :class:`~repro.core.dpe.DistanceMeasure`,
  :func:`~repro.core.dpe.verify_distance_preservation` (Definition 1),
  :func:`~repro.core.equivalence.verify_c_equivalence` (Definition 2).
* KIT-DPE — :class:`~repro.core.kitdpe.KitDpeEngine` (steps 3–4, Definition 6)
  and :class:`~repro.core.security_model.SecurityModel` (step 1).
* Measures — :func:`~repro.core.measures.standard_measures` (Table I rows).
* Schemes — one :class:`~repro.core.schemes.base.QueryLogDpeScheme` per
  measure.
"""

from repro.core.domains import Domain, DomainCatalog
from repro.core.dpe import (
    DistanceMeasure,
    JaccardSetMeasure,
    LogContext,
    PreservationReport,
    SharedInformation,
    verify_distance_preservation,
)
from repro.core.equivalence import EquivalenceReport, verify_c_equivalence
from repro.core.kitdpe import (
    ComponentRequirement,
    ConstantRequirement,
    ConstantUsage,
    EquivalenceRequirements,
    KitDpeEngine,
    SchemeDerivation,
    SecurityAssessment,
)
from repro.core.measures import (
    AccessArea,
    AccessAreaDistance,
    Interval,
    ResultDistance,
    StructureDistance,
    TokenDistance,
    standard_measures,
)
from repro.core.schemes import (
    AccessAreaDpeScheme,
    QueryLogDpeScheme,
    ResultDpeScheme,
    StructureDpeScheme,
    TokenDpeScheme,
)
from repro.core.security_model import (
    AttackType,
    HighLevelScheme,
    QueryPart,
    SecurityModel,
    ThreatModel,
)

__all__ = [
    "AccessArea",
    "AccessAreaDistance",
    "AccessAreaDpeScheme",
    "AttackType",
    "ComponentRequirement",
    "ConstantRequirement",
    "ConstantUsage",
    "DistanceMeasure",
    "Domain",
    "DomainCatalog",
    "EquivalenceReport",
    "EquivalenceRequirements",
    "HighLevelScheme",
    "Interval",
    "JaccardSetMeasure",
    "KitDpeEngine",
    "LogContext",
    "PreservationReport",
    "QueryLogDpeScheme",
    "QueryPart",
    "ResultDistance",
    "ResultDpeScheme",
    "SchemeDerivation",
    "SecurityAssessment",
    "SecurityModel",
    "SharedInformation",
    "StructureDistance",
    "StructureDpeScheme",
    "ThreatModel",
    "TokenDistance",
    "TokenDpeScheme",
    "standard_measures",
    "verify_c_equivalence",
    "verify_distance_preservation",
]
